//! The deterministic discrete-event engine.
//!
//! A [`Network`] owns every [`Device`], the link table, the event queue, the
//! global clock, the CPU account and the sample store. Determinism: events
//! are ordered by the *intrinsic* key `(time, source device, per-source
//! sequence)`, and all randomness flows from per-device RNG streams derived
//! from the network seed, so a given (topology, workload, seed) reproduces
//! bit-identical results — independently of how the event heap happens to
//! interleave unrelated devices, and therefore independently of how the
//! network is later sharded across threads (see `parallel.rs`).
//!
//! # Fast path
//!
//! The three structures every event touches are laid out for throughput
//! (see DESIGN.md, "Engine fast path"):
//!
//! * metrics are interned ([`MetricId`]) so recording is a vector index,
//!   not a `String` hash — the `&str` API survives as a shim;
//! * the link table is a dense per-device, port-indexed vector, making
//!   `peer`/`is_linked`/delivery O(1) array loads;
//! * the heap orders small fixed-size [`EventKey`]s while event payloads
//!   live in a pooled slab, so heap sifts never memcpy a [`Frame`] and the
//!   steady-state loop allocates nothing.
//!
//! # Event ordering
//!
//! Every scheduled event carries an [`EventTag`] `(at, src, seq)`:
//!
//! * `at` — the simulated delivery time;
//! * `src` — the id of the *emitting* device ([`EXTERNAL_SRC`] for frames
//!   and timers injected by the harness);
//! * `seq` — a counter that is monotonic *per source*.
//!
//! The tag is a total order (each source numbers its own emissions), it is a
//! property of the emission itself rather than of global heap insertion
//! order, and simultaneous events from one source still process in FIFO
//! order. This is what makes the sharded engine exact: the sequential pop
//! order restricted to any subset of devices equals that subset's own local
//! pop order, so per-shard executions are slices of the sequential one.

use crate::device::{Device, DeviceId, DeviceKind, PortId};
use crate::fault::{FaultIds, FaultPlan};
use crate::filter::{FilterControl, FilterRule};
use crate::flow::{
    EmitAction, Fidelity, FlowEvent, FlowKey, FlowProbe, FlowTable, FlowTag, FlowUpdate,
};
use crate::frame::{Frame, Transport};
use crate::nat::NatControl;
use crate::time::{SimDuration, SimTime};
use metrics::{
    CpuAccount, CpuCategory, CpuLocation, FlightStamp, Interner, JournalKind, JournalMark,
    JournalRing, JournalTag, MetricId, SpanId, SpanRecord, SpanRing, SpanRingMark, StageTable,
    TelemetryConfig, TelemetryMode, TraceConfig, TraceMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Propagation parameters of a link between two device ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Probability that a frame is silently lost on this link (failure
    /// injection; 0 on healthy links).
    pub loss_prob: f64,
}

impl LinkParams {
    /// A loss-free link with the given latency.
    pub fn with_latency(latency: SimDuration) -> LinkParams {
        LinkParams {
            latency,
            loss_prob: 0.0,
        }
    }

    /// Adds frame loss.
    pub fn with_loss(mut self, p: f64) -> LinkParams {
        assert!((0.0..=1.0).contains(&p), "loss probability in [0,1]");
        self.loss_prob = p;
        self
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            latency: SimDuration::ZERO,
            loss_prob: 0.0,
        }
    }
}

/// Source id tagged onto harness-injected events ([`Network::inject_frame`],
/// [`Network::schedule_timer`]); real devices use their own (small) ids.
pub(crate) const EXTERNAL_SRC: u32 = u32::MAX;

/// The intrinsic identity of a scheduled event: delivery time, emitting
/// source, and the source's own emission counter. Unique per event and
/// independent of heap insertion order — the determinism anchor for the
/// sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct EventTag {
    pub(crate) at: SimTime,
    pub(crate) src: u32,
    pub(crate) seq: u64,
}

#[derive(Debug, Clone)]
enum EventKind {
    Frame {
        dev: DeviceId,
        port: PortId,
        frame: Frame,
    },
    Timer {
        dev: DeviceId,
        token: u64,
    },
    /// A delivered flow probe advertised back to its origin endpoint
    /// (`dev` is the origin, whose shard owns the flow's state). Absorbed
    /// by the engine itself — no device dispatch.
    FlowAdvert {
        dev: DeviceId,
        update: Box<FlowUpdate>,
    },
}

/// What the binary heap actually orders: a small fixed-size key. The
/// payload ([`EventKind`], which embeds a whole [`Frame`]) stays put in the
/// pool slab at `slot`, so heap sifts move a few words instead of ~100+.
#[derive(Debug, Clone, Copy)]
struct EventKey {
    tag: EventTag,
    slot: u32,
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag
    }
}
impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `(src, seq)` is unique, so the tag is already a total order;
        // `slot` deliberately does not participate.
        self.tag.cmp(&other.tag)
    }
}

/// Slab of in-flight event payloads plus a free list. Slots are recycled,
/// so after warm-up the event loop performs no allocation per event.
#[derive(Debug, Default, Clone)]
struct EventPool {
    slots: Vec<Option<EventKind>>,
    free: Vec<u32>,
}

impl EventPool {
    /// Stores `kind`, returning the slot index it now occupies.
    fn insert(&mut self, kind: EventKind) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                let slot =
                    u32::try_from(self.slots.len()).expect("more than u32::MAX in-flight events");
                self.slots.push(Some(kind));
                slot
            }
        }
    }

    /// Removes and returns the payload at `slot`, recycling the slot.
    fn take(&mut self, slot: u32) -> EventKind {
        let kind = self.slots[slot as usize]
            .take()
            .expect("event slot already drained");
        self.free.push(slot);
        kind
    }
}

/// SplitMix64 finalizer — used to derive independent per-device RNG seeds
/// from the single network seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of device `stream`'s RNG from the network seed.
fn mix_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream))
}

struct DeviceSlot {
    name: String,
    loc: CpuLocation,
    /// Classification captured at [`Network::add_device`] so the flow fast
    /// path can test it without borrowing the device box.
    kind: DeviceKind,
    /// Cached [`Device::flow_bypass`] answer (same reason).
    bypass: bool,
    dev: Option<Box<dyn Device>>,
    /// This device's private RNG stream (jitter, stalls, loss draws for
    /// frames *it* emits). Seeded from `mix_seed(network_seed, id)`, so
    /// draws depend only on this device's own event sequence — never on how
    /// unrelated devices interleave in the heap or across shards.
    rng: StdRng,
    /// Per-source emission counter backing [`EventTag::seq`].
    emit_seq: u64,
    /// Per-device span counter backing [`SpanId::seq`]. Like `emit_seq`,
    /// it advances only with this device's own events, so span identities
    /// are intrinsic — independent of heap interleaving and sharding.
    span_seq: u64,
}

/// One record of the sample journal kept by shard networks: which series,
/// what value, in per-shard chronological order.
type JournalEntry = (MetricId, f64);

/// Collected measurements: named sample vectors (latencies, sizes...) and
/// named counters (bytes delivered, frames dropped...).
///
/// Names are interned to dense [`MetricId`]s; recording through an id is a
/// vector index. The `&str` methods ([`record`](SampleStore::record),
/// [`add`](SampleStore::add), ...) remain as a compatibility shim that
/// interns on the fly — one hash lookup, no allocation once the name has
/// been seen.
#[derive(Debug, Default)]
pub struct SampleStore {
    interner: Interner,
    samples: Vec<Vec<f64>>,
    counters: Vec<f64>,
    /// When set (shard stores only), samples are appended to this single
    /// chronological journal instead of the per-series vectors; the
    /// sharded-run merge replays journals in global event order.
    journal: Option<Vec<JournalEntry>>,
}

impl SampleStore {
    /// Interns `name`, returning the id to record through. Devices cache
    /// this at first use and skip the name hash on every later event.
    pub fn metric_id(&mut self, name: &str) -> MetricId {
        let id = self.interner.intern(name);
        if self.samples.len() <= id.index() {
            self.samples.resize_with(id.index() + 1, Vec::new);
            self.counters.resize(id.index() + 1, 0.0);
        }
        id
    }

    /// Records one sample under `id`.
    #[inline]
    pub fn record_id(&mut self, id: MetricId, value: f64) {
        match &mut self.journal {
            Some(j) => j.push((id, value)),
            None => self.samples[id.index()].push(value),
        }
    }

    /// Adds `delta` to counter `id`.
    #[inline]
    pub fn add_id(&mut self, id: MetricId, delta: f64) {
        self.counters[id.index()] += delta;
    }

    /// All samples recorded under `id`.
    #[inline]
    pub fn samples_by_id(&self, id: MetricId) -> &[f64] {
        &self.samples[id.index()]
    }

    /// Current value of counter `id`.
    #[inline]
    pub fn counter_by_id(&self, id: MetricId) -> f64 {
        self.counters[id.index()]
    }

    /// Records one sample under `name` (shim; interns `name`).
    pub fn record(&mut self, name: &str, value: f64) {
        let id = self.metric_id(name);
        self.record_id(id, value);
    }

    /// Adds `delta` to counter `name` (shim; interns `name`).
    pub fn add(&mut self, name: &str, delta: f64) {
        let id = self.metric_id(name);
        self.add_id(id, delta);
    }

    /// All samples recorded under `name` (empty slice if none).
    pub fn samples(&self, name: &str) -> &[f64] {
        self.interner
            .get(name)
            .map(|id| self.samples_by_id(id))
            .unwrap_or(&[])
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> f64 {
        self.interner
            .get(name)
            .map_or(0.0, |id| self.counter_by_id(id))
    }

    /// Names of all sample series (in first-intern order — deterministic
    /// for a deterministic run, unlike the old `HashMap` key order).
    ///
    /// For a store merged from a sharded run the order is first-intern
    /// order *of the merge*, which need not match a sequential run's; the
    /// name *set* and every per-name series do match.
    pub fn sample_names(&self) -> impl Iterator<Item = &str> {
        self.interner
            .names()
            .enumerate()
            .filter(|&(i, _)| !self.samples[i].is_empty())
            .map(|(_, n)| n)
    }

    /// Names of all counters with a nonzero value, in first-intern order
    /// (same caveat as [`sample_names`](SampleStore::sample_names) for
    /// merged stores).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.interner
            .names()
            .enumerate()
            .filter(|&(i, _)| self.counters[i] != 0.0)
            .map(|(_, n)| n)
    }

    /// The name behind an interned id (for exporters resolving stage and
    /// series names).
    ///
    /// # Panics
    /// Panics if `id` was issued by a different store.
    pub fn name_of(&self, id: MetricId) -> &str {
        self.interner.name(id)
    }

    /// Switches the store to journal mode (shard stores). Pre-existing
    /// per-series samples stay put; the merge emits them first.
    pub(crate) fn enable_journal(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// Number of journal entries recorded so far (0 when not journaling).
    #[inline]
    pub(crate) fn journal_len(&self) -> usize {
        self.journal.as_ref().map_or(0, Vec::len)
    }

    /// Captures the store's position for a later
    /// [`rewind`](SampleStore::rewind) — the optimistic engine's snapshot
    /// half. Journal entries, interned names and per-series sample vectors
    /// are append-only in journal mode, so the mark stores lengths plus one
    /// copy of the (mutable) counter values.
    pub(crate) fn mark(&self) -> StoreMark {
        debug_assert!(
            self.journal.is_some(),
            "store marks are only meaningful for journaling shard stores"
        );
        StoreMark {
            names: self.interner.len(),
            counters: self.counters.clone(),
            journal_len: self.journal_len(),
        }
    }

    /// Rolls the store back to a previously captured
    /// [`mark`](SampleStore::mark), forgetting names interned since (a
    /// deterministic replay re-interns them with the same ids), truncating
    /// the journal, and restoring counter values.
    pub(crate) fn rewind(&mut self, mark: StoreMark) {
        self.interner.truncate(mark.names);
        self.samples.truncate(mark.names);
        self.counters = mark.counters;
        if let Some(j) = &mut self.journal {
            j.truncate(mark.journal_len);
        }
    }

    /// Decomposes the store for the sharded-run merge.
    pub(crate) fn into_parts(self) -> StoreParts {
        StoreParts {
            names: self.interner.names().map(String::from).collect(),
            samples: self.samples,
            counters: self.counters,
            journal: self.journal.unwrap_or_default(),
        }
    }
}

/// An append position of a [`SampleStore`], captured by
/// [`SampleStore::mark`] and restored by [`SampleStore::rewind`].
pub(crate) struct StoreMark {
    names: usize,
    counters: Vec<f64>,
    journal_len: usize,
}

/// A [`SampleStore`] decomposed for merging (see `parallel.rs`).
pub(crate) struct StoreParts {
    pub(crate) names: Vec<String>,
    pub(crate) samples: Vec<Vec<f64>>,
    pub(crate) counters: Vec<f64>,
    pub(crate) journal: Vec<JournalEntry>,
}

/// One entry of the (optional) event trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the event fired.
    pub at: SimTime,
    /// Device that handled it.
    pub device: String,
    /// `"frame"` or `"timer"`, plus the frame's one-line rendering.
    pub what: String,
}

/// Cap on stored trace entries (tracing is a debugging aid, not a log).
pub(crate) const TRACE_CAP: usize = 100_000;

/// One endpoint's view of a link: who is on the other side, and with what
/// propagation parameters.
#[derive(Debug, Clone, Copy)]
struct Link {
    peer: DeviceId,
    peer_port: PortId,
    params: LinkParams,
}

/// What a cross-shard event delivers: a frame to a device port, or a flow
/// advert to the flow table of the origin's shard.
#[derive(Debug, Clone)]
pub(crate) enum RemotePayload {
    Frame { port: PortId, frame: Frame },
    Advert(Box<FlowUpdate>),
}

/// An event crossing shards: the full intrinsic tag plus the destination
/// device and payload, ferried over a ring and pushed into the destination
/// shard's heap (see `parallel.rs`).
#[derive(Debug, Clone)]
pub(crate) struct RemoteEvent {
    pub(crate) tag: EventTag,
    pub(crate) dev: DeviceId,
    pub(crate) payload: RemotePayload,
}

/// Per-event bookkeeping kept by shard networks: the event's tag plus how
/// many journal records, trace entries and retained spans it produced. The
/// merge replays these logs in frontier order to reconstruct the exact
/// sequential interleaving of samples, traces and spans.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LogEntry {
    pub(crate) tag: EventTag,
    pub(crate) recs: u32,
    pub(crate) traces: u32,
    pub(crate) spans: u32,
    /// Journal records *kept* by this event (drops are reconciled
    /// wholesale at merge time, like span drops).
    pub(crate) jrecs: u32,
}

/// One local device's share of an [`EngineSnapshot`]: the forked device
/// plus its RNG stream and emission counters.
struct SlotSnapshot {
    idx: usize,
    dev: Box<dyn Device>,
    rng: StdRng,
    emit_seq: u64,
    span_seq: u64,
}

/// A restorable copy of a shard [`Network`]'s complete observable state,
/// taken between events by [`Network::snapshot`] for the optimistic
/// (time-warp-lite) synchronization mode in `parallel.rs`. Append-only
/// structures (journal, trace, event log, span ring, interner) are stored
/// as truncation positions; small mutable state (heap, pool, counters,
/// CPU account, stage table, devices) is cloned.
pub(crate) struct EngineSnapshot {
    /// Delivery time of the earliest committed event at snapshot time —
    /// the shard's conservative floor while it speculates.
    pub(crate) next_at: Option<SimTime>,
    queue: BinaryHeap<Reverse<EventKey>>,
    pool: EventPool,
    now: SimTime,
    inject_seq: u64,
    processed: u64,
    dropped_no_link: u64,
    cpu: CpuAccount,
    store: StoreMark,
    trace_len: usize,
    trace_dropped: u64,
    spans: SpanRingMark,
    stages: StageTable,
    event_log_len: usize,
    flow: Option<FlowTable>,
    journal: JournalMark,
    ext_jseq: u64,
    fault_open: Vec<bool>,
    devices: Vec<SlotSnapshot>,
}

/// Control-plane handles the flow fast path consults per fast-path
/// emission: a steady flow escalates back to packet level when any
/// registered filter/NAT control on its learned path reports a rule
/// change (see [`crate::flow::PolicyProbeFn`]). Registered before runs
/// via [`Network::attach_filter`]/[`Network::watch_nat`], shared
/// read-only with every shard on split, and deliberately excluded from
/// snapshots (controls are mutated only between runs, never rolled back).
#[derive(Debug, Default, Clone)]
struct PolicyRegistry {
    filters: Vec<(DeviceId, FilterControl)>,
    nats: Vec<(DeviceId, NatControl)>,
}

/// A shard network's view of the partition: which shard owns each device,
/// which shard *this* network is, and the outbox of frames addressed to
/// other shards.
struct ShardCtx {
    shard_of: Arc<Vec<u32>>,
    me: u32,
    outbox: Vec<RemoteEvent>,
}

/// The simulated network: device graph + event queue + clock + accounting.
pub struct Network {
    devices: Vec<DeviceSlot>,
    /// Dense adjacency: `links[dev.0][port.0]` is the link attached to that
    /// port, if any. Rows grow on demand (ports are small integers).
    links: Vec<Vec<Option<Link>>>,
    queue: BinaryHeap<Reverse<EventKey>>,
    pool: EventPool,
    now: SimTime,
    /// Emission counter for harness injections (source [`EXTERNAL_SRC`]).
    inject_seq: u64,
    processed: u64,
    dropped_no_link: u64,
    cpu: CpuAccount,
    seed: u64,
    store: SampleStore,
    link_lost: MetricId,
    trace: Option<Vec<TraceEntry>>,
    /// Trace entries that did not fit under [`TRACE_CAP`] (previously the
    /// trace silently truncated).
    trace_dropped: u64,
    /// Flight-recorder configuration (off / counters-only / full spans).
    flight: TraceConfig,
    /// Retained span records (only written in [`TraceMode::Full`]).
    spans: SpanRing,
    /// Per-stage frame/latency/CPU aggregates (written in `Counters` and
    /// `Full` modes).
    stages: StageTable,
    /// CPU ns charged so far while handling the current event; reset per
    /// event, consumed by [`DevCtx::stage_frame`] for span attribution.
    event_cpu_ns: u64,
    /// Portion of `event_cpu_ns` already attributed to a stage.
    event_cpu_claimed: u64,
    /// Device pairs the partitioner must keep in one shard (e.g. devices
    /// serializing on one shared station).
    affinity: Vec<(DeviceId, DeviceId)>,
    shard: Option<ShardCtx>,
    event_log: Option<Vec<LogEntry>>,
    /// Scheduled fault plan (see `fault.rs`); shared read-only with every
    /// shard when the network is split.
    fault: Option<Arc<FaultPlan>>,
    /// Fault counter ids, interned into *this* network's store (re-interned
    /// per shard store on split).
    fault_ids: Option<FaultIds>,
    /// Flow-level fast path state (`None` in [`Fidelity::Packet`], the
    /// default — packet runs pay nothing for the table's existence).
    flow: Option<FlowTable>,
    /// CPU charged while handling the current event, broken out per
    /// (location, category) so riding flow probes can record per-hop
    /// costs. Cleared each event; only written while a flow table is
    /// installed.
    event_charges: Vec<(CpuLocation, CpuCategory, u64)>,
    /// Telemetry-plane configuration (off / counters / full journal).
    telem: TelemetryConfig,
    /// The control-plane event journal (see `metrics::journal`).
    journal: JournalRing,
    /// Intrinsic tag of the event currently being processed — the tag
    /// every journal record emitted during [`step`](Network::step) carries.
    cur_tag: JournalTag,
    /// Sequence counter for journal records emitted outside event
    /// processing (harness/control-plane calls between runs). Separate
    /// from `inject_seq` so journaling never perturbs event tags.
    ext_jseq: u64,
    /// Open/closed state per fault-plan window (link faults first, then
    /// stalls), scanned on emission to journal window transitions. Empty
    /// unless telemetry is on and a fault plan is installed.
    fault_open: Vec<bool>,
    /// Filter/NAT controls watched for rule changes by the flow fast
    /// path (see [`PolicyRegistry`]).
    policies: Arc<PolicyRegistry>,
}

impl Network {
    /// Creates an empty network with the given RNG seed.
    pub fn new(seed: u64) -> Network {
        let mut store = SampleStore::default();
        let link_lost = store.metric_id("link.lost");
        Network {
            devices: Vec::new(),
            links: Vec::new(),
            queue: BinaryHeap::new(),
            pool: EventPool::default(),
            now: SimTime::ZERO,
            inject_seq: 0,
            processed: 0,
            dropped_no_link: 0,
            cpu: CpuAccount::new(),
            seed,
            store,
            link_lost,
            trace: None,
            trace_dropped: 0,
            flight: TraceConfig::off(),
            spans: SpanRing::default(),
            stages: StageTable::new(),
            event_cpu_ns: 0,
            event_cpu_claimed: 0,
            affinity: Vec::new(),
            shard: None,
            event_log: None,
            fault: None,
            fault_ids: None,
            flow: None,
            event_charges: Vec::new(),
            telem: TelemetryConfig::off(),
            journal: JournalRing::default(),
            cur_tag: JournalTag::default(),
            ext_jseq: 0,
            fault_open: Vec::new(),
            policies: Arc::new(PolicyRegistry::default()),
        }
    }

    /// Installs a deterministic fault plan (see [`FaultPlan`]). Faults draw
    /// from the emitting device's own RNG stream, so a faulted scenario is
    /// bit-identical across shard counts.
    ///
    /// # Panics
    /// Panics if events have already been processed: fault windows are part
    /// of the scenario, not something to mutate mid-run.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(
            self.processed, 0,
            "install fault plans before running the network"
        );
        self.fault_ids = Some(FaultIds::intern(&mut self.store));
        self.fault = Some(Arc::new(plan));
        self.resize_fault_open();
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_deref()
    }

    /// Selects the simulation fidelity (see [`Fidelity`]). `Packet`
    /// removes the flow table; `Hybrid`/`FlowOnly` install a fresh one.
    ///
    /// # Panics
    /// Panics if events have already been processed: fidelity is part of
    /// the scenario, not something to flip mid-run.
    pub fn set_fidelity(&mut self, f: Fidelity) {
        assert_eq!(
            self.processed, 0,
            "select fidelity before running the network"
        );
        self.flow = match f {
            Fidelity::Packet => None,
            _ => Some(FlowTable::new(f, &mut self.store)),
        };
    }

    /// The active simulation fidelity.
    pub fn fidelity(&self) -> Fidelity {
        self.flow
            .as_ref()
            .map_or(Fidelity::Packet, FlowTable::fidelity)
    }

    /// Configures the flight recorder. Must be called before any event is
    /// processed (devices observe the mode from their first frame on).
    pub fn set_trace_config(&mut self, cfg: TraceConfig) {
        self.flight = cfg;
        self.spans = match cfg.mode {
            TraceMode::Full => SpanRing::with_cap(cfg.span_cap),
            _ => SpanRing::default(),
        };
    }

    /// The active flight-recorder configuration.
    pub fn trace_config(&self) -> TraceConfig {
        self.flight
    }

    /// Configures the telemetry plane (control-plane journal). Mirrors
    /// [`set_trace_config`](Network::set_trace_config): call before any
    /// event is processed. The journal ring is reconfigured in place —
    /// records already journaled (e.g. harness records emitted during
    /// setup, before `SimConfig::build` re-applies the configuration)
    /// survive as long as the new mode retains them.
    pub fn set_telemetry_config(&mut self, cfg: TelemetryConfig) {
        self.telem = cfg;
        self.journal.reconfigure(cfg);
        self.resize_fault_open();
    }

    /// The active telemetry configuration.
    pub fn telemetry_config(&self) -> TelemetryConfig {
        self.telem
    }

    /// The control-plane journal collected so far.
    pub fn journal(&self) -> &JournalRing {
        &self.journal
    }

    /// Takes the journal ring, leaving a fresh one (same config) behind.
    pub fn take_journal(&mut self) -> JournalRing {
        std::mem::replace(&mut self.journal, JournalRing::new(self.telem))
    }

    /// (Re)sizes the fault-window transition state: one open/closed flag
    /// per plan window when both telemetry and a fault plan are active.
    fn resize_fault_open(&mut self) {
        let n = match (&self.fault, self.telem.mode) {
            (Some(plan), TelemetryMode::Counters | TelemetryMode::Full) => {
                plan.link_faults().len() + plan.stalls().len()
            }
            _ => 0,
        };
        self.fault_open = vec![false; n];
    }

    /// Emits a journal record with the current event's intrinsic tag.
    /// Off-mode cost: one branch inside [`JournalRing::record`].
    #[inline]
    fn jrec(&mut self, kind: JournalKind, a: u64, b: u64, c: u64) {
        self.journal.record(self.cur_tag, kind, a, b, c);
    }

    /// Emits a journal record from *outside* event processing (harness or
    /// control-plane code between runs). Tagged with the external source
    /// and a dedicated monotonic sequence, so enabling telemetry never
    /// perturbs event tags.
    pub fn journal_external(&mut self, kind: JournalKind, a: u64, b: u64, c: u64) {
        if self.telem.mode == TelemetryMode::Off {
            return;
        }
        let seq = self.ext_jseq;
        self.ext_jseq += 1;
        let tag = JournalTag {
            at_ns: self.now.0,
            src: EXTERNAL_SRC,
            seq,
        };
        self.journal.record(tag, kind, a, b, c);
    }

    /// Registers `ctl` as device `dev`'s filter table for the flow fast
    /// path's rule-change escalation check. Harnesses that mutate filter
    /// rules while a `Hybrid`/`FlowOnly` run is live (or between runs)
    /// must register the control, or steady flows crossing `dev` keep
    /// synthesizing deliveries until their next revalidation probe.
    /// Packet-fidelity runs ignore the registry entirely.
    pub fn attach_filter(&mut self, dev: DeviceId, ctl: FilterControl) {
        Arc::make_mut(&mut self.policies).filters.push((dev, ctl));
    }

    /// Registers `ctl` as device `dev`'s NAT control for the flow fast
    /// path's rule-change escalation check (DNAT/route/LB mutations bump
    /// the control's change epoch). See [`attach_filter`](Network::attach_filter).
    pub fn watch_nat(&mut self, dev: DeviceId, ctl: NatControl) {
        Arc::make_mut(&mut self.policies).nats.push((dev, ctl));
    }

    /// Installs a filter rule on `dev`'s table, activating at `from`, and
    /// journals the mutation (`FilterInstall`, a = device, b = rule id,
    /// c = activation ns). Returns the rule id.
    pub fn install_filter(
        &mut self,
        dev: DeviceId,
        ctl: &FilterControl,
        rule: FilterRule,
        from: SimTime,
    ) -> u64 {
        let id = ctl.install_at(rule, from);
        self.journal_external(JournalKind::FilterInstall, dev.0 as u64, id, from.0);
        id
    }

    /// Deactivates filter rule `id` on `dev`'s table at `until`,
    /// journaling the mutation (`FilterRemove`). Returns false when the
    /// rule does not exist.
    pub fn remove_filter(
        &mut self,
        dev: DeviceId,
        ctl: &FilterControl,
        id: u64,
        until: SimTime,
    ) -> bool {
        let ok = ctl.remove_at(id, until);
        if ok {
            self.journal_external(JournalKind::FilterRemove, dev.0 as u64, id, until.0);
        }
        ok
    }

    /// Span records retained so far (empty unless [`TraceMode::Full`]).
    pub fn spans(&self) -> &[SpanRecord] {
        self.spans.spans()
    }

    /// Spans emitted in total (kept + dropped at the span cap).
    pub fn spans_emitted(&self) -> u64 {
        self.spans.emitted()
    }

    /// Spans dropped because the span ring was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// Per-stage latency/CPU aggregates (empty when the recorder is off).
    pub fn stages(&self) -> &StageTable {
        &self.stages
    }

    /// Trace entries dropped at [`TRACE_CAP`]. Before the flight recorder
    /// the trace silently truncated; now every overflow is counted and
    /// surfaced in run snapshots.
    pub fn dropped_traces(&self) -> u64 {
        self.trace_dropped
    }

    /// Enables (or disables) event tracing. Traced runs record every
    /// event's time, device and content — invaluable for walking a
    /// packet's hop-by-hop path through a topology (see the `pathfinder`
    /// binary), at a real memory cost.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Trace entries collected so far (empty when tracing is off).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Adds a device located at `loc` (host or a VM); returns its id.
    pub fn add_device(
        &mut self,
        name: impl Into<String>,
        loc: CpuLocation,
        dev: Box<dyn Device>,
    ) -> DeviceId {
        let id = DeviceId(self.devices.len());
        let kind = dev.kind();
        let bypass = dev.flow_bypass();
        self.devices.push(DeviceSlot {
            name: name.into(),
            loc,
            kind,
            bypass,
            dev: Some(dev),
            rng: StdRng::seed_from_u64(mix_seed(self.seed, id.0 as u64)),
            emit_seq: 0,
            span_seq: 0,
        });
        self.links.push(Vec::new());
        id
    }

    /// Declares that `a` and `b` must land in the same shard when this
    /// network is partitioned (see `parallel::PartitionPlan`). Needed for
    /// devices coupled through state the device graph cannot see — above
    /// all a [`SharedStation`](crate::shared::SharedStation) serialized
    /// across devices. A no-op for sequential runs.
    pub fn bind_same_shard(&mut self, a: DeviceId, b: DeviceId) {
        self.affinity.push((a, b));
    }

    /// Same-shard constraints declared so far.
    pub(crate) fn affinity(&self) -> &[(DeviceId, DeviceId)] {
        &self.affinity
    }

    /// The link slot for `(dev, port)`, growing the port row to fit.
    fn link_slot(&mut self, dev: DeviceId, port: PortId) -> &mut Option<Link> {
        let row = &mut self.links[dev.0];
        if row.len() <= port.0 {
            row.resize(port.0 + 1, None);
        }
        &mut row[port.0]
    }

    /// The link attached to `(dev, port)`, if any. Out-of-range devices and
    /// ports read as unlinked.
    #[inline]
    fn link_at(&self, dev: DeviceId, port: PortId) -> Option<Link> {
        self.links.get(dev.0)?.get(port.0).copied().flatten()
    }

    /// Connects `(a, pa)` and `(b, pb)` bidirectionally.
    ///
    /// # Panics
    /// Panics if either port is already linked — the port graph is static.
    pub fn connect(&mut self, a: DeviceId, pa: PortId, b: DeviceId, pb: PortId, p: LinkParams) {
        assert!(a.0 < self.devices.len(), "device {a:?} does not exist");
        assert!(b.0 < self.devices.len(), "device {b:?} does not exist");
        let fwd = self.link_slot(a, pa);
        assert!(fwd.is_none(), "port {:?}:{:?} already linked", a, pa);
        *fwd = Some(Link {
            peer: b,
            peer_port: pb,
            params: p,
        });
        let rev = self.link_slot(b, pb);
        assert!(rev.is_none(), "port {:?}:{:?} already linked", b, pb);
        *rev = Some(Link {
            peer: a,
            peer_port: pa,
            params: p,
        });
    }

    /// Peer of `(dev, port)` if linked.
    pub fn peer(&self, dev: DeviceId, port: PortId) -> Option<(DeviceId, PortId)> {
        self.link_at(dev, port).map(|l| (l.peer, l.peer_port))
    }

    /// Propagation parameters of the link at `(dev, port)`, if linked.
    pub fn link_params(&self, dev: DeviceId, port: PortId) -> Option<LinkParams> {
        self.link_at(dev, port).map(|l| l.params)
    }

    /// All links, each reported once as `(a, pa, b, pb)` with `a < b` (or
    /// `pa < pb` for self-links), sorted for determinism.
    pub fn links(&self) -> Vec<(DeviceId, PortId, DeviceId, PortId)> {
        let mut out = Vec::new();
        for (a, row) in self.links.iter().enumerate() {
            for (pa, slot) in row.iter().enumerate() {
                if let Some(l) = slot {
                    let (a, pa) = (DeviceId(a), PortId(pa));
                    if (a, pa) < (l.peer, l.peer_port) {
                        out.push((a, pa, l.peer, l.peer_port));
                    }
                }
            }
        }
        // Dense row-major iteration already yields sorted order; keep the
        // sort as a cheap guarantee of the documented contract.
        out.sort();
        out
    }

    /// Renders the device graph as Graphviz DOT (one node per device,
    /// labelled edges per link) — the fig. 1 diagrams, generated.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut dot = String::new();
        writeln!(dot, "graph {title:?} {{").unwrap();
        writeln!(
            dot,
            "  label={title:?};
  node [shape=box];"
        )
        .unwrap();
        for (i, d) in self.devices.iter().enumerate() {
            writeln!(dot, "  d{i} [label={:?}];", d.name).unwrap();
        }
        for (a, pa, b, pb) in self.links() {
            writeln!(
                dot,
                "  d{} -- d{} [taillabel=\"{}\", headlabel=\"{}\"];",
                a.0, b.0, pa.0, pb.0
            )
            .unwrap();
        }
        dot.push_str("}\n");
        dot
    }

    /// Device name (for traces and assertions).
    pub fn device_name(&self, id: DeviceId) -> &str {
        &self.devices[id.0].name
    }

    /// Device location.
    pub fn device_location(&self, id: DeviceId) -> CpuLocation {
        self.devices[id.0].loc
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Frames dropped because a device transmitted on an unlinked port.
    pub fn dropped_no_link(&self) -> u64 {
        self.dropped_no_link
    }

    /// CPU account (read at end of run).
    pub fn cpu(&self) -> &CpuAccount {
        &self.cpu
    }

    /// Sample store (read at end of run).
    pub fn store(&self) -> &SampleStore {
        &self.store
    }

    /// Mutable sample store (for harness-side bookkeeping between phases).
    pub fn store_mut(&mut self) -> &mut SampleStore {
        &mut self.store
    }

    /// Schedules a frame to arrive at `(dev, port)` after `delay`.
    pub fn inject_frame(&mut self, delay: SimDuration, dev: DeviceId, port: PortId, frame: Frame) {
        let tag = self.next_inject_tag(self.now + delay);
        self.route_frame(tag, dev, port, frame);
    }

    /// Schedules a timer for `dev` after `delay` — used to start
    /// applications at t=0 or at staggered offsets.
    pub fn schedule_timer(&mut self, delay: SimDuration, dev: DeviceId, token: u64) {
        let tag = self.next_inject_tag(self.now + delay);
        debug_assert!(
            self.shard
                .as_ref()
                .is_none_or(|sh| sh.shard_of[dev.0] == sh.me),
            "timer scheduled on a foreign shard's device"
        );
        self.push_keyed(tag, EventKind::Timer { dev, token });
    }

    /// Next tag for a harness-injected event.
    fn next_inject_tag(&mut self, at: SimTime) -> EventTag {
        let seq = self.inject_seq;
        self.inject_seq += 1;
        EventTag {
            at,
            src: EXTERNAL_SRC,
            seq,
        }
    }

    /// Queues an event locally.
    fn push_keyed(&mut self, tag: EventTag, kind: EventKind) {
        let slot = self.pool.insert(kind);
        self.queue.push(Reverse(EventKey { tag, slot }));
    }

    /// Routes a frame delivery: into the local heap, or — when this network
    /// is a shard and the destination lives elsewhere — into the outbox.
    fn route_frame(&mut self, tag: EventTag, dev: DeviceId, port: PortId, frame: Frame) {
        if let Some(sh) = &mut self.shard {
            if sh.shard_of[dev.0] != sh.me {
                sh.outbox.push(RemoteEvent {
                    tag,
                    dev,
                    payload: RemotePayload::Frame { port, frame },
                });
                return;
            }
        }
        self.push_keyed(tag, EventKind::Frame { dev, port, frame });
    }

    /// Routes a flow advert to the shard owning the flow's origin device
    /// (whose flow table holds the entry), or absorbs it locally.
    fn route_advert(&mut self, tag: EventTag, dev: DeviceId, update: Box<FlowUpdate>) {
        if let Some(sh) = &mut self.shard {
            if sh.shard_of[dev.0] != sh.me {
                sh.outbox.push(RemoteEvent {
                    tag,
                    dev,
                    payload: RemotePayload::Advert(update),
                });
                return;
            }
        }
        self.push_keyed(tag, EventKind::FlowAdvert { dev, update });
    }

    /// Pushes an event that arrived from another shard.
    pub(crate) fn push_remote(&mut self, ev: RemoteEvent) {
        debug_assert!(ev.tag.at >= self.now, "remote event in this shard's past");
        let kind = match ev.payload {
            RemotePayload::Frame { port, frame } => EventKind::Frame {
                dev: ev.dev,
                port,
                frame,
            },
            RemotePayload::Advert(update) => EventKind::FlowAdvert {
                dev: ev.dev,
                update,
            },
        };
        self.push_keyed(ev.tag, kind);
    }

    /// Drains the outbox of frames addressed to other shards.
    pub(crate) fn take_outbox(&mut self) -> Vec<RemoteEvent> {
        match &mut self.shard {
            Some(sh) => std::mem::take(&mut sh.outbox),
            None => Vec::new(),
        }
    }

    /// Delivery time of the earliest queued event, if any.
    pub(crate) fn peek_next_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(k)| k.tag.at)
    }

    /// Processes every queued event with `at < until` (the epoch window of
    /// the sharded engine).
    pub(crate) fn run_window(&mut self, until: SimTime) {
        while let Some(Reverse(key)) = self.queue.peek() {
            if key.tag.at >= until {
                break;
            }
            self.step();
        }
    }

    /// Takes the event log (shard networks only).
    pub(crate) fn take_event_log(&mut self) -> Vec<LogEntry> {
        self.event_log.take().unwrap_or_default()
    }

    /// Takes the trace buffer.
    pub(crate) fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace.take().unwrap_or_default()
    }

    /// Takes the span ring, leaving an empty one behind.
    pub(crate) fn take_spans(&mut self) -> SpanRing {
        std::mem::take(&mut self.spans)
    }

    /// Takes the stage table, leaving an empty one behind.
    pub(crate) fn take_stages(&mut self) -> StageTable {
        std::mem::take(&mut self.stages)
    }

    /// Takes the sample store, leaving an empty one behind.
    pub(crate) fn take_store(&mut self) -> SampleStore {
        std::mem::take(&mut self.store)
    }

    /// Takes the CPU account, leaving an empty one behind.
    pub(crate) fn take_cpu(&mut self) -> CpuAccount {
        std::mem::take(&mut self.cpu)
    }

    /// Captures everything the optimistic shard engine must restore on a
    /// straggler rollback: clock, heap + payload pool, counters, CPU
    /// account, store/trace/span/event-log positions, stage aggregates,
    /// and a deep fork of every local device (with its RNG stream and
    /// emission counters).
    ///
    /// Returns `None` when any local device refuses to
    /// [`fork`](Device::fork) — the shard then degrades gracefully to
    /// conservative synchronization. Must be called between events with a
    /// drained outbox (the worker drains it before snapshotting).
    ///
    /// The fault plan needs no entry here: [`FaultPlan`] is immutable and
    /// evaluated per emission from the emitting device's RNG, so restoring
    /// the device RNGs restores the fault draw sequence too.
    pub(crate) fn snapshot(&self) -> Option<EngineSnapshot> {
        debug_assert!(
            self.shard.as_ref().is_none_or(|sh| sh.outbox.is_empty()),
            "snapshot with an undrained outbox"
        );
        let mut devices = Vec::new();
        for (idx, slot) in self.devices.iter().enumerate() {
            if let Some(dev) = &slot.dev {
                devices.push(SlotSnapshot {
                    idx,
                    dev: dev.fork()?,
                    rng: slot.rng.clone(),
                    emit_seq: slot.emit_seq,
                    span_seq: slot.span_seq,
                });
            }
        }
        Some(EngineSnapshot {
            next_at: self.peek_next_at(),
            queue: self.queue.clone(),
            pool: self.pool.clone(),
            now: self.now,
            inject_seq: self.inject_seq,
            processed: self.processed,
            dropped_no_link: self.dropped_no_link,
            cpu: self.cpu.clone(),
            store: self.store.mark(),
            trace_len: self.trace.as_ref().map_or(0, Vec::len),
            trace_dropped: self.trace_dropped,
            spans: self.spans.mark(),
            stages: self.stages.clone(),
            event_log_len: self.event_log.as_ref().map_or(0, Vec::len),
            flow: self.flow.clone(),
            journal: self.journal.mark(),
            ext_jseq: self.ext_jseq,
            fault_open: self.fault_open.clone(),
            devices,
        })
    }

    /// Rolls the network back to `snap`, discarding every event processed,
    /// sample recorded, span emitted and device mutation made since the
    /// matching [`snapshot`](Network::snapshot).
    pub(crate) fn restore(&mut self, snap: EngineSnapshot) {
        self.queue = snap.queue;
        self.pool = snap.pool;
        self.now = snap.now;
        self.inject_seq = snap.inject_seq;
        self.processed = snap.processed;
        self.dropped_no_link = snap.dropped_no_link;
        self.cpu = snap.cpu;
        self.store.rewind(snap.store);
        if let Some(trace) = &mut self.trace {
            trace.truncate(snap.trace_len);
        }
        self.trace_dropped = snap.trace_dropped;
        self.spans.rewind(snap.spans);
        self.stages = snap.stages;
        if let Some(log) = &mut self.event_log {
            log.truncate(snap.event_log_len);
        }
        self.event_cpu_ns = 0;
        self.event_cpu_claimed = 0;
        self.event_charges.clear();
        self.flow = snap.flow;
        self.journal.rewind(snap.journal);
        self.ext_jseq = snap.ext_jseq;
        self.fault_open = snap.fault_open;
        for s in snap.devices {
            let slot = &mut self.devices[s.idx];
            slot.dev = Some(s.dev);
            slot.rng = s.rng;
            slot.emit_seq = s.emit_seq;
            slot.span_seq = s.span_seq;
        }
        if let Some(sh) = &mut self.shard {
            sh.outbox.clear();
        }
    }

    /// Splits an un-run network into one [`Network`] per shard of `plan`.
    ///
    /// Every shard keeps the full link table and a full-length device vector
    /// (foreign slots are stubs), so device ids keep working unchanged; the
    /// heap contents are distributed by destination device. Shard stores
    /// record through journals and every shard keeps an event log, which is
    /// what lets `parallel::ShardedNetwork::into_report` reconstruct the
    /// exact sequential interleaving.
    ///
    /// # Panics
    /// Panics if events have already been processed: devices cache
    /// [`MetricId`]s from the store they first record into, so the split
    /// must happen before any device runs.
    pub(crate) fn split(mut self, shard_of: &Arc<Vec<u32>>, nshards: usize) -> Vec<Network> {
        assert_eq!(
            self.processed, 0,
            "a network must be sharded before any event is processed"
        );
        assert_eq!(shard_of.len(), self.devices.len());
        // Distribute queued events to their destination shard.
        let mut initial: Vec<Vec<(EventTag, EventKind)>> =
            (0..nshards).map(|_| Vec::new()).collect();
        while let Some(Reverse(key)) = self.queue.pop() {
            let kind = self.pool.take(key.slot);
            let dev = match &kind {
                EventKind::Frame { dev, .. }
                | EventKind::Timer { dev, .. }
                | EventKind::FlowAdvert { dev, .. } => *dev,
            };
            initial[shard_of[dev.0] as usize].push((key.tag, kind));
        }
        let names: Vec<String> = self.devices.iter().map(|d| d.name.clone()).collect();
        let locs: Vec<CpuLocation> = self.devices.iter().map(|d| d.loc).collect();
        let mut slots: Vec<Option<DeviceSlot>> = self.devices.into_iter().map(Some).collect();
        let tracing = self.trace.is_some();
        let mut master_store = Some(self.store);
        let mut initial = initial.into_iter();
        (0..nshards)
            .map(|s| {
                let devices: Vec<DeviceSlot> = (0..slots.len())
                    .map(|i| {
                        if shard_of[i] as usize == s {
                            slots[i].take().expect("device assigned to two shards")
                        } else {
                            // Foreign stub: name/location kept for lookups,
                            // no device, a throwaway RNG.
                            DeviceSlot {
                                name: names[i].clone(),
                                loc: locs[i],
                                kind: DeviceKind::Other,
                                bypass: false,
                                dev: None,
                                rng: StdRng::seed_from_u64(0),
                                emit_seq: 0,
                                span_seq: 0,
                            }
                        }
                    })
                    .collect();
                // Shard 0 inherits the master store (pre-run interned ids
                // stay valid there); others start fresh.
                let mut store = if s == 0 {
                    master_store.take().unwrap()
                } else {
                    SampleStore::default()
                };
                store.enable_journal();
                let link_lost = store.metric_id("link.lost");
                let fault_ids = self.fault.as_ref().map(|_| FaultIds::intern(&mut store));
                // Each shard gets a fresh, empty flow table at the master's
                // fidelity: flow state accrues from events, and every event
                // touching a flow's state runs on its origin's shard.
                let flow = self
                    .flow
                    .as_ref()
                    .map(|f| FlowTable::new(f.fidelity(), &mut store));
                let mut net = Network {
                    devices,
                    links: self.links.clone(),
                    queue: BinaryHeap::new(),
                    pool: EventPool::default(),
                    now: self.now,
                    inject_seq: self.inject_seq,
                    processed: 0,
                    dropped_no_link: 0,
                    cpu: CpuAccount::new(),
                    seed: self.seed,
                    store,
                    link_lost,
                    trace: tracing.then(Vec::new),
                    trace_dropped: 0,
                    // Every shard runs the master's recorder config with the
                    // *global* span cap: a shard's share of the sequential
                    // first-cap spans is a prefix of its own emission order,
                    // so per-shard cap == global cap retains a superset of
                    // what the merge keeps (see `parallel::into_report`).
                    flight: self.flight,
                    spans: match self.flight.mode {
                        TraceMode::Full => SpanRing::with_cap(self.flight.span_cap),
                        _ => SpanRing::default(),
                    },
                    stages: StageTable::new(),
                    event_cpu_ns: 0,
                    event_cpu_claimed: 0,
                    affinity: Vec::new(),
                    shard: Some(ShardCtx {
                        shard_of: Arc::clone(shard_of),
                        me: s as u32,
                        outbox: Vec::new(),
                    }),
                    event_log: Some(Vec::new()),
                    fault: self.fault.clone(),
                    fault_ids,
                    flow,
                    event_charges: Vec::new(),
                    // Every shard journals at the master's mode with the
                    // *global* record cap: a shard's emission order is a
                    // subsequence of the sequential order, so a record a
                    // shard drops (local index >= cap) would have been
                    // dropped sequentially too — per-shard cap == global
                    // cap retains a superset of what the merge keeps.
                    telem: self.telem,
                    journal: JournalRing::new(self.telem),
                    cur_tag: JournalTag::default(),
                    ext_jseq: self.ext_jseq,
                    fault_open: Vec::new(),
                    policies: Arc::clone(&self.policies),
                };
                net.resize_fault_open();
                for (tag, kind) in initial.next().unwrap() {
                    net.push_keyed(tag, kind);
                }
                net
            })
            .collect()
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(key)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(key.tag.at >= self.now, "event in the past");
        self.now = key.tag.at;
        self.processed += 1;
        let kind = self.pool.take(key.slot);
        let dev_id = match &kind {
            EventKind::Frame { dev, .. }
            | EventKind::Timer { dev, .. }
            | EventKind::FlowAdvert { dev, .. } => *dev,
        };
        // Journal records emitted while handling this event carry its
        // intrinsic tag — a pure function of the simulation, identical at
        // every shard count.
        self.cur_tag = JournalTag {
            at_ns: key.tag.at.0,
            src: key.tag.src,
            seq: key.tag.seq,
        };
        let logging = self.event_log.is_some();
        let (recs_before, traces_before, spans_before, jrecs_before) = if logging {
            (
                self.store.journal_len(),
                self.trace.as_ref().map_or(0, Vec::len),
                self.spans.spans().len(),
                self.journal.len(),
            )
        } else {
            (0, 0, 0, 0)
        };
        if let Some(trace) = &mut self.trace {
            if trace.len() < TRACE_CAP {
                let what = match &kind {
                    EventKind::Frame { frame, .. } => format!("frame {frame}"),
                    EventKind::Timer { token, .. } => format!("timer {token}"),
                    EventKind::FlowAdvert { update, .. } => format!(
                        "flow advert {}:{} lat {}ns",
                        update.key.src_port, update.key.dst_port, update.lat
                    ),
                };
                trace.push(TraceEntry {
                    at: key.tag.at,
                    device: self.devices[dev_id.0].name.clone(),
                    what,
                });
            } else {
                self.trace_dropped += 1;
            }
        }
        self.event_cpu_ns = 0;
        self.event_cpu_claimed = 0;
        self.event_charges.clear();
        match kind {
            // Adverts are absorbed by the engine itself — the flow table is
            // the addressee; no device is dispatched (and the origin slot
            // may even be mid-flight elsewhere in optimistic mode).
            EventKind::FlowAdvert { update, .. } => {
                if let Some(flow) = &mut self.flow {
                    flow.absorb(*update, &mut self.store);
                    if let Some(ev) = flow.take_event() {
                        self.journal_flow_event(ev);
                    }
                }
            }
            mut kind => {
                // A delivered probe stamp becomes an advert back to the
                // origin before the endpoint sees the frame.
                if let EventKind::Frame { port, frame, .. } = &mut kind {
                    if self.flow.is_some() && frame.flow.is_some() {
                        self.flow_deliver(dev_id, *port, frame);
                    }
                }
                let mut dev = self.devices[dev_id.0]
                    .dev
                    .take()
                    .unwrap_or_else(|| panic!("device {} re-entered", self.devices[dev_id.0].name));
                let loc = self.devices[dev_id.0].loc;
                {
                    let mut ctx = DevCtx {
                        net: self,
                        id: dev_id,
                        loc,
                    };
                    match kind {
                        EventKind::Frame { port, frame, .. } => dev.on_frame(port, frame, &mut ctx),
                        EventKind::Timer { token, .. } => dev.on_timer(token, &mut ctx),
                        EventKind::FlowAdvert { .. } => unreachable!("absorbed above"),
                    }
                }
                self.devices[dev_id.0].dev = Some(dev);
            }
        }
        if logging {
            let recs = (self.store.journal_len() - recs_before) as u32;
            let traces = (self.trace.as_ref().map_or(0, Vec::len) - traces_before) as u32;
            let spans = (self.spans.spans().len() - spans_before) as u32;
            let jrecs = (self.journal.len() - jrecs_before) as u32;
            // An event that recorded nothing adds nothing to the merged
            // interleaving — skipping its entry keeps the log (and the
            // frontier merge, which is O(log length)) proportional to the
            // *observability* volume rather than the event volume.
            if recs | traces | spans | jrecs != 0 {
                self.event_log.as_mut().unwrap().push(LogEntry {
                    tag: key.tag,
                    recs,
                    traces,
                    spans,
                    jrecs,
                });
            }
        }
        true
    }

    /// Translates a flow-table decision into its journal record.
    fn journal_flow_event(&mut self, ev: FlowEvent) {
        match ev {
            FlowEvent::Promoted { origin, lat } => {
                self.jrec(JournalKind::FlowPromote, origin as u64, lat, 0);
            }
            FlowEvent::Escalated { origin, reason } => {
                self.jrec(JournalKind::FlowEscalate, origin as u64, reason as u64, 0);
            }
            FlowEvent::Pinned { origin } => {
                self.jrec(JournalKind::FlowPin, origin as u64, 0, 0);
            }
        }
    }

    /// Runs the network until `stop` is reached (or the queue empties).
    ///
    /// `Until(t)` processes every event with `at < t` — events at exactly
    /// `t` are **excluded** — then advances the clock to `t`. This is the
    /// same window semantics the sharded engine's epochs use, so a
    /// deadline slices a scenario identically at every shard count. (The
    /// retired `run_until` processed `at == t` events in the sequential
    /// backend but not in the threaded one.)
    pub fn run(&mut self, stop: StopCondition) {
        match stop {
            StopCondition::Until(deadline) => {
                self.run_window(deadline);
                if self.now < deadline {
                    self.now = deadline;
                }
            }
            StopCondition::For(d) => {
                let deadline = self.now + d;
                self.run(StopCondition::Until(deadline));
            }
            StopCondition::Idle => while self.step() {},
        }
    }

    /// Runs until the clock reaches `deadline`; events at exactly
    /// `deadline` are excluded.
    #[deprecated(note = "use run(StopCondition::Until(deadline))")]
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run(StopCondition::Until(deadline));
    }

    /// Runs for `d` of simulated time from now.
    #[deprecated(note = "use run(StopCondition::For(d))")]
    pub fn run_for(&mut self, d: SimDuration) {
        self.run(StopCondition::For(d));
    }

    /// Drains every remaining event (useful for short finite workloads).
    #[deprecated(note = "use run(StopCondition::Idle)")]
    pub fn run_to_idle(&mut self) {
        self.run(StopCondition::Idle);
    }

    fn charge_at(&mut self, loc: CpuLocation, cat: CpuCategory, d: SimDuration) {
        self.cpu.charge(loc, cat, d.as_nanos());
        // Per-hop attribution for flow probes (merged by (loc, cat); the
        // vector stays tiny — an event rarely touches more than two).
        if self.flow.is_some() {
            let ns = d.as_nanos();
            match self
                .event_charges
                .iter_mut()
                .find(|(l, c, _)| *l == loc && *c == cat)
            {
                Some(e) => e.2 += ns,
                None => self.event_charges.push((loc, cat, ns)),
            }
        }
        // Stage attribution: everything charged since the last stage_frame
        // call within this event belongs to the next staged span. One add;
        // the mirror charge below is *not* double-counted (it is the same
        // work, seen from the host).
        self.event_cpu_ns += d.as_nanos();
        // Work executed inside a VM is vCPU time the host hands to the
        // guest: mirror it into the host's `guest` bucket, as `top` on the
        // host would report it (figs. 14/15 rely on this attribution).
        if let CpuLocation::Vm(_) = loc {
            self.cpu
                .charge(CpuLocation::Host, CpuCategory::Guest, d.as_nanos());
        }
    }

    /// Records one per-packet stage crossing: aggregates into the stage
    /// table and, in full mode, emits a span and restamps `frame` so the
    /// next stage parents to this one. Called through
    /// [`DevCtx::stage_frame`], never directly.
    fn flight_stage(
        &mut self,
        id: DeviceId,
        loc: CpuLocation,
        stage: MetricId,
        frame: &mut Frame,
        done: SimTime,
    ) {
        let enter = self.now.as_nanos();
        let exit = done.as_nanos().max(enter);
        let cpu_ns = self.event_cpu_ns - self.event_cpu_claimed;
        self.event_cpu_claimed = self.event_cpu_ns;
        self.stages.record(stage, exit - enter, cpu_ns);
        if self.flight.mode != TraceMode::Full {
            return;
        }
        let slot = &mut self.devices[id.0];
        slot.span_seq += 1;
        let span = SpanId {
            src: id.0 as u32,
            seq: slot.span_seq,
        };
        let parent = frame.flight.parent;
        // First staged stage on a frame's path mints the trace id from the
        // span identity: unique, non-zero, and as deterministic as the
        // span sequence itself.
        let trace = if frame.flight.trace != 0 {
            frame.flight.trace
        } else {
            ((span.src as u64 + 1) << 40) | span.seq
        };
        frame.flight = FlightStamp {
            trace,
            parent: span,
        };
        self.spans.push(SpanRecord {
            trace,
            span,
            parent,
            stage,
            dev: span.src,
            loc,
            enter,
            exit,
            cpu_ns,
        });
    }

    /// The flow fast path's emission hook, called from
    /// [`DevCtx::transmit_at`] whenever a flow table is installed.
    ///
    /// Returns `Some(frame)` when the emission must continue packet level
    /// (possibly now carrying a probe stamp), `None` when it was absorbed
    /// analytically — a synthesized delivery event has been scheduled
    /// directly onto the learned path's destination.
    fn flow_emit(
        &mut self,
        id: DeviceId,
        port: PortId,
        when: SimTime,
        mut frame: Frame,
    ) -> Option<Frame> {
        // A riding probe records every hop it crosses: egress point,
        // bypass consent, NAT involvement, link lossiness and the CPU the
        // hop charged while handling this event.
        if frame.flow.is_some() {
            let origin = frame.flow.0.as_ref().map(|p| p.key.origin);
            if origin != Some(id) {
                let slot = &self.devices[id.0];
                let lossless = self
                    .link_at(id, port)
                    .is_none_or(|l| l.params.loss_prob == 0.0);
                let bypass = slot.bypass;
                let nat = slot.kind == DeviceKind::NatRouter;
                let probe = frame.flow.0.as_deref_mut().expect("checked above");
                probe.hops.push((id, port));
                probe.ok &= bypass && lossless;
                probe.has_nat |= nat;
                for &(loc, cat, ns) in &self.event_charges {
                    match probe
                        .cpu
                        .iter_mut()
                        .find(|(l, c, _)| *l == loc && *c == cat)
                    {
                        Some(e) => e.2 += ns,
                        None => probe.cpu.push((loc, cat, ns)),
                    }
                }
            }
            return Some(frame);
        }
        // Only endpoint emissions start flows; traced frames stay packet
        // level end to end so traces and span trees remain complete.
        let slot = &self.devices[id.0];
        if slot.kind != DeviceKind::Endpoint
            || self.trace.is_some()
            || self.flight.mode == TraceMode::Full
            || frame.flight.trace != 0
        {
            return Some(frame);
        }
        let Some(key) = FlowKey::classify(id, &frame) else {
            return Some(frame);
        };
        let bypass = slot.bypass;
        let fault = self.fault.clone();
        let fault_active = move |hops: &[(DeviceId, PortId)], from: SimTime, lat: u64| {
            fault.as_deref().is_some_and(|p| {
                let until = SimTime(from.0.saturating_add(lat).saturating_add(1));
                p.any_active(hops, from, until)
            })
        };
        let pol = Arc::clone(&self.policies);
        let policy = move |hops: &[(DeviceId, PortId)], after: SimTime, upto: SimTime| {
            if pol.filters.is_empty() && pol.nats.is_empty() {
                return (false, 0u64);
            }
            let mut epoch = 0u64;
            let mut changed = false;
            for &(dev, _) in hops {
                for (d, f) in &pol.filters {
                    if *d == dev {
                        epoch = epoch.wrapping_add(f.epoch());
                        changed |= f.changed_in(after, upto);
                    }
                }
                for (d, n) in &pol.nats {
                    if *d == dev {
                        epoch = epoch.wrapping_add(n.change_epoch());
                    }
                }
            }
            (changed, epoch)
        };
        let flow = self.flow.as_mut().expect("flow_emit requires a table");
        let action = flow.on_emit(&key, when, &fault_active, &policy, &mut self.store);
        if let Some(ev) = flow.take_event() {
            self.journal_flow_event(ev);
        }
        match action {
            EmitAction::Packet => Some(frame),
            EmitAction::Probe => {
                let lossless = self
                    .link_at(id, port)
                    .is_none_or(|l| l.params.loss_prob == 0.0);
                frame.flow = FlowTag::stamp(FlowProbe {
                    key,
                    born: when,
                    hops: vec![(id, port)],
                    cpu: Vec::new(),
                    ok: bypass && lossless,
                    has_nat: false,
                });
                Some(frame)
            }
            EmitAction::Fast => {
                let flow = self.flow.as_ref().expect("table checked above");
                let path = flow.path(&key).expect("fast emission has a learned path");
                let at = when + SimDuration::nanos(path.latency());
                let dst = path.dst;
                let dst_port = path.dst_port;
                let frames_id = flow.fastpath_frames_id();
                let bytes_id = flow.fastpath_bytes_id();
                let cpu_replay = path.cpu.clone();
                let mut synth = path.template.clone();
                // The live payload (and TCP stream state) rides the
                // synthesized delivery so endpoint semantics survive.
                match (&mut synth.ip.transport, frame.ip.transport) {
                    (Transport::Udp { payload: tp, .. }, Transport::Udp { payload, .. }) => {
                        *tp = payload;
                    }
                    (
                        Transport::Tcp {
                            payload: tp,
                            seq: ts,
                            kind: tk,
                            ..
                        },
                        Transport::Tcp {
                            payload, seq, kind, ..
                        },
                    ) => {
                        *tp = payload;
                        *ts = seq;
                        *tk = kind;
                    }
                    _ => {}
                }
                synth.flight = FlightStamp::default();
                synth.flow = FlowTag::default();
                let wire = f64::from(synth.wire_len());
                // Replay the learned per-hop CPU (with the Vm→Host guest
                // mirror `charge_at` applies) so figure-level attribution
                // stays comparable to packet runs. No RNG is consulted:
                // the fast path makes no draws, which is what keeps a
                // hybrid scenario bit-identical across shard counts.
                for (loc, cat, ns) in cpu_replay {
                    self.cpu.charge(loc, cat, ns);
                    if let CpuLocation::Vm(_) = loc {
                        self.cpu.charge(CpuLocation::Host, CpuCategory::Guest, ns);
                    }
                }
                self.store.add_id(frames_id, 1.0);
                self.store.add_id(bytes_id, wire);
                let slot = &mut self.devices[id.0];
                let seq = slot.emit_seq;
                slot.emit_seq += 1;
                let tag = EventTag {
                    at,
                    src: id.0 as u32,
                    seq,
                };
                self.route_frame(tag, dst, dst_port, synth);
                None
            }
        }
    }

    /// Converts a probe delivered to an endpoint into a [`FlowUpdate`]
    /// advert scheduled back to the origin's flow table one observed
    /// path-latency later (an RTT after emission — the soonest a real
    /// stack could learn anything about its path). Non-endpoint
    /// deliveries keep the stamp riding.
    fn flow_deliver(&mut self, dev: DeviceId, port: PortId, frame: &mut Frame) {
        if self.devices[dev.0].kind != DeviceKind::Endpoint {
            return;
        }
        let Some(probe) = frame.flow.take() else {
            return;
        };
        let mut template = frame.clone();
        template.flight = FlightStamp::default();
        let lat = self.now.since(probe.born).as_nanos();
        let origin = probe.key.origin;
        let update = Box::new(FlowUpdate {
            key: probe.key,
            dst: dev,
            dst_port: port,
            template,
            lat,
            hops: probe.hops,
            cpu: probe.cpu,
            ok: probe.ok,
            has_nat: probe.has_nat,
        });
        let slot = &mut self.devices[dev.0];
        let seq = slot.emit_seq;
        slot.emit_seq += 1;
        let tag = EventTag {
            at: self.now + SimDuration::nanos(lat),
            src: dev.0 as u32,
            seq,
        };
        self.route_advert(tag, origin, update);
    }
}

/// When [`Network::run`] (and the sharded engine's `run`) should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Process every event strictly before this instant, then advance the
    /// clock to it. Events at exactly the deadline are excluded — the
    /// same window semantics at every shard count.
    Until(SimTime),
    /// [`Until`](StopCondition::Until) at `now + d`.
    For(SimDuration),
    /// Drain the event queue completely.
    Idle,
}

/// The capability handle a device receives while handling an event.
pub struct DevCtx<'a> {
    net: &'a mut Network,
    id: DeviceId,
    loc: CpuLocation,
}

impl<'a> DevCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now
    }

    /// The handling device's id.
    pub fn self_id(&self) -> DeviceId {
        self.id
    }

    /// The handling device's CPU location.
    pub fn location(&self) -> CpuLocation {
        self.loc
    }

    /// This device's private RNG stream for jitter sampling. Derived from
    /// `(network seed, device id)`, so the draw sequence depends only on
    /// this device's own events — not on global event interleaving.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.net.devices[self.id.0].rng
    }

    /// Charges CPU time in `cat` at this device's location.
    pub fn charge(&mut self, cat: CpuCategory, d: SimDuration) {
        self.net.charge_at(self.loc, cat, d);
    }

    /// Charges CPU time at an explicit location (e.g. a vhost worker charging
    /// the host while logically serving a guest).
    pub fn charge_at(&mut self, loc: CpuLocation, cat: CpuCategory, d: SimDuration) {
        self.net.charge_at(loc, cat, d);
    }

    /// Emits `frame` on `port` at time `when` (usually a station's service
    /// completion); the frame arrives at the link peer after link latency.
    /// Dropped (and counted) if the port is unlinked.
    pub fn transmit_at(&mut self, when: SimTime, port: PortId, frame: Frame) {
        debug_assert!(when >= self.net.now, "transmit in the past");
        // Hybrid/flow-only fidelity: let the flow table classify this
        // emission first — it may absorb it entirely (synthesized
        // delivery) or hand it back stamped with a path probe.
        let frame = if self.net.flow.is_some() {
            match self.net.flow_emit(self.id, port, when, frame) {
                Some(f) => f,
                None => return,
            }
        } else {
            frame
        };
        match self.net.link_at(self.id, port) {
            Some(Link {
                peer,
                peer_port,
                params,
            }) => {
                if params.loss_prob > 0.0 {
                    use rand::Rng;
                    if self.net.devices[self.id.0].rng.gen_bool(params.loss_prob) {
                        let id = self.net.link_lost;
                        self.net.store.add_id(id, 1.0);
                        return;
                    }
                }
                // Scheduled fault injection, drawn from this device's own
                // RNG *after* the link's base loss draw — plan-free runs
                // keep their exact draw sequences.
                let mut extra = SimDuration::ZERO;
                let mut duplicate = false;
                if self.net.fault.is_some() {
                    let net = &mut *self.net;
                    let plan = net.fault.as_deref().expect("fault plan checked above");
                    // Journal fault-window open/close transitions, observed
                    // at this device's own emissions. Deterministic across
                    // shard counts: a window's device lives on exactly one
                    // shard and its emissions are totally ordered, so the
                    // transition is detected at the same event everywhere.
                    // Empty (one branch) unless telemetry is on.
                    if !net.fault_open.is_empty() {
                        let tag = net.cur_tag;
                        let nlinks = plan.link_faults().len();
                        for (i, w) in plan.link_faults().iter().enumerate() {
                            if w.dev != self.id {
                                continue;
                            }
                            let active = w.from <= when && when < w.until;
                            if active != net.fault_open[i] {
                                net.fault_open[i] = active;
                                let kind = if active {
                                    JournalKind::FaultOpen
                                } else {
                                    JournalKind::FaultClose
                                };
                                net.journal.record(
                                    tag,
                                    kind,
                                    w.dev.0 as u64,
                                    w.port.0 as u64,
                                    i as u64,
                                );
                            }
                        }
                        for (j, w) in plan.stalls().iter().enumerate() {
                            if w.dev != self.id {
                                continue;
                            }
                            let active = w.from <= when && when < w.until;
                            let i = nlinks + j;
                            if active != net.fault_open[i] {
                                net.fault_open[i] = active;
                                let kind = if active {
                                    JournalKind::FaultOpen
                                } else {
                                    JournalKind::FaultClose
                                };
                                net.journal.record(tag, kind, w.dev.0 as u64, 0, i as u64);
                            }
                        }
                    }
                    let out = plan.outcome(self.id, port, when, &mut net.devices[self.id.0].rng);
                    let ids = net.fault_ids.expect("fault ids interned with the plan");
                    if out.down {
                        net.store.add_id(ids.down, 1.0);
                        return;
                    }
                    if out.lost {
                        net.store.add_id(ids.lost, 1.0);
                        return;
                    }
                    if out.corrupt {
                        net.store.add_id(ids.corrupt, 1.0);
                        return;
                    }
                    if out.duplicate {
                        net.store.add_id(ids.duplicated, 1.0);
                        duplicate = true;
                    }
                    if out.reordered {
                        net.store.add_id(ids.reordered, 1.0);
                    }
                    if out.stalled {
                        net.store.add_id(ids.stalled, 1.0);
                    }
                    extra = out.extra;
                }
                let at = when + params.latency + extra;
                let slot = &mut self.net.devices[self.id.0];
                let seq = slot.emit_seq;
                slot.emit_seq += 1;
                let tag = EventTag {
                    at,
                    src: self.id.0 as u32,
                    seq,
                };
                if duplicate {
                    let dup = frame.clone();
                    self.net.route_frame(tag, peer, peer_port, frame);
                    let slot = &mut self.net.devices[self.id.0];
                    let seq = slot.emit_seq;
                    slot.emit_seq += 1;
                    let tag = EventTag {
                        at,
                        src: self.id.0 as u32,
                        seq,
                    };
                    self.net.route_frame(tag, peer, peer_port, dup);
                } else {
                    self.net.route_frame(tag, peer, peer_port, frame);
                }
            }
            None => {
                self.net.dropped_no_link += 1;
            }
        }
    }

    /// Emits `frame` on `port` immediately.
    pub fn transmit(&mut self, port: PortId, frame: Frame) {
        self.transmit_at(self.net.now, port, frame);
    }

    /// True when `port` of this device has a link attached. Bridges use
    /// this to flood only to connected ports, so that hot-pluggable
    /// (pre-sized) bridges do not spray frames at empty slots.
    pub fn is_linked(&self, port: PortId) -> bool {
        self.net.link_at(self.id, port).is_some()
    }

    /// Schedules `on_timer(token)` for this device after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.net.now + delay;
        let slot = &mut self.net.devices[self.id.0];
        let seq = slot.emit_seq;
        slot.emit_seq += 1;
        let tag = EventTag {
            at,
            src: self.id.0 as u32,
            seq,
        };
        self.net.push_keyed(
            tag,
            EventKind::Timer {
                dev: self.id,
                token,
            },
        );
    }

    /// Interns a metric name, returning an id for the allocation-free
    /// [`record_id`](DevCtx::record_id)/[`count_id`](DevCtx::count_id)
    /// paths. Devices call this once (first event) and cache the result.
    pub fn metric(&mut self, name: &str) -> MetricId {
        self.net.store.metric_id(name)
    }

    /// Records a measurement sample under a pre-interned id.
    #[inline]
    pub fn record_id(&mut self, id: MetricId, value: f64) {
        self.net.store.record_id(id, value);
    }

    /// Bumps a counter under a pre-interned id.
    #[inline]
    pub fn count_id(&mut self, id: MetricId, delta: f64) {
        self.net.store.add_id(id, delta);
    }

    /// Records a measurement sample (shim; interns `name` each call).
    pub fn record(&mut self, name: &str, value: f64) {
        self.net.store.record(name, value);
    }

    /// Bumps a counter (shim; interns `name` each call).
    pub fn count(&mut self, name: &str, delta: f64) {
        self.net.store.add(name, delta);
    }

    /// Marks `frame` as having crossed a per-packet stage of this device:
    /// the frame entered at `now()` and leaves at `done` (usually the
    /// station's service-completion time, i.e. what the device passes to
    /// [`transmit_at`](DevCtx::transmit_at)).
    ///
    /// With the recorder off this is a single branch. In counters mode it
    /// feeds the per-stage aggregate table; in full mode it additionally
    /// emits a [`SpanRecord`] — attributing all CPU charged by this device
    /// since its previous staged stage within the current event — and
    /// restamps `frame` so the next stage parents to this span. Call it
    /// once per stage, after the stage's [`charge`](DevCtx::charge)s,
    /// before cloning/transmitting the frame.
    ///
    /// `stage` is an interned stage name (convention: `"stage.<name>"`),
    /// obtained from [`metric`](DevCtx::metric) and cached by the device.
    #[inline]
    pub fn stage_frame(&mut self, stage: MetricId, frame: &mut Frame, done: SimTime) {
        if self.net.flight.mode == TraceMode::Off {
            return;
        }
        self.net.flight_stage(self.id, self.loc, stage, frame, done);
    }

    /// Emits a control-plane journal record carrying the current event's
    /// intrinsic tag (used by devices for datapath-observable policy
    /// decisions, e.g. a filter chain's DROP/REJECT verdicts). Off-mode
    /// cost: one branch.
    #[inline]
    pub fn journal(&mut self, kind: JournalKind, a: u64, b: u64, c: u64) {
        self.net.jrec(kind, a, b, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ip4, MacAddr, SockAddr};
    use crate::device::DeviceKind;
    use crate::frame::Payload;

    /// Forwards everything from port 0 to port 1 and vice versa after a
    /// fixed delay, counting frames.
    struct Pipe {
        delay: SimDuration,
    }

    impl Device for Pipe {
        fn kind(&self) -> DeviceKind {
            DeviceKind::Other
        }
        fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut DevCtx<'_>) {
            ctx.count("pipe.frames", 1.0);
            ctx.charge(CpuCategory::Sys, SimDuration::nanos(10));
            let out = if port == PortId::P0 {
                PortId::P1
            } else {
                PortId::P0
            };
            let when = ctx.now() + self.delay;
            ctx.transmit_at(when, out, frame);
        }
    }

    /// Sink that records arrival times.
    struct Sink;

    impl Device for Sink {
        fn kind(&self) -> DeviceKind {
            DeviceKind::Endpoint
        }
        fn on_frame(&mut self, _port: PortId, _frame: Frame, ctx: &mut DevCtx<'_>) {
            let t = ctx.now().as_nanos() as f64;
            ctx.record("sink.arrivals", t);
        }
    }

    fn test_frame() -> Frame {
        Frame::udp(
            MacAddr::local(1),
            MacAddr::local(2),
            SockAddr::new(Ip4::new(10, 0, 0, 1), 1),
            SockAddr::new(Ip4::new(10, 0, 0, 2), 2),
            Payload::sized(100),
        )
    }

    #[test]
    fn frames_flow_through_links_with_latency() {
        let mut net = Network::new(0);
        let pipe = net.add_device(
            "pipe",
            CpuLocation::Host,
            Box::new(Pipe {
                delay: SimDuration::micros(5),
            }),
        );
        let sink = net.add_device("sink", CpuLocation::Host, Box::new(Sink));
        net.connect(
            pipe,
            PortId::P1,
            sink,
            PortId::P0,
            LinkParams::with_latency(SimDuration::micros(3)),
        );
        net.inject_frame(SimDuration::micros(1), pipe, PortId::P0, test_frame());
        net.run(StopCondition::Idle);
        // 1us inject + 5us pipe delay + 3us link
        assert_eq!(net.store().samples("sink.arrivals"), &[9_000.0]);
        assert_eq!(net.store().counter("pipe.frames"), 1.0);
        assert_eq!(net.events_processed(), 2);
        assert_eq!(net.dropped_no_link(), 0);
    }

    #[test]
    fn unlinked_port_drops_and_counts() {
        let mut net = Network::new(0);
        let pipe = net.add_device(
            "pipe",
            CpuLocation::Host,
            Box::new(Pipe {
                delay: SimDuration::ZERO,
            }),
        );
        net.inject_frame(SimDuration::ZERO, pipe, PortId::P0, test_frame());
        net.run(StopCondition::Idle);
        assert_eq!(net.dropped_no_link(), 1);
    }

    #[test]
    fn vm_work_mirrors_into_host_guest_bucket() {
        let mut net = Network::new(0);
        let pipe = net.add_device(
            "vmpipe",
            CpuLocation::Vm(3),
            Box::new(Pipe {
                delay: SimDuration::ZERO,
            }),
        );
        net.inject_frame(SimDuration::ZERO, pipe, PortId::P0, test_frame());
        net.run(StopCondition::Idle);
        assert_eq!(net.cpu().get(CpuLocation::Vm(3), CpuCategory::Sys), 10);
        assert_eq!(net.cpu().get(CpuLocation::Host, CpuCategory::Guest), 10);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut net = Network::new(0);
        net.run(StopCondition::Until(SimTime(5_000)));
        assert_eq!(net.now(), SimTime(5_000));
    }

    #[test]
    fn events_are_fifo_at_equal_times() {
        let mut net = Network::new(0);
        let sink = net.add_device("sink", CpuLocation::Host, Box::new(Sink));
        // Two frames at the same instant: injection order must be preserved,
        // which the per-source `seq` of the event tag guarantees.
        net.inject_frame(SimDuration::micros(1), sink, PortId::P0, test_frame());
        net.inject_frame(SimDuration::micros(1), sink, PortId::P0, test_frame());
        net.run(StopCondition::Idle);
        assert_eq!(net.store().samples("sink.arrivals").len(), 2);
        assert_eq!(net.events_processed(), 2);
    }

    #[test]
    fn device_emissions_at_equal_times_stay_fifo() {
        // A device emitting several frames due at the same instant must
        // deliver them in emission order (per-source seq is monotonic).
        struct Burst;
        impl Device for Burst {
            fn kind(&self) -> DeviceKind {
                DeviceKind::Other
            }
            fn on_frame(&mut self, _port: PortId, frame: Frame, ctx: &mut DevCtx<'_>) {
                let when = ctx.now();
                for i in 0..4 {
                    let mut payload = Payload::sized(100);
                    payload.tag = i;
                    let f = Frame::udp(
                        frame.src_mac,
                        frame.dst_mac,
                        frame.ip.src_sock().unwrap(),
                        frame.ip.dst_sock().unwrap(),
                        payload,
                    );
                    ctx.transmit_at(when, PortId::P0, f);
                }
            }
        }
        struct TagSink;
        impl Device for TagSink {
            fn kind(&self) -> DeviceKind {
                DeviceKind::Endpoint
            }
            fn on_frame(&mut self, _port: PortId, frame: Frame, ctx: &mut DevCtx<'_>) {
                let tag = frame.ip.transport.payload().unwrap().tag;
                ctx.record("tags", tag as f64);
            }
        }
        let mut net = Network::new(0);
        let b = net.add_device("burst", CpuLocation::Host, Box::new(Burst));
        let s = net.add_device("sink", CpuLocation::Host, Box::new(TagSink));
        net.connect(b, PortId::P0, s, PortId::P0, LinkParams::default());
        net.inject_frame(SimDuration::ZERO, b, PortId::P1, test_frame());
        net.run(StopCondition::Idle);
        assert_eq!(net.store().samples("tags"), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_link_rejected() {
        let mut net = Network::new(0);
        let a = net.add_device("a", CpuLocation::Host, Box::new(Sink));
        let b = net.add_device("b", CpuLocation::Host, Box::new(Sink));
        let c = net.add_device("c", CpuLocation::Host, Box::new(Sink));
        net.connect(a, PortId::P0, b, PortId::P0, LinkParams::default());
        net.connect(a, PortId::P0, c, PortId::P0, LinkParams::default());
    }

    #[test]
    fn links_listing_and_dot_export() {
        let mut net = Network::new(0);
        let a = net.add_device("a", CpuLocation::Host, Box::new(Sink));
        let b = net.add_device("b", CpuLocation::Host, Box::new(Sink));
        let c = net.add_device("c", CpuLocation::Host, Box::new(Sink));
        net.connect(a, PortId(0), b, PortId(1), LinkParams::default());
        net.connect(b, PortId(0), c, PortId(2), LinkParams::default());
        let links = net.links();
        assert_eq!(links.len(), 2, "each link reported once");
        assert_eq!(links[0], (a, PortId(0), b, PortId(1)));
        let dot = net.to_dot("test");
        assert!(dot.contains(r#"graph "test""#));
        assert!(dot.contains("d0 -- d1"));
        assert!(dot.contains("d1 -- d2"));
        assert!(dot.contains(r#"[label="a"]"#));
    }

    #[test]
    fn str_shim_and_id_paths_are_equivalent() {
        // The same metric recorded through the &str shim and through its
        // interned id must land in the same series.
        let mut store = SampleStore::default();
        store.record("lat", 1.0);
        let id = store.metric_id("lat");
        store.record_id(id, 2.0);
        store.record("lat", 3.0);
        assert_eq!(store.samples("lat"), &[1.0, 2.0, 3.0]);
        assert_eq!(store.samples_by_id(id), store.samples("lat"));

        store.add("n", 1.0);
        let n = store.metric_id("n");
        store.add_id(n, 2.0);
        assert_eq!(store.counter("n"), 3.0);
        assert_eq!(store.counter_by_id(n), 3.0);

        // Unknown names read as empty/zero without interning them.
        assert!(store.samples("never").is_empty());
        assert_eq!(store.counter("never"), 0.0);
        assert!(store.sample_names().all(|name| name != "never"));
    }

    #[test]
    fn sample_names_follow_first_intern_order() {
        let mut store = SampleStore::default();
        store.record("z", 1.0);
        store.add("counter_only", 1.0);
        store.record("a", 1.0);
        let names: Vec<&str> = store.sample_names().collect();
        // Counters without samples are not sample series.
        assert_eq!(names, ["z", "a"]);
        let counters: Vec<&str> = store.counter_names().collect();
        assert_eq!(counters, ["counter_only"]);
    }

    #[test]
    fn unconnected_and_out_of_range_ports_read_unlinked() {
        let mut net = Network::new(0);
        let a = net.add_device("a", CpuLocation::Host, Box::new(Sink));
        let b = net.add_device("b", CpuLocation::Host, Box::new(Sink));
        // No connect yet: nothing is linked, even far past any grown row.
        assert_eq!(net.peer(a, PortId(0)), None);
        assert_eq!(net.peer(a, PortId(4096)), None);
        net.connect(a, PortId(3), b, PortId(0), LinkParams::default());
        // Ports below the linked one exist in the grown row but stay empty.
        assert_eq!(net.peer(a, PortId(0)), None);
        assert_eq!(net.peer(a, PortId(2)), None);
        assert_eq!(net.peer(a, PortId(3)), Some((b, PortId(0))));
        assert_eq!(net.peer(b, PortId(0)), Some((a, PortId(3))));
        // Beyond the row end is simply unlinked, not a panic.
        assert_eq!(net.peer(a, PortId(4)), None);
        assert_eq!(net.link_params(a, PortId(3)), Some(LinkParams::default()));
        assert_eq!(net.link_params(a, PortId(4)), None);
    }

    #[test]
    fn transmit_on_unlinked_high_port_drops() {
        // A device transmitting on a port index beyond its grown link row
        // must take the dropped_no_link path, not index out of bounds.
        struct Scatter;
        impl Device for Scatter {
            fn kind(&self) -> DeviceKind {
                DeviceKind::Other
            }
            fn on_frame(&mut self, _port: PortId, frame: Frame, ctx: &mut DevCtx<'_>) {
                let when = ctx.now();
                ctx.transmit_at(when, PortId(7), frame);
            }
        }
        let mut net = Network::new(0);
        let s = net.add_device("scatter", CpuLocation::Host, Box::new(Scatter));
        net.inject_frame(SimDuration::ZERO, s, PortId::P0, test_frame());
        net.run(StopCondition::Idle);
        assert_eq!(net.dropped_no_link(), 1);
    }

    #[test]
    fn event_pool_recycles_slots() {
        // Drive far more events through the engine than are ever in flight
        // at once: the pool must stay small by recycling freed slots.
        let mut net = Network::new(0);
        let pipe = net.add_device(
            "pipe",
            CpuLocation::Host,
            Box::new(Pipe {
                delay: SimDuration::nanos(1),
            }),
        );
        let sink = net.add_device("sink", CpuLocation::Host, Box::new(Sink));
        net.connect(pipe, PortId::P1, sink, PortId::P0, LinkParams::default());
        for i in 0..1_000 {
            net.inject_frame(SimDuration::micros(i), pipe, PortId::P0, test_frame());
        }
        net.run(StopCondition::Idle);
        assert_eq!(net.events_processed(), 2_000);
        // At most the initial 1000 injected events were pending at once.
        assert!(
            net.pool.slots.len() <= 1_000,
            "pool grew to {}",
            net.pool.slots.len()
        );
        assert_eq!(
            net.pool.free.len(),
            net.pool.slots.len(),
            "all slots drained"
        );
    }

    #[test]
    fn determinism_same_seed_same_results() {
        // Per-device RNG streams: the draw sequence of each device depends
        // only on (seed, device id) and the device's own event order, so a
        // given seed reproduces results bit-for-bit — including with jitter
        // and loss enabled.
        let run = |seed| {
            let mut net = Network::new(seed);
            let pipe = net.add_device(
                "pipe",
                CpuLocation::Host,
                Box::new(Pipe {
                    delay: SimDuration::micros(2),
                }),
            );
            let sink = net.add_device("sink", CpuLocation::Host, Box::new(Sink));
            net.connect(
                pipe,
                PortId::P1,
                sink,
                PortId::P0,
                LinkParams::default().with_loss(0.2),
            );
            for i in 0..10 {
                net.inject_frame(SimDuration::micros(i), pipe, PortId::P0, test_frame());
            }
            net.run(StopCondition::Idle);
            (
                net.store().samples("sink.arrivals").to_vec(),
                net.store().counter("link.lost"),
            )
        };
        assert_eq!(run(42), run(42));
        // Loss draws actually happened (pipe's stream, loss 0.2 over 10).
        let (arrivals, lost) = run(42);
        assert_eq!(arrivals.len() as f64 + lost, 10.0);
    }

    #[test]
    fn device_rng_streams_are_independent() {
        // Adding an unrelated device (and its draws) must not perturb
        // another device's stream: streams are keyed by device id.
        use rand::Rng;
        let mut a = Network::new(7);
        let d0 = a.add_device("d0", CpuLocation::Host, Box::new(Sink));
        let mut b = Network::new(7);
        let e0 = b.add_device("d0", CpuLocation::Host, Box::new(Sink));
        let _extra = b.add_device("extra", CpuLocation::Host, Box::new(Sink));
        let x: u64 = {
            let mut ctx = DevCtx {
                net: &mut a,
                id: d0,
                loc: CpuLocation::Host,
            };
            ctx.rng().gen()
        };
        let y: u64 = {
            let mut ctx = DevCtx {
                net: &mut b,
                id: e0,
                loc: CpuLocation::Host,
            };
            ctx.rng().gen()
        };
        assert_eq!(x, y, "same (seed, device id) must yield the same stream");
    }
}
