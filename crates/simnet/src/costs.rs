//! The per-stage cost model.
//!
//! Every datapath element charges a service time of
//! `fixed + per_byte * wire_len`, optionally perturbed by uniform jitter and
//! rare latency spikes. The CPU time equal to the service time is charged to
//! the stage's [`CpuCategory`] at the device's location.
//!
//! Calibration: [`CostModel::calibrated`] carries the constants tuned so the
//! *motivating* measurement of the paper's §2 is reproduced (≈68 % throughput
//! degradation and ≈31 % latency increase for the nested NAT path vs a single
//! virtualization layer at 1280 B). All other experimental shapes emerge from
//! composing stages, not from per-figure fitting.

use crate::time::SimDuration;
use metrics::CpuCategory;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Service cost of one datapath stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Fixed per-frame service time, ns.
    pub fixed_ns: u64,
    /// Additional service time per wire byte, ns.
    pub per_byte_ns: f64,
    /// CPU category the work is accounted under.
    pub cpu_cat: CpuCategory,
    /// Uniform multiplicative jitter: service is scaled by
    /// `1 + U(-jitter_frac, +jitter_frac)`.
    pub jitter_frac: f64,
    /// Probability that a frame hits a latency spike (scheduling delay,
    /// cache miss burst, softirq backlog...).
    pub spike_prob: f64,
    /// Multiplier applied to the service time on a spike.
    pub spike_mult: f64,
    /// Probability that a frame is *stalled*: held up without occupying
    /// the station or burning CPU (lock contention, vCPU scheduling delay).
    /// This inflates latency and its variance but not saturation
    /// throughput — the mechanism behind the erratic NAT/Overlay latencies
    /// of the paper's fig. 10 ("vary greatly and in unexpected manners").
    pub stall_prob: f64,
    /// Mean stall duration, ns (sampled uniformly in 0.5x..1.5x).
    pub stall_ns: u64,
}

impl StageCost {
    /// A deterministic cost with no jitter.
    pub fn fixed(fixed_ns: u64, per_byte_ns: f64, cpu_cat: CpuCategory) -> StageCost {
        StageCost {
            fixed_ns,
            per_byte_ns,
            cpu_cat,
            jitter_frac: 0.0,
            spike_prob: 0.0,
            spike_mult: 1.0,
            stall_prob: 0.0,
            stall_ns: 0,
        }
    }

    /// Adds uniform jitter.
    pub fn with_jitter(mut self, frac: f64) -> StageCost {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0,1)"
        );
        self.jitter_frac = frac;
        self
    }

    /// Adds a stall regime (latency-only delays; see `stall_prob`).
    pub fn with_stalls(mut self, prob: f64, mean: SimDuration) -> StageCost {
        assert!(
            (0.0..=1.0).contains(&prob),
            "stall probability must be in [0,1]"
        );
        self.stall_prob = prob;
        self.stall_ns = mean.as_nanos();
        self
    }

    /// Samples the stall delay for one frame (zero for most frames).
    pub fn sample_stall(&self, rng: &mut impl Rng) -> SimDuration {
        if self.stall_prob > 0.0 && rng.gen_bool(self.stall_prob) {
            let f: f64 = rng.gen_range(0.5..1.5);
            SimDuration::nanos((self.stall_ns as f64 * f) as u64)
        } else {
            SimDuration::ZERO
        }
    }

    /// Adds a spike regime.
    pub fn with_spikes(mut self, prob: f64, mult: f64) -> StageCost {
        assert!(
            (0.0..=1.0).contains(&prob),
            "spike probability must be in [0,1]"
        );
        assert!(mult >= 1.0, "spike multiplier must be >= 1");
        self.spike_prob = prob;
        self.spike_mult = mult;
        self
    }

    /// Mean (jitter-free) service time for a frame of `wire_len` bytes.
    pub fn mean_service(&self, wire_len: u32) -> SimDuration {
        SimDuration::nanos(self.fixed_ns + (self.per_byte_ns * wire_len as f64) as u64)
    }

    /// Samples the service time for one frame.
    pub fn sample_service(&self, wire_len: u32, rng: &mut impl Rng) -> SimDuration {
        let mut ns = self.mean_service(wire_len).as_nanos() as f64;
        if self.jitter_frac > 0.0 {
            let u: f64 = rng.gen_range(-1.0..1.0);
            ns *= 1.0 + self.jitter_frac * u;
        }
        if self.spike_prob > 0.0 && rng.gen_bool(self.spike_prob) {
            ns *= self.spike_mult;
        }
        SimDuration::nanos(ns.max(1.0) as u64)
    }
}

/// The calibrated constants for every stage type used by the topology
/// builders. Grouping them here keeps calibration reviewable in one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Learning-bridge switching (host side, `sys`).
    pub host_bridge: StageCost,
    /// Learning-bridge switching inside a VM (`soft`: the guest bridge runs
    /// its forwarding in softirq context).
    pub guest_bridge: StageCost,
    /// Netfilter NAT traversal at host level (`soft`).
    pub host_nat: StageCost,
    /// Netfilter NAT traversal inside a VM (`soft`); this is the stage
    /// BrFusion removes. Costlier than the host's: the guest kernel takes
    /// VM exits for its timer/IPIs while walking the rule chains.
    pub guest_nat: StageCost,
    /// veth pair crossing (namespace boundary, `sys`).
    pub veth: StageCost,
    /// virtio-net frontend work in the guest (`soft`: NAPI polling and
    /// descriptor processing run in softirq context). This is the softirq
    /// floor that remains in figs. 6/7 even after BrFusion removes the
    /// Netfilter hooks.
    pub virtio_guest: StageCost,
    /// vhost backend work in the host kernel (`sys` at host).
    pub vhost: StageCost,
    /// Interrupt-coalescing window applied by vhost/virtio notification
    /// suppression on *bridged* paths (NAT and Overlay configurations batch;
    /// per-pod NICs and hostlo endpoints are notification-driven and do not).
    pub coalesce_window: SimDuration,
    /// In-VM loopback (pod-local localhost) cost (`sys`).
    pub loopback: StageCost,
    /// Hostlo TAP queue service on the host (`sys` at host): the modified
    /// TAP driver copying a frame into one VM queue.
    pub hostlo_queue: StageCost,
    /// VXLAN encapsulation/decapsulation work (`soft` in the VM kernel).
    pub vxlan: StageCost,
    /// Physical/endpoint NIC DMA + descriptor handling (`sys`).
    pub phys_nic: StageCost,
    /// Application socket send/receive syscall cost (`usr` side).
    pub socket: StageCost,
    /// Propagation latency of a point-to-point link.
    pub link_latency: SimDuration,
}

impl CostModel {
    /// The calibrated model (see module docs). Constants are in nanoseconds
    /// and nanoseconds-per-byte.
    pub fn calibrated() -> CostModel {
        use CpuCategory::{Soft, Sys, Usr};
        CostModel {
            host_bridge: StageCost::fixed(1_500, 0.30, Sys).with_jitter(0.05),
            guest_bridge: StageCost::fixed(1_200, 0.40, Soft).with_jitter(0.08),
            host_nat: StageCost::fixed(3_200, 0.45, Soft)
                .with_jitter(0.10)
                .with_spikes(0.002, 8.0),
            guest_nat: StageCost::fixed(3_400, 0.90, Soft)
                .with_jitter(0.12)
                .with_spikes(0.012, 14.0),
            veth: StageCost::fixed(600, 0.15, Sys).with_jitter(0.05),
            virtio_guest: StageCost::fixed(2_600, 0.50, Soft).with_jitter(0.06),
            vhost: StageCost::fixed(3_800, 1.05, Sys).with_jitter(0.06),
            coalesce_window: SimDuration::micros(46),
            loopback: StageCost::fixed(800, 1.30, Sys)
                .with_jitter(0.10)
                // Process wakeup on localhost delivery (futex/epoll wake +
                // scheduler): pure latency, does not occupy the softirq.
                .with_stalls(1.0, SimDuration::micros(10)),
            hostlo_queue: StageCost::fixed(1_500, 4.30, Sys).with_jitter(0.12),
            vxlan: StageCost::fixed(1_200, 0.25, Soft)
                .with_jitter(0.10)
                .with_spikes(0.003, 9.0),
            phys_nic: StageCost::fixed(1_200, 0.25, Sys).with_jitter(0.03),
            socket: StageCost::fixed(1_200, 0.08, Usr).with_jitter(0.05),
            link_latency: SimDuration::micros(2),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_service_is_linear_in_bytes() {
        let c = StageCost::fixed(1_000, 2.0, CpuCategory::Sys);
        assert_eq!(c.mean_service(0), SimDuration::nanos(1_000));
        assert_eq!(c.mean_service(500), SimDuration::nanos(2_000));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let c = StageCost::fixed(10_000, 0.0, CpuCategory::Sys).with_jitter(0.1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let s = c.sample_service(0, &mut rng).as_nanos();
            assert!(
                (9_000..=11_000).contains(&s),
                "sample {s} outside jitter bounds"
            );
        }
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let c = StageCost::fixed(1_000, 0.0, CpuCategory::Sys).with_spikes(0.1, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let spikes = (0..10_000)
            .filter(|_| c.sample_service(0, &mut rng).as_nanos() > 50_000)
            .count();
        assert!(
            (800..1200).contains(&spikes),
            "spike count {spikes} far from 10%"
        );
    }

    #[test]
    fn deterministic_cost_never_varies() {
        let c = StageCost::fixed(5_000, 1.0, CpuCategory::Soft);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(c.sample_service(100, &mut rng), SimDuration::nanos(5_100));
        }
    }

    #[test]
    fn calibrated_model_orders_paths_correctly() {
        let m = CostModel::calibrated();
        // The guest NAT stage (removed by BrFusion) must dominate the guest
        // bridge, and the loopback must be the cheapest stage of all.
        assert!(m.guest_nat.mean_service(1280) > m.guest_bridge.mean_service(1280));
        assert!(m.veth.mean_service(1280) < m.guest_bridge.mean_service(1280));
        assert!(m.loopback.mean_service(1280) < m.hostlo_queue.mean_service(1280));
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn jitter_bounds_validated() {
        StageCost::fixed(1, 0.0, CpuCategory::Sys).with_jitter(1.5);
    }
}
