//! Link- and network-layer addressing: Ethernet MAC addresses, IPv4
//! addresses and subnets.
//!
//! The paper's §2 observation is that mutualizing *network identity* (MAC and
//! IP addresses) is what forces the bridge+NAT design at every virtualization
//! layer; these are the identities being mutualized.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministically allocates a locally-administered unicast MAC from a
    /// 32-bit id (used by the VMM when provisioning NICs).
    pub fn local(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        // 0x52:54 is the QEMU/KVM locally-administered prefix.
        MacAddr([0x52, 0x54, b[0], b[1], b[2], b[3]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl FromStr for MacAddr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(format!("invalid MAC address: {s:?}"));
        }
        let mut m = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            m[i] = u8::from_str_radix(p, 16)
                .map_err(|_| format!("invalid MAC octet {p:?} in {s:?}"))?;
        }
        Ok(MacAddr(m))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ip4(pub u32);

impl Ip4 {
    /// Builds from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ip4 {
        Ip4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ip4 = Ip4(0);

    /// The loopback address `127.0.0.1`.
    pub const LOCALHOST: Ip4 = Ip4::new(127, 0, 0, 1);

    /// Octets in network order.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// True for `127.0.0.0/8`.
    pub fn is_loopback(self) -> bool {
        self.octets()[0] == 127
    }
}

impl fmt::Display for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl FromStr for Ip4 {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(format!("invalid IPv4 address: {s:?}"));
        }
        let mut o = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            o[i] = p
                .parse::<u8>()
                .map_err(|_| format!("invalid IPv4 octet {p:?} in {s:?}"))?;
        }
        Ok(Ip4::new(o[0], o[1], o[2], o[3]))
    }
}

/// An IPv4 subnet in CIDR form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ip4Net {
    /// Network base address.
    pub addr: Ip4,
    /// Prefix length in bits, `0..=32`.
    pub prefix: u8,
}

impl Ip4Net {
    /// Builds a subnet; the address is masked to the prefix.
    ///
    /// # Panics
    /// Panics if `prefix > 32`.
    pub fn new(addr: Ip4, prefix: u8) -> Ip4Net {
        assert!(prefix <= 32, "prefix length must be <= 32");
        Ip4Net {
            addr: Ip4(addr.0 & Self::mask_bits(prefix)),
            prefix,
        }
    }

    fn mask_bits(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix as u32)
        }
    }

    /// Netmask as an address.
    pub fn mask(self) -> Ip4 {
        Ip4(Self::mask_bits(self.prefix))
    }

    /// True when `ip` is inside this subnet.
    pub fn contains(self, ip: Ip4) -> bool {
        ip.0 & Self::mask_bits(self.prefix) == self.addr.0
    }

    /// The `n`-th host address in the subnet (1-based; 0 is the network
    /// address). Used by topology builders to hand out addresses.
    ///
    /// # Panics
    /// Panics if the host index does not fit in the subnet.
    pub fn host(self, n: u32) -> Ip4 {
        let host_bits = 32 - self.prefix as u32;
        assert!(
            host_bits == 32 || u64::from(n) < (1u64 << host_bits),
            "host index {n} out of range for /{}",
            self.prefix
        );
        Ip4(self.addr.0 | n)
    }
}

impl fmt::Display for Ip4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix)
    }
}

/// A transport endpoint: IPv4 address plus port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SockAddr {
    /// IPv4 address.
    pub ip: Ip4,
    /// Transport port.
    pub port: u16,
}

impl SockAddr {
    /// Builds a socket address.
    pub const fn new(ip: Ip4, port: u16) -> SockAddr {
        SockAddr { ip, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_flags() {
        let m = MacAddr([0x52, 0x54, 0, 0, 0, 0x01]);
        assert_eq!(m.to_string(), "52:54:00:00:00:01");
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!m.is_multicast());
    }

    #[test]
    fn mac_parses_from_string() {
        let m: MacAddr = "52:54:00:0a:0b:0c".parse().unwrap();
        assert_eq!(m, MacAddr([0x52, 0x54, 0, 0x0a, 0x0b, 0x0c]));
        assert_eq!(m.to_string().parse::<MacAddr>().unwrap(), m);
        assert!("52:54:00".parse::<MacAddr>().is_err());
        assert!("zz:54:00:0a:0b:0c".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_local_is_unique_per_id() {
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
        assert_eq!(MacAddr::local(7), MacAddr::local(7));
        assert!(!MacAddr::local(123).is_multicast());
    }

    #[test]
    fn ip_roundtrip() {
        let ip: Ip4 = "192.168.1.42".parse().unwrap();
        assert_eq!(ip, Ip4::new(192, 168, 1, 42));
        assert_eq!(ip.to_string(), "192.168.1.42");
        assert!("1.2.3".parse::<Ip4>().is_err());
        assert!("1.2.3.256".parse::<Ip4>().is_err());
        assert!(Ip4::LOCALHOST.is_loopback());
        assert!(!ip.is_loopback());
    }

    #[test]
    fn subnet_contains_and_hosts() {
        let net = Ip4Net::new(Ip4::new(10, 0, 42, 99), 24);
        assert_eq!(net.addr, Ip4::new(10, 0, 42, 0), "address is masked");
        assert!(net.contains(Ip4::new(10, 0, 42, 1)));
        assert!(!net.contains(Ip4::new(10, 0, 43, 1)));
        assert_eq!(net.host(7), Ip4::new(10, 0, 42, 7));
        assert_eq!(net.mask(), Ip4::new(255, 255, 255, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subnet_host_bounds() {
        Ip4Net::new(Ip4::new(10, 0, 0, 0), 30).host(4);
    }

    #[test]
    fn sockaddr_display() {
        let sa = SockAddr::new(Ip4::new(10, 0, 0, 1), 8080);
        assert_eq!(sa.to_string(), "10.0.0.1:8080");
    }
}
