//! Application endpoints.
//!
//! An [`Endpoint`] is the socket-owning leaf of the datapath: benchmark
//! servers and clients (Netperf, Memcached, NGINX, Kafka models in the
//! `workloads` crate) implement [`Application`] and are hosted by an
//! endpoint, which provides address configuration, neighbor resolution,
//! transport filtering, and charges socket syscall costs.

use crate::addr::{Ip4, Ip4Net, MacAddr, SockAddr};
use crate::costs::StageCost;
use crate::device::{Device, DeviceKind, PortId};
use crate::engine::DevCtx;
use crate::filter::{Chain, FilterControl, HookIds, StateTracker, Verdict, REJECT_TAG};
use crate::frame::{Frame, Payload, TcpKind};
use crate::nat::Proto;
use crate::shared::SharedStation;
use crate::time::{SimDuration, SimTime};
use metrics::{CpuCategory, JournalKind, MetricId};
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet};

/// Timer token reserved for application start-up.
pub const START_TOKEN: u64 = u64::MAX;

/// One NIC of an endpoint (port index = interface index).
#[derive(Debug, Clone)]
pub struct IfaceConf {
    /// Interface MAC.
    pub mac: MacAddr,
    /// Interface IP.
    pub ip: Ip4,
    /// On-link subnet.
    pub net: Ip4Net,
    /// Static neighbor table.
    pub neigh: HashMap<Ip4, MacAddr>,
    /// Default gateway reachable through this interface, if any.
    pub gateway: Option<(Ip4, MacAddr)>,
    /// When set, frames to unresolved on-link neighbors are sent to the
    /// broadcast MAC instead of being dropped (loopback/hostlo semantics,
    /// where the device floods and receivers filter).
    pub broadcast_unresolved: bool,
}

impl IfaceConf {
    /// Builds an interface with no neighbors and no gateway.
    pub fn new(mac: MacAddr, ip: Ip4, net: Ip4Net) -> IfaceConf {
        IfaceConf {
            mac,
            ip,
            net,
            neigh: HashMap::new(),
            gateway: None,
            broadcast_unresolved: false,
        }
    }

    /// Adds a neighbor entry.
    pub fn with_neigh(mut self, ip: Ip4, mac: MacAddr) -> IfaceConf {
        self.neigh.insert(ip, mac);
        self
    }

    /// Sets the default gateway.
    pub fn with_gateway(mut self, ip: Ip4, mac: MacAddr) -> IfaceConf {
        self.gateway = Some((ip, mac));
        self
    }

    /// Enables broadcast fallback for unresolved neighbors.
    pub fn with_broadcast_unresolved(mut self) -> IfaceConf {
        self.broadcast_unresolved = true;
        self
    }
}

/// A message delivered to an application.
#[derive(Debug, Clone)]
pub struct Incoming {
    /// Sender socket address (as seen on the wire, i.e. post-NAT).
    pub src: SockAddr,
    /// Destination socket address.
    pub dst: SockAddr,
    /// Application payload.
    pub payload: Payload,
    /// `(seq, kind)` when the message is TCP.
    pub tcp: Option<(u64, TcpKind)>,
}

/// The application behaviour plugged into an [`Endpoint`].
pub trait Application: Send {
    /// Called once when the endpoint's start timer fires.
    fn on_start(&mut self, api: &mut AppApi<'_, '_>);

    /// Called for every accepted message.
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>);

    /// Called for application timers.
    fn on_timer(&mut self, token: u64, api: &mut AppApi<'_, '_>) {
        let _ = (token, api);
    }
}

/// Interned metric ids for an endpoint, resolved on first event.
#[derive(Clone, Copy)]
struct EndpointIds {
    filtered_l2: MetricId,
    filtered_l3: MetricId,
    delivered: MetricId,
    sent: MetricId,
    unroutable: MetricId,
    stage: MetricId,
}

impl EndpointIds {
    fn resolve(name: &str, ctx: &mut DevCtx<'_>) -> EndpointIds {
        EndpointIds {
            filtered_l2: ctx.metric(&format!("{name}.filtered_l2")),
            filtered_l3: ctx.metric(&format!("{name}.filtered_l3")),
            delivered: ctx.metric(&format!("{name}.delivered")),
            sent: ctx.metric("endpoint.sent"),
            unroutable: ctx.metric("endpoint.send_unroutable"),
            stage: ctx.metric("stage.endpoint"),
        }
    }
}

/// The capability surface an [`Application`] sees.
pub struct AppApi<'a, 'b> {
    ctx: &'a mut DevCtx<'b>,
    ifaces: &'a [IfaceConf],
    sock_cost: &'a StageCost,
    station: &'a SharedStation,
    ids: EndpointIds,
    /// The endpoint's conntrack; outbound sends are recorded (when the
    /// INPUT filter is engaged) so replies state-match as ESTABLISHED.
    tracker: &'a mut StateTracker,
    track: bool,
}

impl AppApi<'_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Seeded RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.ctx.rng()
    }

    /// IP of interface `iface` (0 is the primary NIC).
    pub fn local_ip(&self, iface: usize) -> Ip4 {
        self.ifaces[iface].ip
    }

    /// Schedules an application timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        assert_ne!(token, START_TOKEN, "token reserved for endpoint start");
        self.ctx.set_timer(delay, token);
    }

    /// Records a measurement sample.
    pub fn record(&mut self, name: &str, value: f64) {
        self.ctx.record(name, value);
    }

    /// Bumps a counter.
    pub fn count(&mut self, name: &str, delta: f64) {
        self.ctx.count(name, delta);
    }

    /// Consumes `d` of application CPU (`usr`), serializing with the
    /// endpoint's sends (single-threaded application model).
    pub fn compute(&mut self, d: SimDuration) {
        let cost = StageCost::fixed(d.as_nanos(), 0.0, CpuCategory::Usr);
        self.station.serve(&cost, 0, self.ctx);
    }

    /// Sends a UDP datagram from `src_port` to `dst`. The payload's
    /// `sent_at` is stamped with the current time if zero.
    pub fn send_udp(&mut self, src_port: u16, dst: SockAddr, payload: Payload) {
        self.send_inner(src_port, dst, None, payload);
    }

    /// Sends a TCP segment (`seq`, `kind`) from `src_port` to `dst`.
    pub fn send_tcp(
        &mut self,
        src_port: u16,
        dst: SockAddr,
        seq: u64,
        kind: TcpKind,
        payload: Payload,
    ) {
        self.send_inner(src_port, dst, Some((seq, kind)), payload);
    }

    fn send_inner(
        &mut self,
        src_port: u16,
        dst: SockAddr,
        tcp: Option<(u64, TcpKind)>,
        mut payload: Payload,
    ) {
        if payload.sent_at == SimTime::ZERO {
            payload.sent_at = self.ctx.now();
        }
        // Route: on-link interface first, then any interface with a gateway.
        let choice = self
            .ifaces
            .iter()
            .enumerate()
            .find(|(_, i)| i.net.contains(dst.ip))
            .map(|(idx, i)| {
                // On-link resolution order: static neighbor entry, then the
                // broadcast fallback (loopback/hostlo), then the gateway as
                // a proxy-ARP stand-in (the kernel would ARP and the router
                // would answer for hosts it fronts).
                let mac = i
                    .neigh
                    .get(&dst.ip)
                    .copied()
                    .or_else(|| i.broadcast_unresolved.then_some(MacAddr::BROADCAST))
                    .or_else(|| i.gateway.map(|(_, mac)| mac));
                (idx, i, mac)
            })
            .or_else(|| {
                self.ifaces
                    .iter()
                    .enumerate()
                    .find(|(_, i)| i.gateway.is_some())
                    .map(|(idx, i)| (idx, i, Some(i.gateway.expect("checked").1)))
            });

        let Some((idx, iface, Some(dst_mac))) = choice else {
            self.ctx.count_id(self.ids.unroutable, 1.0);
            return;
        };
        let src = SockAddr::new(iface.ip, src_port);
        if self.track {
            let proto = if tcp.is_some() {
                Proto::Tcp
            } else {
                Proto::Udp
            };
            self.tracker.note(proto, src, dst, self.ctx.now());
        }
        let frame = match tcp {
            None => Frame::udp(iface.mac, dst_mac, src, dst, payload),
            Some((seq, kind)) => Frame::tcp(iface.mac, dst_mac, src, dst, seq, kind, payload),
        };
        let done = self
            .station
            .serve(self.sock_cost, frame.wire_len(), self.ctx);
        self.ctx.count_id(self.ids.sent, 1.0);
        self.ctx.transmit_at(done, PortId(idx), frame);
    }
}

/// The endpoint device: NIC configuration + bound ports + hosted app.
pub struct Endpoint {
    name: String,
    ifaces: Vec<IfaceConf>,
    bound: HashSet<u16>,
    app: Option<Box<dyn Application>>,
    sock_cost: StageCost,
    station: SharedStation,
    ids: Option<EndpointIds>,
    /// INPUT filter table (NetworkPolicy ingress chains land here when
    /// the CNI targets the pod's own delivery point). Never-configured
    /// tables cost one atomic load per frame.
    filter: FilterControl,
    /// Device-local conntrack feeding the filter's state-match.
    tracker: StateTracker,
    filter_ids: Option<HookIds>,
}

impl Endpoint {
    /// Creates an endpoint hosting `app`.
    ///
    /// `bound` is the set of transport ports the application listens on;
    /// frames to other ports are filtered (the kernel would not deliver
    /// them to any socket). `station` is the kernel station of the node the
    /// endpoint runs on; `sock_cost` is charged per send/receive.
    pub fn new(
        name: impl Into<String>,
        ifaces: Vec<IfaceConf>,
        bound: impl IntoIterator<Item = u16>,
        sock_cost: StageCost,
        station: SharedStation,
        app: Box<dyn Application>,
    ) -> Endpoint {
        assert!(!ifaces.is_empty(), "endpoint needs at least one interface");
        Endpoint {
            name: name.into(),
            ifaces,
            bound: bound.into_iter().collect(),
            app: Some(app),
            sock_cost,
            station,
            ids: None,
            filter: FilterControl::default(),
            tracker: StateTracker::default(),
            filter_ids: None,
        }
    }

    /// The endpoint's INPUT filter table handle (clone it out before
    /// boxing the device into a network).
    pub fn filter(&self) -> FilterControl {
        self.filter.clone()
    }

    fn ids(&mut self, ctx: &mut DevCtx<'_>) -> EndpointIds {
        let name = &self.name;
        *self
            .ids
            .get_or_insert_with(|| EndpointIds::resolve(name, ctx))
    }

    fn with_app<R>(
        &mut self,
        ctx: &mut DevCtx<'_>,
        f: impl FnOnce(&mut dyn Application, &mut AppApi<'_, '_>) -> R,
    ) -> R {
        let ids = self.ids(ctx);
        let track = !self.filter.is_empty();
        let mut app = self.app.take().expect("application re-entered");
        let mut api = AppApi {
            ctx,
            ifaces: &self.ifaces,
            sock_cost: &self.sock_cost,
            station: &self.station,
            ids,
            tracker: &mut self.tracker,
            track,
        };
        let r = f(app.as_mut(), &mut api);
        self.app = Some(app);
        r
    }
}

impl Device for Endpoint {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Endpoint
    }

    fn on_frame(&mut self, port: PortId, mut frame: Frame, ctx: &mut DevCtx<'_>) {
        assert!(
            port.0 < self.ifaces.len(),
            "frame on nonexistent endpoint port"
        );
        let ids = self.ids(ctx);
        let iface = &self.ifaces[port.0];

        // L2 filter.
        if frame.dst_mac != iface.mac && !frame.dst_mac.is_multicast() {
            ctx.count_id(ids.filtered_l2, 1.0);
            return;
        }
        // L3/L4 filter: addressed to me, on a bound port.
        let Some(dst) = frame.ip.dst_sock() else {
            ctx.count_id(ids.filtered_l3, 1.0);
            return;
        };
        if dst.ip != iface.ip || !self.bound.contains(&dst.port) {
            ctx.count_id(ids.filtered_l3, 1.0);
            return;
        }
        let Some(src) = frame.ip.src_sock() else {
            ctx.count_id(ids.filtered_l3, 1.0);
            return;
        };

        // INPUT filter, between the transport demux and the socket (the
        // kernel's LOCAL_IN hook). State-match runs against the endpoint's
        // own conntrack, which also records outbound sends, so
        // ESTABLISHED admits replies to this endpoint's requests. One
        // atomic load when no rule was ever installed.
        if !self.filter.is_empty() {
            if let Some(proto) = Proto::of(&frame.ip.transport) {
                let fids = *self
                    .filter_ids
                    .get_or_insert_with(|| HookIds::resolve(Chain::Input, ctx));
                let now = ctx.now();
                let state = self.tracker.state_of(proto, src, dst, now);
                let (verdict, rule_id) =
                    self.filter.eval(Chain::Input, proto, src, dst, state, now);
                let dev = ctx.self_id().0 as u64;
                match verdict {
                    Verdict::Accept => {
                        ctx.count_id(fids.accept, 1.0);
                        self.tracker.note(proto, src, dst, now);
                    }
                    Verdict::Drop => {
                        ctx.count_id(fids.drop, 1.0);
                        ctx.journal(JournalKind::FilterDrop, dev, rule_id, Verdict::Drop.code());
                        return;
                    }
                    Verdict::Reject => {
                        ctx.count_id(fids.reject, 1.0);
                        ctx.journal(
                            JournalKind::FilterDrop,
                            dev,
                            rule_id,
                            Verdict::Reject.code(),
                        );
                        // Port-unreachable analogue back to the sender;
                        // the kernel still does softirq work to refuse.
                        let done = self.station.serve(&self.sock_cost, frame.wire_len(), ctx);
                        let mut p = Payload::sized(8);
                        p.tag = REJECT_TAG;
                        let notif = Frame::udp(iface.mac, frame.src_mac, dst, src, p);
                        ctx.transmit_at(done, port, notif);
                        return;
                    }
                }
            }
        }

        // Receive syscall cost. The span closes the frame's flight path at
        // its delivery point.
        let done = self.station.serve(&self.sock_cost, frame.wire_len(), ctx);
        ctx.stage_frame(ids.stage, &mut frame, done);
        ctx.count_id(ids.delivered, 1.0);

        let tcp = match &frame.ip.transport {
            crate::frame::Transport::Tcp { seq, kind, .. } => Some((*seq, *kind)),
            _ => None,
        };
        let payload = frame.ip.transport.payload().cloned().unwrap_or_default();
        let msg = Incoming {
            src,
            dst,
            payload,
            tcp,
        };
        self.with_app(ctx, |app, api| app.on_message(msg, api));
    }

    fn on_timer(&mut self, token: u64, ctx: &mut DevCtx<'_>) {
        if token == START_TOKEN {
            self.with_app(ctx, |app, api| app.on_start(api));
        } else {
            self.with_app(ctx, |app, api| app.on_timer(token, api));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StopCondition;
    use crate::engine::{LinkParams, Network};
    use metrics::CpuLocation;

    /// Echoes every message back to its sender, tagging replies.
    struct Echo {
        port: u16,
    }

    impl Application for Echo {
        fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
            api.count("echo.started", 1.0);
        }
        fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
            let mut p = Payload::sized(msg.payload.len);
            p.tag = msg.payload.tag;
            api.send_udp(self.port, msg.src, p);
        }
    }

    /// Sends one request on start; records the RTT of the reply.
    struct Once {
        dst: SockAddr,
        port: u16,
    }

    impl Application for Once {
        fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
            let mut p = Payload::sized(100);
            p.tag = 7;
            api.send_udp(self.port, self.dst, p);
        }
        fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
            assert_eq!(msg.payload.tag, 7);
            api.record("rtt_ns", api.now().as_nanos() as f64);
        }
    }

    fn net_pair() -> Network {
        let subnet = Ip4Net::new(Ip4::new(10, 0, 0, 0), 24);
        let a_mac = MacAddr::local(1);
        let b_mac = MacAddr::local(2);
        let a_ip = subnet.host(1);
        let b_ip = subnet.host(2);
        let mut net = Network::new(0);
        let cost = StageCost::fixed(1_000, 0.0, CpuCategory::Usr);
        let client = Endpoint::new(
            "client",
            vec![IfaceConf::new(a_mac, a_ip, subnet).with_neigh(b_ip, b_mac)],
            [4000],
            cost,
            SharedStation::new(),
            Box::new(Once {
                dst: SockAddr::new(b_ip, 5000),
                port: 4000,
            }),
        );
        let server = Endpoint::new(
            "server",
            vec![IfaceConf::new(b_mac, b_ip, subnet).with_neigh(a_ip, a_mac)],
            [5000],
            cost,
            SharedStation::new(),
            Box::new(Echo { port: 5000 }),
        );
        let c = net.add_device("client", CpuLocation::Host, Box::new(client));
        let s = net.add_device("server", CpuLocation::Host, Box::new(server));
        net.connect(
            c,
            PortId::P0,
            s,
            PortId::P0,
            LinkParams::with_latency(SimDuration::micros(1)),
        );
        net.schedule_timer(SimDuration::ZERO, s, START_TOKEN);
        net.schedule_timer(SimDuration::ZERO, c, START_TOKEN);
        net
    }

    #[test]
    fn request_reply_roundtrip() {
        let mut net = net_pair();
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("echo.started"), 1.0);
        assert_eq!(net.store().samples("rtt_ns").len(), 1);
        // send 1us + link 1us, then the reply send queues behind the
        // server's 1us receive cost (3us), completes at 4us, +1us link.
        assert_eq!(net.store().samples("rtt_ns")[0], 5_000.0);
    }

    #[test]
    fn unbound_port_is_filtered() {
        let mut net = net_pair();
        // Inject a frame to the server on a port nobody bound.
        let f = Frame::udp(
            MacAddr::local(1),
            MacAddr::local(2),
            SockAddr::new(Ip4::new(10, 0, 0, 1), 4000),
            SockAddr::new(Ip4::new(10, 0, 0, 2), 9999),
            Payload::sized(10),
        );
        net.inject_frame(SimDuration::ZERO, crate::device::DeviceId(1), PortId::P0, f);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("server.filtered_l3"), 1.0);
    }

    #[test]
    fn wrong_mac_is_filtered() {
        let mut net = net_pair();
        let f = Frame::udp(
            MacAddr::local(1),
            MacAddr::local(77), // not the server's MAC
            SockAddr::new(Ip4::new(10, 0, 0, 1), 4000),
            SockAddr::new(Ip4::new(10, 0, 0, 2), 5000),
            Payload::sized(10),
        );
        net.inject_frame(SimDuration::ZERO, crate::device::DeviceId(1), PortId::P0, f);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("server.filtered_l2"), 1.0);
    }

    #[test]
    fn unroutable_send_is_counted() {
        struct SendNowhere;
        impl Application for SendNowhere {
            fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
                api.send_udp(
                    1,
                    SockAddr::new(Ip4::new(99, 99, 99, 99), 1),
                    Payload::sized(1),
                );
            }
            fn on_message(&mut self, _: Incoming, _: &mut AppApi<'_, '_>) {}
        }
        let mut net = Network::new(0);
        let e = Endpoint::new(
            "e",
            vec![IfaceConf::new(
                MacAddr::local(1),
                Ip4::new(10, 0, 0, 1),
                Ip4Net::new(Ip4::new(10, 0, 0, 0), 24),
            )],
            [1],
            StageCost::fixed(1, 0.0, CpuCategory::Usr),
            SharedStation::new(),
            Box::new(SendNowhere),
        );
        let id = net.add_device("e", CpuLocation::Host, Box::new(e));
        net.schedule_timer(SimDuration::ZERO, id, START_TOKEN);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("endpoint.send_unroutable"), 1.0);
    }

    #[test]
    fn broadcast_unresolved_falls_back_to_flood() {
        struct SendOnLink;
        impl Application for SendOnLink {
            fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
                api.send_udp(
                    1,
                    SockAddr::new(Ip4::new(10, 0, 0, 9), 2),
                    Payload::sized(1),
                );
            }
            fn on_message(&mut self, _: Incoming, _: &mut AppApi<'_, '_>) {}
        }
        let mut net = Network::new(0);
        let e = Endpoint::new(
            "e",
            vec![IfaceConf::new(
                MacAddr::local(1),
                Ip4::new(10, 0, 0, 1),
                Ip4Net::new(Ip4::new(10, 0, 0, 0), 24),
            )
            .with_broadcast_unresolved()],
            [1],
            StageCost::fixed(1, 0.0, CpuCategory::Usr),
            SharedStation::new(),
            Box::new(SendOnLink),
        );
        let id = net.add_device("e", CpuLocation::Host, Box::new(e));
        let sink = net.add_device(
            "sink",
            CpuLocation::Host,
            Box::new(crate::testutil::CaptureSink::new("sink")),
        );
        net.connect(id, PortId::P0, sink, PortId::P0, LinkParams::default());
        net.schedule_timer(SimDuration::ZERO, id, START_TOKEN);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("sink.received"), 1.0);
        assert_eq!(net.store().counter("endpoint.sent"), 1.0);
    }

    #[test]
    fn compute_serializes_with_sends() {
        struct Busy {
            dst: SockAddr,
        }
        impl Application for Busy {
            fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
                api.compute(SimDuration::micros(10));
                api.send_udp(1, self.dst, Payload::sized(1));
            }
            fn on_message(&mut self, _: Incoming, _: &mut AppApi<'_, '_>) {}
        }
        let mut net = Network::new(0);
        let subnet = Ip4Net::new(Ip4::new(10, 0, 0, 0), 24);
        let e = Endpoint::new(
            "e",
            vec![IfaceConf::new(MacAddr::local(1), subnet.host(1), subnet)
                .with_neigh(subnet.host(2), MacAddr::local(2))],
            [1],
            StageCost::fixed(1_000, 0.0, CpuCategory::Usr),
            SharedStation::new(),
            Box::new(Busy {
                dst: SockAddr::new(subnet.host(2), 2),
            }),
        );
        let id = net.add_device("e", CpuLocation::Host, Box::new(e));
        let sink = net.add_device(
            "sink",
            CpuLocation::Host,
            Box::new(crate::testutil::CaptureSink::new("sink")),
        );
        net.connect(id, PortId::P0, sink, PortId::P0, LinkParams::default());
        net.schedule_timer(SimDuration::ZERO, id, START_TOKEN);
        net.run(StopCondition::Idle);
        // 10us compute + 1us socket send
        assert_eq!(net.store().samples("sink.arrival_ns"), &[11_000.0]);
        assert_eq!(net.cpu().get(CpuLocation::Host, CpuCategory::Usr), 11_000);
    }
}
