//! Flow-level fast path: analytic models for steady-state flows.
//!
//! Per-packet simulation pays one event per device hop. For long-lived,
//! steady flows (a memcached hot loop, an nginx keep-alive connection)
//! that per-hop work re-derives the same forwarding decision millions of
//! times. The [`FlowTable`] learns each flow's path once — by riding a
//! *probe stamp* on ordinary packet-level frames — and then collapses
//! subsequent emissions into a single synthesized delivery event at the
//! learned latency, replaying the learned per-hop CPU costs into the
//! accounts so figure-level outputs stay comparable.
//!
//! The table is strictly an accelerator: it never invents traffic and it
//! *escalates back to packet level* whenever fidelity matters —
//! connection setup (flows start in [`Learning`]), path or NAT changes
//! (periodic re-probes compare the observed path against the model),
//! active [`FaultPlan`](crate::fault::FaultPlan) windows overlapping a
//! learned hop, idle gaps (a restarting connection must re-learn),
//! pipelined senders (an emission gap under the one-way latency floor
//! means several frames in flight, so per-hop queueing — which the
//! analytic model does not capture — governs throughput; such flows are
//! pinned to packet level for good), and any frame carrying a
//! flight-recorder trace (traced frames always go packet level so span
//! trees stay complete).
//!
//! Determinism: every mutation of a flow's state happens while processing
//! an event *on the origin's shard* — either the origin endpoint's own
//! emission (inside `transmit_at`) or a [`FlowUpdate`] advert event
//! addressed to the origin device. Adverts ride the ordinary event heap
//! (and, sharded, the round protocol's rings) with intrinsic tags, so the
//! decision sequence is identical for any `SIMNET_SHARDS` value.

use crate::addr::{Ip4, MacAddr};
use crate::device::{DeviceId, PortId};
use crate::engine::SampleStore;
use crate::frame::{Frame, Transport};
use crate::time::SimTime;
use metrics::{CpuCategory, CpuLocation, FlowEscalateReason, MetricId};
use std::collections::HashMap;

/// How faithfully the engine simulates traffic (selected through
/// [`SimConfig::fidelity`](crate::SimConfig::fidelity)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Every frame is simulated hop by hop (the default; bit-identical to
    /// all releases before the flow table existed).
    #[default]
    Packet,
    /// Steady flows take the analytic fast path but are periodically
    /// re-probed at packet level so path/NAT changes are caught.
    Hybrid,
    /// Steady flows stay on the fast path without revalidation probes;
    /// only fault windows, idle gaps, and conflicting adverts escalate.
    FlowOnly,
}

/// Number of consecutive consistent adverts before a flow is promoted to
/// the steady (fast-path) state.
const STEADY_AFTER: u32 = 3;

/// While learning, every emission is probed until this many emissions
/// have gone by without a promotion; after that probing thins out to
/// [`PROBE_EVERY`] (a flow that never converges, e.g. one behind a
/// flooding bridge, must not probe forever at full rate).
const LEARN_CAP: u64 = 256;

/// Steady-state revalidation cadence in `Hybrid` mode: one emission in
/// this many goes packet level to re-verify the learned path.
const PROBE_EVERY: u64 = 32;

/// Revalidation cadence for flows whose path crosses a NAT: conntrack
/// entries can expire or be rewritten, so NAT paths are re-checked more
/// often.
const NAT_PROBE_EVERY: u64 = 8;

/// An emission gap (ns) larger than this demotes a steady flow: the
/// connection paused long enough that setup/teardown effects (conntrack
/// expiry, ARP aging) could have changed the path.
const IDLE_GAP_NS: u64 = 10_000_000;

/// Identity of a flow at its emitting endpoint. The origin device id and
/// MAC pair are part of the key because distinct simulated hosts may
/// legitimately reuse IP/port tuples (test topologies do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// The emitting endpoint device.
    pub origin: DeviceId,
    /// Ethernet source of the emitted frames.
    pub src_mac: MacAddr,
    /// Ethernet destination of the emitted frames.
    pub dst_mac: MacAddr,
    /// IP source.
    pub src_ip: Ip4,
    /// IP destination.
    pub dst_ip: Ip4,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// True for TCP, false for UDP.
    pub tcp: bool,
}

impl FlowKey {
    /// Classifies an emission; `None` for frames that can never be
    /// flow-modeled (non-UDP/TCP transports, multicast).
    pub fn classify(origin: DeviceId, frame: &Frame) -> Option<FlowKey> {
        if frame.dst_mac.is_multicast() {
            return None;
        }
        let (src_port, dst_port, tcp) = match &frame.ip.transport {
            Transport::Udp {
                src_port, dst_port, ..
            } => (*src_port, *dst_port, false),
            Transport::Tcp {
                src_port, dst_port, ..
            } => (*src_port, *dst_port, true),
            _ => return None,
        };
        Some(FlowKey {
            origin,
            src_mac: frame.src_mac,
            dst_mac: frame.dst_mac,
            src_ip: frame.ip.src,
            dst_ip: frame.ip.dst,
            src_port,
            dst_port,
            tcp,
        })
    }
}

/// Callback asking whether any fault window overlaps a synthesized
/// flight `[from, from+lat)` on any learned hop.
pub(crate) type FaultProbeFn<'a> = dyn Fn(&[(DeviceId, PortId)], SimTime, u64) -> bool + 'a;

/// Callback resolving the policy state of a learned path's hops. Returns
/// `(changed, epoch)`: `changed` is true when any registered filter rule
/// on a hop has an activation/deactivation instant in `(after, upto]`
/// (a scheduled rule window opened or closed inside the un-checked
/// interval); `epoch` sums the mutation epochs of every watched
/// NAT/filter control on the hops (any between-runs rule mutation moves
/// it). Either signal escalates the flow — the same contract FaultPlan
/// windows get, so a rule change is never bypassed by synthesized
/// deliveries.
pub(crate) type PolicyProbeFn<'a> =
    dyn Fn(&[(DeviceId, PortId)], SimTime, SimTime) -> (bool, u64) + 'a;

/// The optional probe stamp a [`Frame`] carries. Like
/// [`FlightStamp`](metrics::FlightStamp) it is transparent to frame
/// equality and defaults to empty, so packet-level runs and frame
/// comparisons are unchanged by its existence.
#[derive(Debug, Clone, Default)]
pub struct FlowTag(pub(crate) Option<Box<FlowProbe>>);

impl FlowTag {
    /// Stamps a probe onto a frame.
    pub(crate) fn stamp(probe: FlowProbe) -> FlowTag {
        FlowTag(Some(Box::new(probe)))
    }

    /// Removes and returns the probe, leaving the tag empty.
    pub(crate) fn take(&mut self) -> Option<Box<FlowProbe>> {
        self.0.take()
    }

    /// True when a probe is riding this frame.
    pub(crate) fn is_some(&self) -> bool {
        self.0.is_some()
    }
}

impl PartialEq for FlowTag {
    fn eq(&self, _: &FlowTag) -> bool {
        true
    }
}

impl Eq for FlowTag {}

/// The probe stamp a learning frame carries across the topology. Each
/// forwarding hop appends itself; the delivering endpoint's engine turns
/// the accumulated stamp into a [`FlowUpdate`] advert back to the origin.
#[derive(Debug, Clone)]
pub struct FlowProbe {
    /// The flow being learned.
    pub key: FlowKey,
    /// Emission time at the origin (per-path latency = delivery − born).
    pub born: SimTime,
    /// Every (device, egress port) the frame crossed, origin included.
    pub hops: Vec<(DeviceId, PortId)>,
    /// CPU charged by intermediate hops (origin and delivery endpoint
    /// excluded — those still run live on the fast path).
    pub cpu: Vec<(CpuLocation, CpuCategory, u64)>,
    /// False once the frame crossed a device that refuses flow bypass
    /// (e.g. a rate shaper) or a lossy link; such paths never go steady.
    pub ok: bool,
    /// True once the frame crossed a NAT (tighter revalidation cadence).
    pub has_nat: bool,
}

/// A delivered probe, advertised back to the origin as an engine event.
#[derive(Debug, Clone)]
pub struct FlowUpdate {
    /// The flow this advert describes.
    pub key: FlowKey,
    /// Device the probe was delivered to.
    pub dst: DeviceId,
    /// Ingress port it was delivered on.
    pub dst_port: PortId,
    /// The frame exactly as delivered (headers may differ from the
    /// emitted ones after NAT rewrites); fast-path frames are synthesized
    /// from this template.
    pub template: Frame,
    /// Observed one-way latency in ns.
    pub lat: u64,
    /// Path hops, copied from the probe.
    pub hops: Vec<(DeviceId, PortId)>,
    /// Intermediate-hop CPU, copied from the probe.
    pub cpu: Vec<(CpuLocation, CpuCategory, u64)>,
    /// Whether every hop allows flow bypass and every link is lossless.
    pub ok: bool,
    /// Whether the path crossed a NAT.
    pub has_nat: bool,
}

/// The analytic model of a converged path.
#[derive(Debug, Clone)]
pub struct LearnedPath {
    /// Delivery device.
    pub dst: DeviceId,
    /// Delivery port.
    pub dst_port: PortId,
    /// Header template for synthesized frames.
    pub template: Frame,
    /// Hops, for fault-window escalation checks.
    pub hops: Vec<(DeviceId, PortId)>,
    /// Per-hop CPU replayed for each fast-path frame.
    pub cpu: Vec<(CpuLocation, CpuCategory, u64)>,
    /// Path crosses a NAT.
    pub has_nat: bool,
    /// EWMA of observed one-way latency (ns), α = 1/8.
    pub lat_ewma: u64,
    /// Minimum observed latency (ns); synthesized deliveries never
    /// undercut it, which keeps the sharded lookahead bound sound.
    pub lat_min: u64,
}

impl LearnedPath {
    fn from_update(u: &FlowUpdate) -> LearnedPath {
        LearnedPath {
            dst: u.dst,
            dst_port: u.dst_port,
            template: u.template.clone(),
            hops: u.hops.clone(),
            cpu: u.cpu.clone(),
            has_nat: u.has_nat,
            lat_ewma: u.lat,
            lat_min: u.lat,
        }
    }

    /// True when an advert re-confirms this model (same endpoints, same
    /// path shape, same post-rewrite headers).
    fn confirmed_by(&self, u: &FlowUpdate) -> bool {
        self.dst == u.dst
            && self.dst_port == u.dst_port
            && self.hops == u.hops
            && self.has_nat == u.has_nat
            && headers_match(&self.template, &u.template)
    }

    /// The latency used for synthesized deliveries.
    pub fn latency(&self) -> u64 {
        self.lat_ewma.max(self.lat_min)
    }
}

/// Header-level equality: everything that identifies the path's rewrite
/// behaviour, ignoring the payload (which varies per message).
fn headers_match(a: &Frame, b: &Frame) -> bool {
    if a.src_mac != b.src_mac
        || a.dst_mac != b.dst_mac
        || a.ip.src != b.ip.src
        || a.ip.dst != b.ip.dst
    {
        return false;
    }
    match (&a.ip.transport, &b.ip.transport) {
        (
            Transport::Udp {
                src_port: asp,
                dst_port: adp,
                ..
            },
            Transport::Udp {
                src_port: bsp,
                dst_port: bdp,
                ..
            },
        ) => asp == bsp && adp == bdp,
        (
            Transport::Tcp {
                src_port: asp,
                dst_port: adp,
                ..
            },
            Transport::Tcp {
                src_port: bsp,
                dst_port: bdp,
                ..
            },
        ) => asp == bsp && adp == bdp,
        _ => false,
    }
}

/// Per-flow learning/steady state.
#[derive(Debug, Clone, Default)]
struct FlowState {
    /// Emissions seen (drives probe cadence).
    emits: u64,
    /// Last emission time (drives idle-gap demotion).
    last_emit: SimTime,
    /// Consecutive confirming adverts while learning.
    consistent: u32,
    /// True once promoted to the fast path.
    steady: bool,
    /// True once the flow was caught emitting faster than its one-way
    /// latency: multiple frames in flight means throughput is governed by
    /// per-hop queueing the analytic model does not capture (a windowed
    /// TCP stream would otherwise pump unboundedly past the bottleneck),
    /// so the flow is pinned to packet level for good.
    pipelined: bool,
    /// Policy-epoch sum over the learned path's hops at the last clean
    /// check (see [`PolicyProbeFn`]).
    policy_epoch: u64,
    /// Upper bound of the last clean policy-window check; the next check
    /// covers `(policy_checked, when]`.
    policy_checked: SimTime,
    /// The current path model (kept across demotions as the comparison
    /// target for re-learning).
    path: Option<LearnedPath>,
}

/// Interned metric ids for the flow.* counters.
#[derive(Debug, Clone, Copy)]
struct FlowIds {
    fastpath_frames: MetricId,
    fastpath_bytes: MetricId,
    probes: MetricId,
    adverts: MetricId,
    promotions: MetricId,
    escalations: MetricId,
}

impl FlowIds {
    fn intern(store: &mut SampleStore) -> FlowIds {
        FlowIds {
            fastpath_frames: store.metric_id("flow.fastpath_frames"),
            fastpath_bytes: store.metric_id("flow.fastpath_bytes"),
            probes: store.metric_id("flow.probes"),
            adverts: store.metric_id("flow.adverts"),
            promotions: store.metric_id("flow.steady_promotions"),
            escalations: store.metric_id("flow.escalations"),
        }
    }
}

/// What the engine should do with one emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EmitAction {
    /// Simulate hop by hop, unstamped.
    Packet,
    /// Simulate hop by hop carrying a probe stamp.
    Probe,
    /// Synthesize the delivery from the learned path.
    Fast,
}

/// A flow-table decision worth journaling. At most one per
/// `on_emit`/`absorb` call; the engine drains it through
/// [`FlowTable::take_event`] immediately after the call that produced it
/// (so the slot is always empty at snapshot boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlowEvent {
    /// A flow confirmed its path and was promoted to the fast path.
    Promoted {
        /// Origin endpoint's device index.
        origin: u32,
        /// Confirmed one-way latency (ns) at promotion time.
        lat: u64,
    },
    /// A steady flow fell back to packet level.
    Escalated {
        /// Origin endpoint's device index.
        origin: u32,
        /// Why the flow left the fast path.
        reason: FlowEscalateReason,
    },
    /// A flow was caught pipelining and pinned to packet level for good.
    /// Subsumes the escalation that accompanies a pin of a steady flow.
    Pinned {
        /// Origin endpoint's device index.
        origin: u32,
    },
}

/// The per-engine flow table (present only in `Hybrid`/`FlowOnly` runs).
///
/// Cloned wholesale into [`EngineSnapshot`](crate::engine::Network)
/// snapshots so optimistic rollback restores flow state exactly.
#[derive(Debug, Clone)]
pub(crate) struct FlowTable {
    fidelity: Fidelity,
    flows: HashMap<FlowKey, FlowState>,
    ids: FlowIds,
    /// Pending journal-worthy decision (see [`FlowEvent`]).
    last_event: Option<FlowEvent>,
}

impl FlowTable {
    pub(crate) fn new(fidelity: Fidelity, store: &mut SampleStore) -> FlowTable {
        debug_assert_ne!(fidelity, Fidelity::Packet);
        FlowTable {
            fidelity,
            flows: HashMap::new(),
            ids: FlowIds::intern(store),
            last_event: None,
        }
    }

    /// Drains the decision event produced by the last `on_emit`/`absorb`
    /// call, if any. The engine calls this right after each call so the
    /// slot never survives into a snapshot.
    #[inline]
    pub(crate) fn take_event(&mut self) -> Option<FlowEvent> {
        self.last_event.take()
    }

    pub(crate) fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// The learned path of a steady flow (used to synthesize deliveries).
    pub(crate) fn path(&self, key: &FlowKey) -> Option<&LearnedPath> {
        self.flows.get(key).and_then(|st| st.path.as_ref())
    }

    /// Classifies one emission of `key` at `when`. `fault_active(hops,
    /// from, lat)` must report whether any fault window overlaps the
    /// synthesized flight `[from, from+lat)` on any learned hop;
    /// `policy(hops, after, upto)` resolves rule-change state per
    /// [`PolicyProbeFn`].
    pub(crate) fn on_emit(
        &mut self,
        key: &FlowKey,
        when: SimTime,
        fault_active: &FaultProbeFn<'_>,
        policy: &PolicyProbeFn<'_>,
        store: &mut SampleStore,
    ) -> EmitAction {
        let st = self.flows.entry(*key).or_default();
        st.emits += 1;
        let gap = when.0.saturating_sub(st.last_emit.0);
        st.last_emit = when;

        if !st.steady {
            // Learning flows run at packet level where rules apply for
            // real; keep the policy stamps fresh so a later promotion
            // starts from a clean baseline instead of inheriting a stale
            // epoch that would trigger a spurious escalation.
            let hops: &[(DeviceId, PortId)] = st.path.as_ref().map_or(&[], |p| &p.hops);
            let (_, epoch) = policy(hops, when, when);
            st.policy_epoch = epoch;
            st.policy_checked = when;
        }

        // Pipelining check: a request/response flow cannot emit again
        // before its previous frame was delivered, so an emission gap
        // below the observed one-way latency floor means several frames
        // are in flight and the path's queueing — not the path's latency
        // — governs throughput. Model violation: packet level, for good.
        if st.pipelined {
            return EmitAction::Packet;
        }
        if let Some(path) = &st.path {
            if st.emits > 1 && gap < path.lat_min {
                st.pipelined = true;
                if st.steady {
                    st.steady = false;
                    st.consistent = 0;
                    store.add_id(self.ids.escalations, 1.0);
                }
                self.last_event = Some(FlowEvent::Pinned {
                    origin: key.origin.0 as u32,
                });
                return EmitAction::Packet;
            }
        }

        if st.steady {
            // Idle gap: the connection paused; re-learn from scratch.
            if gap > IDLE_GAP_NS {
                st.steady = false;
                st.consistent = 0;
                store.add_id(self.ids.escalations, 1.0);
                store.add_id(self.ids.probes, 1.0);
                self.last_event = Some(FlowEvent::Escalated {
                    origin: key.origin.0 as u32,
                    reason: FlowEscalateReason::IdleGap,
                });
                return EmitAction::Probe;
            }
            let path = st.path.as_ref().expect("steady flow has a path");
            let lat = path.latency();
            let has_nat = path.has_nat;
            // Fault window overlapping a learned hop: escalate so the
            // packet-level machinery applies the fault faithfully.
            if fault_active(&path.hops, when, lat) {
                st.steady = false;
                st.consistent = 0;
                store.add_id(self.ids.escalations, 1.0);
                store.add_id(self.ids.probes, 1.0);
                self.last_event = Some(FlowEvent::Escalated {
                    origin: key.origin.0 as u32,
                    reason: FlowEscalateReason::FaultWindow,
                });
                return EmitAction::Probe;
            }
            // Rule change on the learned path: a filter window opened or
            // closed in the interval synthesized deliveries skipped over,
            // or a NAT/filter table was mutated between runs (epoch
            // moved). Escalate immediately — the fast path must never
            // deliver a frame the packet-level pipeline would now drop,
            // reject, or translate differently.
            let (changed, epoch) = policy(&path.hops, st.policy_checked, when);
            if changed || epoch != st.policy_epoch {
                st.policy_epoch = epoch;
                st.policy_checked = when;
                st.steady = false;
                st.consistent = 0;
                store.add_id(self.ids.escalations, 1.0);
                store.add_id(self.ids.probes, 1.0);
                self.last_event = Some(FlowEvent::Escalated {
                    origin: key.origin.0 as u32,
                    reason: FlowEscalateReason::RuleChange,
                });
                return EmitAction::Probe;
            }
            st.policy_checked = when;
            // Hybrid keeps revalidating; FlowOnly trusts the model.
            if self.fidelity == Fidelity::Hybrid {
                let cadence = if has_nat {
                    NAT_PROBE_EVERY
                } else {
                    PROBE_EVERY
                };
                if st.emits.is_multiple_of(cadence) {
                    store.add_id(self.ids.probes, 1.0);
                    return EmitAction::Probe;
                }
            }
            return EmitAction::Fast;
        }

        // Learning: probe densely at first, then at the steady cadence so
        // never-converging flows don't probe-tax forever.
        if st.emits <= LEARN_CAP || st.emits.is_multiple_of(PROBE_EVERY) {
            store.add_id(self.ids.probes, 1.0);
            EmitAction::Probe
        } else {
            EmitAction::Packet
        }
    }

    /// Absorbs a delivered probe's advert.
    pub(crate) fn absorb(&mut self, update: FlowUpdate, store: &mut SampleStore) {
        store.add_id(self.ids.adverts, 1.0);
        let Some(st) = self.flows.get_mut(&update.key) else {
            // The flow was forgotten (snapshot restore): ignore.
            return;
        };
        if st.pipelined {
            // Pinned to packet level; late adverts must not re-promote.
            return;
        }
        if !update.ok {
            // Path crosses a no-bypass device or lossy link: never model.
            if st.steady {
                store.add_id(self.ids.escalations, 1.0);
                self.last_event = Some(FlowEvent::Escalated {
                    origin: update.key.origin.0 as u32,
                    reason: FlowEscalateReason::PathChanged,
                });
            }
            st.steady = false;
            st.consistent = 0;
            st.path = None;
            return;
        }
        match &mut st.path {
            Some(p) if p.confirmed_by(&update) => {
                p.lat_ewma = (7 * p.lat_ewma + update.lat) / 8;
                p.lat_min = p.lat_min.min(update.lat);
                if !st.steady {
                    st.consistent += 1;
                    if st.consistent >= STEADY_AFTER {
                        st.steady = true;
                        store.add_id(self.ids.promotions, 1.0);
                        self.last_event = Some(FlowEvent::Promoted {
                            origin: update.key.origin.0 as u32,
                            lat: update.lat,
                        });
                    }
                }
            }
            _ => {
                // New or changed path (NAT re-binding, bridge re-learning,
                // rewiring): demote and start confirming the new model.
                if st.steady {
                    store.add_id(self.ids.escalations, 1.0);
                    self.last_event = Some(FlowEvent::Escalated {
                        origin: update.key.origin.0 as u32,
                        reason: FlowEscalateReason::PathChanged,
                    });
                }
                st.steady = false;
                st.consistent = 1;
                st.path = Some(LearnedPath::from_update(&update));
            }
        }
    }

    /// Counter id for synthesized frames (charged by the engine).
    pub(crate) fn fastpath_frames_id(&self) -> MetricId {
        self.ids.fastpath_frames
    }

    /// Counter id for synthesized bytes (charged by the engine).
    pub(crate) fn fastpath_bytes_id(&self) -> MetricId {
        self.ids.fastpath_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Payload;
    use crate::SockAddr;

    fn key() -> FlowKey {
        FlowKey {
            origin: DeviceId(0),
            src_mac: MacAddr::local(1),
            dst_mac: MacAddr::local(2),
            src_ip: Ip4::new(10, 0, 0, 1),
            dst_ip: Ip4::new(10, 0, 0, 2),
            src_port: 4000,
            dst_port: 5000,
            tcp: false,
        }
    }

    fn frame() -> Frame {
        Frame::udp(
            MacAddr::local(1),
            MacAddr::local(2),
            SockAddr::new(Ip4::new(10, 0, 0, 1), 4000),
            SockAddr::new(Ip4::new(10, 0, 0, 2), 5000),
            Payload::sized(64),
        )
    }

    fn update(k: FlowKey, lat: u64) -> FlowUpdate {
        FlowUpdate {
            key: k,
            dst: DeviceId(9),
            dst_port: PortId(0),
            template: frame(),
            lat,
            hops: vec![(DeviceId(0), PortId(0)), (DeviceId(5), PortId(1))],
            cpu: Vec::new(),
            ok: true,
            has_nat: false,
        }
    }

    #[test]
    fn classify_rejects_multicast_and_accepts_udp() {
        let mut f = frame();
        assert!(FlowKey::classify(DeviceId(0), &f).is_some());
        f.dst_mac = MacAddr::BROADCAST;
        assert!(FlowKey::classify(DeviceId(0), &f).is_none());
    }

    #[test]
    fn three_consistent_adverts_promote_then_fast() {
        let mut store = SampleStore::default();
        let mut t = FlowTable::new(Fidelity::Hybrid, &mut store);
        let k = key();
        let no_fault = |_: &[(DeviceId, PortId)], _: SimTime, _: u64| false;
        let clean = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (false, 0u64);
        for i in 0..3u64 {
            assert_eq!(
                t.on_emit(&k, SimTime(i * 1000), &no_fault, &clean, &mut store),
                EmitAction::Probe
            );
            t.absorb(update(k, 500), &mut store);
        }
        assert_eq!(
            t.on_emit(&k, SimTime(4000), &no_fault, &clean, &mut store),
            EmitAction::Fast
        );
        assert_eq!(store.counter("flow.steady_promotions"), 1.0);
    }

    #[test]
    fn pipelined_emission_pins_flow_to_packet_level() {
        let mut store = SampleStore::default();
        let mut t = FlowTable::new(Fidelity::Hybrid, &mut store);
        let k = key();
        let no_fault = |_: &[(DeviceId, PortId)], _: SimTime, _: u64| false;
        let clean = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (false, 0u64);
        for i in 0..3u64 {
            t.on_emit(&k, SimTime(i * 1000), &no_fault, &clean, &mut store);
            t.absorb(update(k, 500), &mut store);
        }
        // Steady; now emit again only 100 ns after the last emission —
        // under the 500 ns one-way floor, so several frames are in
        // flight and queueing governs throughput.
        assert_eq!(
            t.on_emit(&k, SimTime(2100), &no_fault, &clean, &mut store),
            EmitAction::Packet
        );
        assert_eq!(store.counter("flow.escalations"), 1.0);
        // Pinned: generous gaps and fresh confirming adverts no longer
        // probe, promote, or fast-path this flow.
        t.absorb(update(k, 500), &mut store);
        for i in 0..8u64 {
            assert_eq!(
                t.on_emit(
                    &k,
                    SimTime(10_000 + i * 1_000),
                    &no_fault,
                    &clean,
                    &mut store
                ),
                EmitAction::Packet
            );
        }
        assert_eq!(store.counter("flow.steady_promotions"), 1.0);
    }

    #[test]
    fn changed_path_demotes() {
        let mut store = SampleStore::default();
        let mut t = FlowTable::new(Fidelity::Hybrid, &mut store);
        let k = key();
        let no_fault = |_: &[(DeviceId, PortId)], _: SimTime, _: u64| false;
        let clean = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (false, 0u64);
        for i in 0..3u64 {
            t.on_emit(&k, SimTime(i * 1000), &no_fault, &clean, &mut store);
            t.absorb(update(k, 500), &mut store);
        }
        // A re-routed advert (different delivery device) demotes.
        let mut u = update(k, 500);
        u.dst = DeviceId(11);
        t.absorb(u, &mut store);
        assert_eq!(
            t.on_emit(&k, SimTime(5000), &no_fault, &clean, &mut store),
            EmitAction::Probe
        );
        assert_eq!(store.counter("flow.escalations"), 1.0);
    }

    #[test]
    fn fault_window_escalates() {
        let mut store = SampleStore::default();
        let mut t = FlowTable::new(Fidelity::Hybrid, &mut store);
        let k = key();
        let no_fault = |_: &[(DeviceId, PortId)], _: SimTime, _: u64| false;
        let clean = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (false, 0u64);
        for i in 0..3u64 {
            t.on_emit(&k, SimTime(i * 1000), &no_fault, &clean, &mut store);
            t.absorb(update(k, 500), &mut store);
        }
        let fault = |_: &[(DeviceId, PortId)], _: SimTime, _: u64| true;
        assert_eq!(
            t.on_emit(&k, SimTime(4000), &fault, &clean, &mut store),
            EmitAction::Probe
        );
        assert_eq!(store.counter("flow.escalations"), 1.0);
    }

    #[test]
    fn rule_change_escalates_steady_flow() {
        let mut store = SampleStore::default();
        let mut t = FlowTable::new(Fidelity::FlowOnly, &mut store);
        let k = key();
        let no_fault = |_: &[(DeviceId, PortId)], _: SimTime, _: u64| false;
        let clean = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (false, 0u64);
        for i in 0..3u64 {
            t.on_emit(&k, SimTime(i * 1000), &no_fault, &clean, &mut store);
            t.absorb(update(k, 500), &mut store);
        }
        assert_eq!(
            t.on_emit(&k, SimTime(4000), &no_fault, &clean, &mut store),
            EmitAction::Fast
        );
        // An epoch bump (a rule was installed/removed on a hop's table)
        // escalates even in FlowOnly mode, which skips cadence probes.
        let bumped = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (false, 1u64);
        assert_eq!(
            t.on_emit(&k, SimTime(5000), &no_fault, &bumped, &mut store),
            EmitAction::Probe
        );
        assert_eq!(store.counter("flow.escalations"), 1.0);
        // Re-promote under the new epoch; the same epoch no longer fires.
        for i in 0..3u64 {
            t.on_emit(&k, SimTime(6000 + i * 1000), &no_fault, &bumped, &mut store);
            t.absorb(update(k, 500), &mut store);
        }
        assert_eq!(
            t.on_emit(&k, SimTime(9000), &no_fault, &bumped, &mut store),
            EmitAction::Fast
        );
        // A scheduled rule window opening inside the skipped interval
        // fires through the `changed` signal even at a constant epoch.
        let window = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (true, 1u64);
        assert_eq!(
            t.on_emit(&k, SimTime(9500), &no_fault, &window, &mut store),
            EmitAction::Probe
        );
        assert_eq!(store.counter("flow.escalations"), 2.0);
    }

    #[test]
    fn idle_gap_demotes() {
        let mut store = SampleStore::default();
        let mut t = FlowTable::new(Fidelity::FlowOnly, &mut store);
        let k = key();
        let no_fault = |_: &[(DeviceId, PortId)], _: SimTime, _: u64| false;
        let clean = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (false, 0u64);
        for i in 0..3u64 {
            t.on_emit(&k, SimTime(i * 1000), &no_fault, &clean, &mut store);
            t.absorb(update(k, 500), &mut store);
        }
        assert_eq!(
            t.on_emit(&k, SimTime(4000), &no_fault, &clean, &mut store),
            EmitAction::Fast
        );
        // A long pause forces re-learning.
        assert_eq!(
            t.on_emit(
                &k,
                SimTime(4000 + IDLE_GAP_NS + 1),
                &no_fault,
                &clean,
                &mut store
            ),
            EmitAction::Probe
        );
    }

    #[test]
    fn not_ok_paths_never_promote() {
        let mut store = SampleStore::default();
        let mut t = FlowTable::new(Fidelity::Hybrid, &mut store);
        let k = key();
        let no_fault = |_: &[(DeviceId, PortId)], _: SimTime, _: u64| false;
        let clean = |_: &[(DeviceId, PortId)], _: SimTime, _: SimTime| (false, 0u64);
        for i in 0..10u64 {
            t.on_emit(&k, SimTime(i * 1000), &no_fault, &clean, &mut store);
            let mut u = update(k, 500);
            u.ok = false;
            t.absorb(u, &mut store);
        }
        assert_eq!(
            t.on_emit(&k, SimTime(20_000), &no_fault, &clean, &mut store),
            EmitAction::Probe
        );
        assert_eq!(store.counter("flow.steady_promotions"), 0.0);
    }

    #[test]
    fn ewma_never_undercuts_min_latency() {
        let mut p = LearnedPath::from_update(&update(key(), 1000));
        for lat in [1000u64, 1200, 900, 1000, 1100] {
            p.lat_ewma = (7 * p.lat_ewma + lat) / 8;
            p.lat_min = p.lat_min.min(lat);
            assert!(p.latency() >= p.lat_min);
        }
    }
}
