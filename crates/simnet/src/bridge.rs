//! Learning Ethernet bridge.
//!
//! Both virtualization layers in the paper's fig. 1 rest on a Linux bridge:
//! the host bridge multiplexes the physical NIC between VMs, and the in-VM
//! bridge (the one BrFusion removes) multiplexes the VM's NIC between
//! containers. This implementation is a standard learning switch with a
//! forwarding database (FDB), ageing, and flooding of unknown/broadcast
//! destinations.

use crate::addr::MacAddr;
use crate::costs::StageCost;
use crate::device::{Device, DeviceKind, PortId};
use crate::engine::DevCtx;
use crate::filter::{Chain, FilterControl, HookIds, StateTracker, Verdict, REJECT_TAG};
use crate::frame::{Frame, Payload};
use crate::nat::Proto;
use crate::shared::SharedStation;
use crate::time::{SimDuration, SimTime};
use metrics::{JournalKind, MetricId};
use std::collections::HashMap;

/// Default FDB entry lifetime (Linux default is 300 s).
pub const DEFAULT_AGEING: SimDuration = SimDuration::secs(300);

/// Default FDB capacity (entries). Linux bridges bound their FDB hash
/// table; without a cap, MAC churn grows the map without limit.
pub const DEFAULT_FDB_CAP: usize = 1024;

/// Interned counter ids, resolved on the first frame and cached.
#[derive(Clone, Copy)]
struct BridgeIds {
    flooded: MetricId,
    same_port_drop: MetricId,
    switched: MetricId,
    stage: MetricId,
}

impl BridgeIds {
    fn resolve(ctx: &mut DevCtx<'_>) -> BridgeIds {
        BridgeIds {
            flooded: ctx.metric("bridge.flooded"),
            same_port_drop: ctx.metric("bridge.same_port_drop"),
            switched: ctx.metric("bridge.switched"),
            stage: ctx.metric("stage.bridge"),
        }
    }
}

/// A learning Ethernet switch with `nports` ports.
pub struct Bridge {
    nports: usize,
    cost: StageCost,
    station: SharedStation,
    ageing: SimDuration,
    fdb_cap: usize,
    fdb: HashMap<MacAddr, (PortId, SimTime)>,
    ids: Option<BridgeIds>,
    /// FORWARD filter table (NetworkPolicy chains land here when the CNI
    /// targets the bridge, e.g. BrFusion's fused host bridge). Never-
    /// configured tables cost one atomic load per frame.
    filter: FilterControl,
    /// Device-local conntrack feeding the filter's state-match (the
    /// bridge has no NAT conntrack to consult).
    tracker: StateTracker,
    filter_ids: Option<HookIds>,
}

impl Bridge {
    /// Creates a bridge with `nports` ports, per-frame switching `cost`, and
    /// the (possibly shared) service station of the kernel it runs in.
    pub fn new(nports: usize, cost: StageCost, station: SharedStation) -> Bridge {
        assert!(nports >= 2, "a bridge needs at least two ports");
        Bridge {
            nports,
            cost,
            station,
            ageing: DEFAULT_AGEING,
            fdb_cap: DEFAULT_FDB_CAP,
            fdb: HashMap::new(),
            ids: None,
            filter: FilterControl::default(),
            tracker: StateTracker::default(),
            filter_ids: None,
        }
    }

    /// The bridge's FORWARD filter table handle (clone it out before
    /// boxing the device into a network).
    pub fn filter(&self) -> FilterControl {
        self.filter.clone()
    }

    /// Overrides the FDB ageing time.
    pub fn with_ageing(mut self, ageing: SimDuration) -> Bridge {
        self.ageing = ageing;
        self
    }

    /// Overrides the FDB capacity.
    ///
    /// # Panics
    /// Panics on a zero capacity.
    pub fn with_fdb_cap(mut self, cap: usize) -> Bridge {
        assert!(cap > 0, "FDB capacity must be positive");
        self.fdb_cap = cap;
        self
    }

    /// Number of ports.
    pub fn nports(&self) -> usize {
        self.nports
    }

    /// Current FDB size. Aged entries are evicted when looked up and when
    /// learning past the capacity, so the count stays bounded by
    /// [`with_fdb_cap`](Bridge::with_fdb_cap) even under MAC churn.
    pub fn fdb_len(&self) -> usize {
        self.fdb.len()
    }

    fn lookup(&mut self, mac: MacAddr, now: SimTime) -> Option<PortId> {
        match self.fdb.get(&mac) {
            Some(&(p, learned)) if now.since(learned) <= self.ageing => Some(p),
            Some(_) => {
                // Stale hit: evict on the miss so the FDB only retains
                // entries that can still switch frames.
                self.fdb.remove(&mac);
                None
            }
            None => None,
        }
    }

    /// Learns `mac` on `port`, evicting past the capacity: aged entries
    /// first, then — if the table is full of live entries — the least
    /// recently learned one (ties broken on the MAC bytes, so eviction
    /// never depends on hash-map iteration order).
    fn learn(&mut self, mac: MacAddr, port: PortId, now: SimTime) {
        if self.fdb.len() >= self.fdb_cap && !self.fdb.contains_key(&mac) {
            let ageing = self.ageing;
            self.fdb
                .retain(|_, &mut (_, learned)| now.since(learned) <= ageing);
            while self.fdb.len() >= self.fdb_cap {
                let victim = self
                    .fdb
                    .iter()
                    .min_by_key(|&(m, &(_, learned))| (learned, m.0))
                    .map(|(m, _)| *m)
                    .expect("non-empty FDB at capacity");
                self.fdb.remove(&victim);
            }
        }
        self.fdb.insert(mac, (port, now));
    }
}

impl Device for Bridge {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Bridge
    }

    fn on_frame(&mut self, port: PortId, mut frame: Frame, ctx: &mut DevCtx<'_>) {
        assert!(port.0 < self.nports, "frame on nonexistent bridge port");
        let ids = *self.ids.get_or_insert_with(|| BridgeIds::resolve(ctx));
        let done = self.station.serve(&self.cost, frame.wire_len(), ctx);
        ctx.stage_frame(ids.stage, &mut frame, done);

        // Learn the source address on the ingress port.
        if !frame.src_mac.is_multicast() {
            self.learn(frame.src_mac, port, ctx.now());
        }

        if frame.dst_mac.is_multicast() {
            ctx.count_id(ids.flooded, 1.0);
            for p in 0..self.nports {
                if p != port.0 && ctx.is_linked(PortId(p)) {
                    ctx.transmit_at(done, PortId(p), frame.clone());
                }
            }
            return;
        }

        // FORWARD filter on transiting unicast transport frames (the
        // br_netfilter path: bridged traffic traverses the filter table).
        // One atomic load when no rule was ever installed.
        if !self.filter.is_empty() {
            if let (Some(proto), Some(src), Some(dst)) = (
                Proto::of(&frame.ip.transport),
                frame.ip.src_sock(),
                frame.ip.dst_sock(),
            ) {
                let fids = *self
                    .filter_ids
                    .get_or_insert_with(|| HookIds::resolve(Chain::Forward, ctx));
                let now = ctx.now();
                let state = self.tracker.state_of(proto, src, dst, now);
                let (verdict, rule_id) =
                    self.filter
                        .eval(Chain::Forward, proto, src, dst, state, now);
                let dev = ctx.self_id().0 as u64;
                match verdict {
                    Verdict::Accept => {
                        ctx.count_id(fids.accept, 1.0);
                        self.tracker.note(proto, src, dst, now);
                    }
                    Verdict::Drop => {
                        ctx.count_id(fids.drop, 1.0);
                        ctx.journal(JournalKind::FilterDrop, dev, rule_id, Verdict::Drop.code());
                        return;
                    }
                    Verdict::Reject => {
                        ctx.count_id(fids.reject, 1.0);
                        ctx.journal(
                            JournalKind::FilterDrop,
                            dev,
                            rule_id,
                            Verdict::Reject.code(),
                        );
                        let mut p = Payload::sized(8);
                        p.tag = REJECT_TAG;
                        let notif = Frame::udp(frame.dst_mac, frame.src_mac, dst, src, p);
                        ctx.transmit_at(done, port, notif);
                        return;
                    }
                }
            }
        }

        match self.lookup(frame.dst_mac, ctx.now()) {
            Some(out) if out == port => {
                // Destination learned on the ingress port: the frame does not
                // need switching (fig. 1 step 2 — it is NAT's job, upstream).
                ctx.count_id(ids.same_port_drop, 1.0);
            }
            Some(out) => {
                ctx.count_id(ids.switched, 1.0);
                ctx.transmit_at(done, out, frame);
            }
            None => {
                ctx.count_id(ids.flooded, 1.0);
                for p in 0..self.nports {
                    if p != port.0 && ctx.is_linked(PortId(p)) {
                        ctx.transmit_at(done, PortId(p), frame.clone());
                    }
                }
            }
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        // Forkable iff the station is private to this bridge; a station
        // shared with other devices (one kernel, many stages) cannot be
        // deep-copied piecemeal, so such shards stay conservative.
        let station = self.station.fork_private()?;
        Some(Box::new(Bridge {
            nports: self.nports,
            cost: self.cost,
            station,
            ageing: self.ageing,
            fdb_cap: self.fdb_cap,
            fdb: self.fdb.clone(),
            ids: self.ids,
            // The control is shared (rules only mutate between runs; the
            // compile cache is pure), the conntrack state is copied.
            filter: self.filter.clone(),
            tracker: self.tracker.clone(),
            filter_ids: self.filter_ids,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ip4, SockAddr};
    use crate::engine::StopCondition;
    use crate::engine::{LinkParams, Network};
    use crate::frame::Payload;
    use crate::testutil::{frame_between, CaptureSink};
    use metrics::{CpuCategory, CpuLocation};

    fn mk_net() -> (
        Network,
        crate::device::DeviceId,
        Vec<crate::device::DeviceId>,
    ) {
        let mut net = Network::new(1);
        let bridge = net.add_device(
            "br0",
            CpuLocation::Host,
            Box::new(Bridge::new(
                3,
                StageCost::fixed(1_000, 0.0, CpuCategory::Sys),
                SharedStation::new(),
            )),
        );
        let sinks: Vec<_> = (0..3)
            .map(|i| {
                let s = net.add_device(
                    format!("sink{i}"),
                    CpuLocation::Host,
                    Box::new(CaptureSink::new(format!("sink{i}"))),
                );
                net.connect(bridge, PortId(i), s, PortId::P0, LinkParams::default());
                s
            })
            .collect();
        (net, bridge, sinks)
    }

    #[test]
    fn floods_unknown_then_switches_learned() {
        let (mut net, bridge, _sinks) = mk_net();
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);

        // a (on port 0) sends to unknown b: flood to ports 1 and 2.
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(a, b, 100),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("bridge.flooded"), 1.0);
        assert_eq!(net.store().counter("sink1.received"), 1.0);
        assert_eq!(net.store().counter("sink2.received"), 1.0);

        // b replies from port 1: a was learned on port 0 -> unicast switch.
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(1),
            frame_between(b, a, 100),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("bridge.switched"), 1.0);
        assert_eq!(net.store().counter("sink0.received"), 1.0);
        // no extra flood
        assert_eq!(net.store().counter("bridge.flooded"), 1.0);
    }

    #[test]
    fn broadcast_always_floods() {
        let (mut net, bridge, _sinks) = mk_net();
        let a = MacAddr::local(1);
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(2),
            frame_between(a, MacAddr::BROADCAST, 64),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("sink0.received"), 1.0);
        assert_eq!(net.store().counter("sink1.received"), 1.0);
        assert_eq!(
            net.store().counter("sink2.received"),
            0.0,
            "no echo to ingress"
        );
    }

    #[test]
    fn same_port_destination_is_dropped() {
        let (mut net, bridge, _sinks) = mk_net();
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        // Learn a on port 0 (b unknown: floods), then b on port 0 — at which
        // point a is already learned on the ingress port, so it drops.
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(a, b, 64),
        );
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(b, a, 64),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("bridge.same_port_drop"), 1.0);
        // Now a->b arrives on port 0 and b is learned on port 0 too.
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(a, b, 64),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("bridge.same_port_drop"), 2.0);
    }

    #[test]
    fn fdb_entries_age_out() {
        let (mut net, bridge, _sinks) = mk_net();
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(a, b, 64),
        );
        net.run(StopCondition::Idle);
        // After ageing, a is forgotten: a frame to a floods again.
        net.run(StopCondition::Until(
            crate::time::SimTime::ZERO + DEFAULT_AGEING + SimDuration::secs(1),
        ));
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(1),
            frame_between(b, a, 64),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("bridge.flooded"), 2.0);
    }

    #[test]
    fn switching_charges_cpu() {
        let (mut net, bridge, _sinks) = mk_net();
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(MacAddr::local(1), MacAddr::local(2), 64),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.cpu().get(CpuLocation::Host, CpuCategory::Sys), 1_000);
    }

    #[test]
    fn queueing_serializes_service() {
        let (mut net, bridge, _sinks) = mk_net();
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        // Two frames at t=0; 1us service each -> second leaves at 2us.
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(a, b, 64),
        );
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(a, b, 64),
        );
        net.run(StopCondition::Idle);
        let arr = net.store().samples("sink1.arrival_ns").to_vec();
        assert_eq!(arr, vec![1_000.0, 2_000.0]);
    }

    #[test]
    fn multicast_source_not_learned() {
        let (mut net, bridge, _sinks) = mk_net();
        let mcast = MacAddr([0x01, 0, 0x5e, 0, 0, 1]);
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(0),
            frame_between(mcast, MacAddr::local(9), 64),
        );
        net.run(StopCondition::Idle);
        // Frame towards mcast from another port must flood (not unicast).
        net.inject_frame(
            SimDuration::ZERO,
            bridge,
            PortId(1),
            frame_between(MacAddr::local(9), mcast, 64),
        );
        net.run(StopCondition::Idle);
        // Both the unknown-unicast and the multicast frame flooded.
        assert_eq!(net.store().counter("bridge.flooded"), 2.0);
    }

    #[test]
    fn fdb_evicts_aged_on_capacity_and_lookup_miss() {
        let mut br = Bridge::new(
            2,
            StageCost::fixed(1_000, 0.0, CpuCategory::Sys),
            SharedStation::new(),
        )
        .with_fdb_cap(4)
        .with_ageing(SimDuration::secs(1));
        // Fill to capacity at t=0.
        for i in 0..4 {
            br.learn(MacAddr::local(i), PortId(0), SimTime::ZERO);
        }
        assert_eq!(br.fdb_len(), 4);
        // Two seconds later every entry is aged: learning a fifth MAC
        // evicts all of them instead of growing past the cap.
        let later = SimTime::ZERO + SimDuration::secs(2);
        br.learn(MacAddr::local(10), PortId(1), later);
        assert_eq!(br.fdb_len(), 1, "aged entries evicted on insert");
        assert_eq!(br.lookup(MacAddr::local(10), later), Some(PortId(1)));
        // MAC churn with live entries: the least recently learned entry is
        // evicted, and the FDB never exceeds its capacity.
        for i in 0..10u32 {
            br.learn(
                MacAddr::local(100 + i),
                PortId(0),
                later + SimDuration::micros(u64::from(i)),
            );
        }
        assert_eq!(br.fdb_len(), 4, "capacity bounds the live FDB");
        let t = later + SimDuration::micros(20);
        assert_eq!(br.lookup(MacAddr::local(109), t), Some(PortId(0)));
        assert_eq!(
            br.lookup(MacAddr::local(100), t),
            None,
            "oldest churned out"
        );
        // A stale entry found by lookup is dropped on the miss, so
        // fdb_len no longer reports entries that cannot switch frames.
        let much_later = later + SimDuration::secs(5);
        assert_eq!(br.lookup(MacAddr::local(109), much_later), None);
        assert_eq!(br.fdb_len(), 3, "stale entry evicted by the lookup miss");
    }

    #[test]
    fn frame_between_helper_sets_sizes() {
        let f = frame_between(MacAddr::local(1), MacAddr::local(2), 256);
        assert_eq!(f.wire_len(), 18 + 20 + 8 + 256);
        let _ = SockAddr::new(Ip4::UNSPECIFIED, 0);
        let _ = Payload::sized(0);
    }
}
