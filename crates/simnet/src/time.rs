//! Simulated time.
//!
//! The simulator runs on a single global nanosecond clock. This is by
//! construction an *absolute clock across the virtual boundary* — the
//! property the paper obtained by hacking QEMU to pass the physical TSC
//! through to the guest (§5.2.4).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since start.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self` (time cannot run backwards).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is in the future"),
        )
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from nanoseconds.
    pub const fn nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds from microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds from milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds from whole seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds from fractional seconds (rounds to nearest nanosecond).
    pub fn secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, fractional.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiply by a count (e.g. per-byte cost x length).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let t2 = t + SimDuration::nanos(10);
        assert_eq!(t2.since(t), SimDuration::nanos(10));
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::secs(1), SimDuration::millis(1_000));
        assert_eq!(SimDuration::millis(1), SimDuration::micros(1_000));
        assert_eq!(SimDuration::micros(1), SimDuration::nanos(1_000));
        assert_eq!(SimDuration::secs_f64(0.5), SimDuration::millis(500));
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_rejects_backwards_time() {
        SimTime(5).since(SimTime(10));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(
            SimDuration::nanos(3).saturating_mul(4),
            SimDuration::nanos(12)
        );
        assert_eq!(
            SimDuration(u64::MAX).saturating_mul(2),
            SimDuration(u64::MAX)
        );
    }
}
