//! Exporters for the packet flight recorder: turn a finished run — a
//! sequential [`Network`] or a merged [`RunReport`] — into the two
//! portable artifacts of the observability layer:
//!
//! * a [`RunSnapshot`]: counters, sample summaries, CPU attribution by
//!   location × category, per-stage latency CDFs and recorder
//!   bookkeeping, serialized to JSON by benches into `results/`;
//! * a [`ChromeTrace`]: the retained spans as Chrome `trace_event` JSON,
//!   loadable directly in Perfetto or `chrome://tracing`, one process
//!   per CPU location and one thread per device.
//!
//! Both exporters are pure reads — they never perturb the run they
//! describe, so exporting after `run_to_idle` is always safe.

use crate::device::DeviceId;
use crate::engine::{Network, SampleStore};
use crate::parallel::RunReport;
use metrics::flight::{
    cpu_cells, LatencyCdf, SampleSummary, SpanAccounting, StageSnapshot, TraceAccounting,
    SNAPSHOT_SCHEMA,
};
use metrics::{
    ChromeTrace, CpuLocation, HealthSummary, JournalKind, JournalRecord, RunSnapshot, SpanRecord,
    StageTable, TelemetrySnapshot,
};
use std::collections::{BTreeMap, BTreeSet};

/// The Chrome-trace process id of a CPU location: the host is pid 1, VM
/// `i` is pid `1000 + i`.
pub fn pid_of(loc: CpuLocation) -> u64 {
    match loc {
        CpuLocation::Host => 1,
        CpuLocation::Vm(i) => 1000 + u64::from(i),
    }
}

fn counters_map(store: &SampleStore) -> BTreeMap<String, f64> {
    store
        .counter_names()
        .map(|n| (n.to_string(), store.counter(n)))
        .collect()
}

fn samples_map(store: &SampleStore) -> BTreeMap<String, SampleSummary> {
    store
        .sample_names()
        .map(|n| (n.to_string(), SampleSummary::of(store.samples(n))))
        .collect()
}

/// Per-stage snapshots with exact percentiles where the span ring kept
/// every record of a stage, log2-bucket bounds otherwise.
fn stages_map(
    table: &StageTable,
    store: &SampleStore,
    spans: &[SpanRecord],
) -> BTreeMap<String, StageSnapshot> {
    let mut lat: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for r in spans {
        lat.entry(r.stage.index())
            .or_default()
            .push(r.latency_ns() as f64);
    }
    table
        .iter()
        .map(|(id, agg)| {
            let exact = lat.get(&id.index()).map_or(&[][..], Vec::as_slice);
            (
                store.name_of(id).to_string(),
                StageSnapshot {
                    frames: agg.frames,
                    cpu_ns: agg.cpu_ns,
                    latency_ns: LatencyCdf::from_agg_and_latencies(agg, exact),
                },
            )
        })
        .collect()
}

/// Snapshot of a finished sequential [`Network`] run.
pub fn snapshot_network(net: &Network, label: &str) -> RunSnapshot {
    RunSnapshot {
        schema: SNAPSHOT_SCHEMA.to_string(),
        label: label.to_string(),
        sim_now_ns: net.now().0,
        events_processed: net.events_processed(),
        dropped_no_link: net.dropped_no_link(),
        trace_mode: net.trace_config().mode.label().to_string(),
        counters: counters_map(net.store()),
        samples: samples_map(net.store()),
        cpu: cpu_cells(net.cpu()),
        stages: stages_map(net.stages(), net.store(), net.spans()),
        spans: SpanAccounting {
            emitted: net.spans_emitted(),
            kept: net.spans().len() as u64,
            dropped: net.spans_dropped(),
        },
        trace_entries: TraceAccounting {
            kept: net.trace().len() as u64,
            dropped: net.dropped_traces(),
        },
    }
}

/// Snapshot of a merged [`RunReport`] (sharded or single-shard run).
/// Bit-identical to [`snapshot_network`] of the equivalent sequential
/// run, except for the unobservable map orderings already normalized by
/// the `BTreeMap` keys.
pub fn snapshot_report(report: &RunReport, label: &str) -> RunSnapshot {
    RunSnapshot {
        schema: SNAPSHOT_SCHEMA.to_string(),
        label: label.to_string(),
        sim_now_ns: report.now.0,
        events_processed: report.events_processed,
        dropped_no_link: report.dropped_no_link,
        trace_mode: report.trace_mode.label().to_string(),
        counters: counters_map(&report.store),
        samples: samples_map(&report.store),
        cpu: cpu_cells(&report.cpu),
        stages: stages_map(&report.stages, &report.store, &report.spans),
        spans: SpanAccounting {
            emitted: report.spans_emitted,
            kept: report.spans.len() as u64,
            dropped: report.spans_dropped,
        },
        trace_entries: TraceAccounting {
            kept: report.trace.len() as u64,
            dropped: report.trace_dropped,
        },
    }
}

/// Shared body of the Chrome-trace exporters: metadata rows for every
/// (location, device) seen in the spans, then one `X` event per span.
fn chrome_from(
    spans: &[SpanRecord],
    store: &SampleStore,
    mut dev_name: impl FnMut(u32) -> String,
) -> ChromeTrace {
    let mut out = ChromeTrace::new();
    let mut procs: BTreeSet<u64> = BTreeSet::new();
    let mut threads: BTreeSet<(u64, u64)> = BTreeSet::new();
    for r in spans {
        let pid = pid_of(r.loc);
        if procs.insert(pid) {
            out.add_process(pid, r.loc.to_string());
        }
        if threads.insert((pid, u64::from(r.dev))) {
            out.add_thread(pid, u64::from(r.dev), dev_name(r.dev));
        }
    }
    for r in spans {
        out.add_span(r, store.name_of(r.stage), pid_of(r.loc), u64::from(r.dev));
    }
    out
}

/// Chrome `trace_event` export of a sequential [`Network`] run.
pub fn chrome_trace_network(net: &Network) -> ChromeTrace {
    chrome_from(net.spans(), net.store(), |d| {
        net.device_name(DeviceId(d as usize)).to_string()
    })
}

/// Chrome `trace_event` export of a merged [`RunReport`].
pub fn chrome_trace_report(report: &RunReport) -> ChromeTrace {
    chrome_from(&report.spans, &report.store, |d| {
        report
            .device_names
            .get(d as usize)
            .cloned()
            .unwrap_or_else(|| format!("dev{d}"))
    })
}

/// Store counters as integer telemetry counters (they are all counts or
/// byte totals, accumulated in `f64` slots).
fn telemetry_counters(store: &SampleStore) -> BTreeMap<String, u64> {
    store
        .counter_names()
        .map(|n| (n.to_string(), store.counter(n) as u64))
        .collect()
}

/// Flow-table hit rate: fast-path frames over all delivered frames (a
/// packet-level delivery records one `flow.adverts` at absorption, a
/// fast-path delivery one `flow.fastpath_frames`). 0.0 when the flow
/// table never ran.
fn flow_hit_rate(store: &SampleStore) -> f64 {
    let fast = store.counter("flow.fastpath_frames");
    let slow = store.counter("flow.adverts");
    if fast + slow > 0.0 {
        fast / (fast + slow)
    } else {
        0.0
    }
}

/// Mean re-promotion dwell (ns) over the journal's `CniRepromote`
/// records, whose operand `b` carries the degraded dwell time.
fn degrade_dwell_ns(journal: &[JournalRecord]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for r in journal {
        if r.kind == JournalKind::CniRepromote {
            sum += r.b as f64;
            n += 1;
        }
    }
    if n > 0 {
        sum / n as f64
    } else {
        0.0
    }
}

/// Unified telemetry export of a finished sequential [`Network`] run:
/// store counters, the deterministic journal lane with its per-kind
/// counts and drop accounting (journal + span ring + event trace), and
/// the derived [`HealthSummary`]. Coordinator health fields are zero by
/// construction — no coordinator ran.
pub fn telemetry_network(net: &Network, label: &str) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::new(label, net.telemetry_config().mode.label());
    snap.counters = telemetry_counters(net.store());
    let journal = net.journal();
    snap.set_journal(
        journal.records().to_vec(),
        journal.counts(),
        journal.dropped(),
    );
    snap.drops.spans = net.spans_dropped();
    snap.drops.trace = net.dropped_traces();
    snap.health = HealthSummary {
        flow_hit_rate: flow_hit_rate(net.store()),
        degrade_dwell_ns: degrade_dwell_ns(&snap.journal),
        ..HealthSummary::default()
    };
    snap
}

/// Unified telemetry export of a merged [`RunReport`]. The deterministic
/// journal lane is bit-identical to the sequential export at any shard
/// count; the coordinator lane (`RunReport::coord_journal`) is
/// shard-count-dependent and therefore only folded into health fields,
/// never into `journal`.
pub fn telemetry_report(report: &RunReport, label: &str) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::new(label, report.telemetry_mode.label());
    snap.counters = telemetry_counters(&report.store);
    snap.set_journal(
        report.journal.clone(),
        &report.journal_counts,
        report.journal_dropped,
    );
    snap.drops.spans = report.spans_dropped;
    snap.drops.trace = report.trace_dropped;
    let spec_windows = report.sync.spec_commits + report.sync.spec_rollbacks;
    snap.health = HealthSummary {
        rounds: report.sync.rounds,
        rollback_rate: if spec_windows > 0 {
            report.sync.spec_rollbacks as f64 / spec_windows as f64
        } else {
            0.0
        },
        ring_stalls: report.sync.ring_stalls,
        ring_high_water: report.sync.ring_high_water,
        flow_hit_rate: flow_hit_rate(&report.store),
        degrade_dwell_ns: degrade_dwell_ns(&snap.journal),
    };
    snap
}

/// Perfetto counter tracks for a telemetry snapshot: every decimated
/// tick series becomes one `C`-phase track (pid 1, alongside the host's
/// span rows), plus one cumulative track per journal kind replaying the
/// kept records. Merge with [`chrome_trace_network`] /
/// [`chrome_trace_report`] output or load standalone.
pub fn chrome_counter_tracks(snap: &TelemetrySnapshot) -> ChromeTrace {
    let mut out = ChromeTrace::new();
    out.add_process(1, "telemetry".to_string());
    for s in &snap.series {
        for &(at_ns, v) in &s.points {
            out.add_counter(s.name.clone(), 1, at_ns, v);
        }
    }
    let mut running = [0u64; metrics::JOURNAL_KINDS];
    for r in &snap.journal {
        running[r.kind as usize] += 1;
        out.add_counter(
            format!("journal.{}", r.kind.label()),
            1,
            r.tag.at_ns,
            running[r.kind as usize] as f64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pids_separate_host_and_vms() {
        assert_eq!(pid_of(CpuLocation::Host), 1);
        assert_eq!(pid_of(CpuLocation::Vm(0)), 1000);
        assert_eq!(pid_of(CpuLocation::Vm(7)), 1007);
    }

    #[test]
    fn empty_network_snapshots_cleanly() {
        let net = Network::new(1);
        let snap = snapshot_network(&net, "empty");
        assert_eq!(snap.schema, SNAPSHOT_SCHEMA);
        assert_eq!(snap.label, "empty");
        assert_eq!(snap.trace_mode, "off");
        assert!(snap.stages.is_empty());
        assert_eq!(snap.spans.emitted, 0);
        let trace = chrome_trace_network(&net);
        assert!(trace.is_empty());
    }
}
