//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is an immutable schedule of link and device faults,
//! installed on a [`Network`](crate::engine::Network) before the run
//! starts. Faults are scoped to *emission*: every fault window is keyed by
//! the emitting `(device, port)` and a half-open time interval, and every
//! probabilistic fault draws from the emitting device's own RNG stream
//! inside that device's own event handling. Because window membership is a
//! pure function of the emission time and draws advance only with the
//! device's own event sequence, a faulted scenario is bit-identical across
//! any `SIMNET_SHARDS` count — the same property the healthy engine
//! guarantees (see `parallel.rs`).
//!
//! Fault kinds:
//!
//! * [`LinkFaultKind::Down`] — the link is hard down (cable pull / flap);
//!   every frame emitted in the window is dropped *without* an RNG draw,
//!   so surrounding draw sequences are untouched.
//! * [`LinkFaultKind::Loss`] — extra probabilistic loss on top of the
//!   link's base `loss_prob`.
//! * [`LinkFaultKind::Corrupt`] — probabilistic corruption; the receiver's
//!   FCS check discards the frame, so it is modeled as a counted drop.
//! * [`LinkFaultKind::Duplicate`] — probabilistic duplication: the frame
//!   is delivered twice (two consecutive emission sequence numbers).
//! * [`LinkFaultKind::Reorder`] — probabilistic extra delay, letting later
//!   frames overtake the delayed one.
//! * [`StallWindow`] — a per-device stall (vCPU preemption, softirq
//!   starvation): every frame the device emits in the window gains a fixed
//!   extra delay, draw-free.
//!
//! All extra delays are non-negative, so the sharded engine's conservative
//! lookahead epoch (minimum cross-shard link latency) stays safe: faults
//! can only push deliveries later, never earlier.
//!
//! Optimistic shard snapshots (`Network::snapshot` / `restore` in
//! `engine.rs`) need **no** fault-plan state: the plan itself is immutable
//! for the whole run, window membership is a pure function of the emission
//! time, and every probabilistic draw comes from the emitting device's own
//! RNG stream — which the snapshot already captures. Rolling back the
//! device RNGs therefore rolls back the fault draws with them, and a
//! replayed window reproduces exactly the same loss/corrupt/duplicate/
//! reorder decisions the speculative run saw.

use crate::device::{DeviceId, PortId};
use crate::engine::SampleStore;
use crate::time::{SimDuration, SimTime};
use metrics::MetricId;
use rand::Rng;

/// What a scheduled link fault does to frames emitted in its window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFaultKind {
    /// Hard link outage: every frame is dropped, no RNG draw.
    Down,
    /// Additional probabilistic loss with the given probability.
    Loss(f64),
    /// Probabilistic corruption (dropped at the receiver's FCS check).
    Corrupt(f64),
    /// Probabilistic duplication: the frame arrives twice.
    Duplicate(f64),
    /// Probabilistic reordering: a hit frame gains a uniformly drawn extra
    /// delay in `1..=max_extra`, letting later frames overtake it.
    Reorder {
        /// Probability that a frame is delayed.
        prob: f64,
        /// Upper bound of the drawn extra delay.
        max_extra: SimDuration,
    },
}

/// A link fault scoped to one emitting `(device, port)` and a half-open
/// time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Emitting device the fault applies to.
    pub dev: DeviceId,
    /// Emitting port the fault applies to.
    pub port: PortId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// What happens to frames emitted in the window.
    pub kind: LinkFaultKind,
}

/// A per-device stall window: every frame the device emits in
/// `[from, until)` gains `extra` delay (draw-free — models vCPU
/// preemption or softirq starvation rather than a lossy medium).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallWindow {
    /// The stalled device.
    pub dev: DeviceId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Extra delay added to every emission in the window.
    pub extra: SimDuration,
}

/// An immutable schedule of faults, installed via
/// [`Network::install_fault_plan`](crate::engine::Network::install_fault_plan)
/// before the run starts. Windows are evaluated in declaration order, so a
/// plan's draw sequence is itself deterministic.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    link_faults: Vec<LinkFault>,
    stalls: Vec<StallWindow>,
}

/// Result of evaluating a plan for one emission (engine-internal).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FaultOutcome {
    pub(crate) down: bool,
    pub(crate) lost: bool,
    pub(crate) corrupt: bool,
    pub(crate) duplicate: bool,
    pub(crate) reordered: bool,
    pub(crate) stalled: bool,
    pub(crate) extra: SimDuration,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a link fault window.
    ///
    /// # Panics
    /// Panics on an empty window or a probability outside `[0, 1]`.
    pub fn link_fault(mut self, fault: LinkFault) -> FaultPlan {
        assert!(fault.from < fault.until, "fault window must be non-empty");
        let p = match fault.kind {
            LinkFaultKind::Down => None,
            LinkFaultKind::Loss(p) | LinkFaultKind::Corrupt(p) | LinkFaultKind::Duplicate(p) => {
                Some(p)
            }
            LinkFaultKind::Reorder { prob, max_extra } => {
                assert!(max_extra > SimDuration::ZERO, "reorder needs a max delay");
                Some(prob)
            }
        };
        if let Some(p) = p {
            assert!((0.0..=1.0).contains(&p), "fault probability in [0,1]");
        }
        self.link_faults.push(fault);
        self
    }

    /// Adds a per-device stall window.
    ///
    /// # Panics
    /// Panics on an empty window.
    pub fn stall(mut self, stall: StallWindow) -> FaultPlan {
        assert!(stall.from < stall.until, "stall window must be non-empty");
        self.stalls.push(stall);
        self
    }

    /// Adds a periodic link flap: `cycles` hard-down windows of `down_for`,
    /// separated by `up_for` of healthy link, starting at `first_down`.
    /// Flaps affect one emission direction; call once per direction (with
    /// each endpoint's `(device, port)`) for a full cable pull.
    ///
    /// # Panics
    /// Panics if `down_for` is zero or `cycles` is zero.
    pub fn link_flap(
        mut self,
        dev: DeviceId,
        port: PortId,
        first_down: SimTime,
        down_for: SimDuration,
        up_for: SimDuration,
        cycles: u32,
    ) -> FaultPlan {
        assert!(down_for > SimDuration::ZERO, "flap needs a down time");
        assert!(cycles > 0, "flap needs at least one cycle");
        let period = down_for + up_for;
        for k in 0..cycles {
            let from = first_down + period.saturating_mul(u64::from(k));
            self = self.link_fault(LinkFault {
                dev,
                port,
                from,
                until: from + down_for,
                kind: LinkFaultKind::Down,
            });
        }
        self
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.stalls.is_empty()
    }

    /// The scheduled link fault windows, in declaration order.
    pub fn link_faults(&self) -> &[LinkFault] {
        &self.link_faults
    }

    /// The scheduled stall windows, in declaration order.
    pub fn stalls(&self) -> &[StallWindow] {
        &self.stalls
    }

    /// True when any fault window (link fault on a matching hop, or a
    /// stall on a matching device) overlaps `[from, until)` for any of
    /// `hops`. Pure — no RNG draws. The flow table uses this to escalate
    /// steady flows back to packet level whenever a fault could touch a
    /// synthesized flight, so faults are always applied by the real
    /// per-packet machinery.
    pub fn any_active(&self, hops: &[(DeviceId, PortId)], from: SimTime, until: SimTime) -> bool {
        self.link_faults.iter().any(|f| {
            f.from < until && from < f.until && hops.iter().any(|&(d, p)| d == f.dev && p == f.port)
        }) || self
            .stalls
            .iter()
            .any(|s| s.from < until && from < s.until && hops.iter().any(|&(d, _)| d == s.dev))
    }

    /// True when a hard-down window covers an emission from `(dev, port)`
    /// at `when`. Pure (no RNG); harnesses use it to align workload
    /// assertions with the schedule.
    pub fn is_link_down(&self, dev: DeviceId, port: PortId, when: SimTime) -> bool {
        self.link_faults.iter().any(|f| {
            f.kind == LinkFaultKind::Down
                && f.dev == dev
                && f.port == port
                && f.from <= when
                && when < f.until
        })
    }

    /// Evaluates the plan for one emission. Draws (if any) come from the
    /// emitting device's own RNG in declaration order, so the sequence is
    /// a pure function of the device's own event history — the property
    /// that keeps faulted runs bit-identical across shard counts.
    pub(crate) fn outcome<R: Rng>(
        &self,
        dev: DeviceId,
        port: PortId,
        when: SimTime,
        rng: &mut R,
    ) -> FaultOutcome {
        let mut out = FaultOutcome::default();
        for f in &self.link_faults {
            if f.dev != dev || f.port != port || when < f.from || when >= f.until {
                continue;
            }
            match f.kind {
                LinkFaultKind::Down => {
                    out.down = true;
                    break;
                }
                LinkFaultKind::Loss(p) => {
                    if p > 0.0 && rng.gen_bool(p) {
                        out.lost = true;
                        break;
                    }
                }
                LinkFaultKind::Corrupt(p) => {
                    if p > 0.0 && rng.gen_bool(p) {
                        out.corrupt = true;
                        break;
                    }
                }
                LinkFaultKind::Duplicate(p) => {
                    if p > 0.0 && rng.gen_bool(p) {
                        out.duplicate = true;
                    }
                }
                LinkFaultKind::Reorder { prob, max_extra } => {
                    if prob > 0.0 && rng.gen_bool(prob) {
                        let ns = rng.gen_range(1..=max_extra.as_nanos().max(1));
                        out.extra += SimDuration::nanos(ns);
                        out.reordered = true;
                    }
                }
            }
        }
        for s in &self.stalls {
            if s.dev == dev && s.from <= when && when < s.until {
                out.extra += s.extra;
                out.stalled = true;
            }
        }
        out
    }
}

/// Interned counter ids for fault accounting; resolved when a plan is
/// installed (and re-resolved per shard store on split).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultIds {
    pub(crate) down: MetricId,
    pub(crate) lost: MetricId,
    pub(crate) corrupt: MetricId,
    pub(crate) duplicated: MetricId,
    pub(crate) reordered: MetricId,
    pub(crate) stalled: MetricId,
}

impl FaultIds {
    pub(crate) fn intern(store: &mut SampleStore) -> FaultIds {
        FaultIds {
            down: store.metric_id("fault.link_down"),
            lost: store.metric_id("fault.lost"),
            corrupt: store.metric_id("fault.corrupt"),
            duplicated: store.metric_id("fault.duplicated"),
            reordered: store.metric_id("fault.reordered"),
            stalled: store.metric_id("fault.stalled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceKind};
    use crate::engine::StopCondition;
    use crate::engine::{DevCtx, LinkParams, Network};
    use crate::frame::Frame;
    use crate::testutil::{frame_between, CaptureSink};
    use crate::MacAddr;
    use metrics::CpuLocation;

    /// Forwards every frame from port 0 out of port 1 immediately.
    struct Relay;
    impl Device for Relay {
        fn kind(&self) -> DeviceKind {
            DeviceKind::Other
        }
        fn on_frame(&mut self, _port: PortId, frame: Frame, ctx: &mut DevCtx<'_>) {
            ctx.transmit(PortId::P1, frame);
        }
    }

    fn relay_net(plan: FaultPlan) -> (Network, DeviceId) {
        let mut net = Network::new(9);
        let relay = net.add_device("relay", CpuLocation::Host, Box::new(Relay));
        let sink = net.add_device(
            "sink",
            CpuLocation::Host,
            Box::new(CaptureSink::new("sink")),
        );
        net.connect(
            relay,
            PortId::P1,
            sink,
            PortId::P0,
            LinkParams::with_latency(SimDuration::micros(1)),
        );
        net.install_fault_plan(plan);
        (net, relay)
    }

    fn inject(net: &mut Network, relay: DeviceId, at_us: u64) {
        net.inject_frame(
            SimDuration::micros(at_us),
            relay,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 100),
        );
    }

    #[test]
    fn down_window_drops_draw_free() {
        let plan = FaultPlan::new().link_fault(LinkFault {
            dev: DeviceId(0),
            port: PortId::P1,
            from: SimTime(5_000),
            until: SimTime(15_000),
            kind: LinkFaultKind::Down,
        });
        let (mut net, relay) = relay_net(plan);
        inject(&mut net, relay, 0); // before the window: delivered
        inject(&mut net, relay, 10); // inside: dropped
        inject(&mut net, relay, 20); // after: delivered
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("sink.received"), 2.0);
        assert_eq!(net.store().counter("fault.link_down"), 1.0);
    }

    #[test]
    fn link_flap_builds_periodic_down_windows() {
        let plan = FaultPlan::new().link_flap(
            DeviceId(3),
            PortId::P0,
            SimTime(1_000),
            SimDuration::nanos(100),
            SimDuration::nanos(900),
            3,
        );
        assert_eq!(plan.link_faults().len(), 3);
        for (start, down) in [(1_000, true), (1_100, false), (2_050, true), (3_099, true)] {
            assert_eq!(
                plan.is_link_down(DeviceId(3), PortId::P0, SimTime(start)),
                down,
                "at {start}"
            );
        }
        // Other ports and devices are unaffected.
        assert!(!plan.is_link_down(DeviceId(3), PortId::P1, SimTime(1_000)));
        assert!(!plan.is_link_down(DeviceId(2), PortId::P0, SimTime(1_000)));
    }

    #[test]
    fn duplicate_delivers_twice() {
        let plan = FaultPlan::new().link_fault(LinkFault {
            dev: DeviceId(0),
            port: PortId::P1,
            from: SimTime::ZERO,
            until: SimTime(1_000_000),
            kind: LinkFaultKind::Duplicate(1.0),
        });
        let (mut net, relay) = relay_net(plan);
        inject(&mut net, relay, 0);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("sink.received"), 2.0);
        assert_eq!(net.store().counter("fault.duplicated"), 1.0);
    }

    #[test]
    fn corrupt_and_loss_count_separately() {
        let plan = FaultPlan::new()
            .link_fault(LinkFault {
                dev: DeviceId(0),
                port: PortId::P1,
                from: SimTime::ZERO,
                until: SimTime(5_000),
                kind: LinkFaultKind::Corrupt(1.0),
            })
            .link_fault(LinkFault {
                dev: DeviceId(0),
                port: PortId::P1,
                from: SimTime(5_000),
                until: SimTime(50_000),
                kind: LinkFaultKind::Loss(1.0),
            });
        let (mut net, relay) = relay_net(plan);
        inject(&mut net, relay, 1); // corrupt window
        inject(&mut net, relay, 10); // loss window
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("sink.received"), 0.0);
        assert_eq!(net.store().counter("fault.corrupt"), 1.0);
        assert_eq!(net.store().counter("fault.lost"), 1.0);
    }

    #[test]
    fn stall_delays_emission() {
        let plan = FaultPlan::new().stall(StallWindow {
            dev: DeviceId(0),
            from: SimTime::ZERO,
            until: SimTime(10_000),
            extra: SimDuration::micros(50),
        });
        let (mut net, relay) = relay_net(plan);
        inject(&mut net, relay, 0); // stalled: 1us link + 50us stall
        inject(&mut net, relay, 20); // after the window: 1us link only
        net.run(StopCondition::Idle);
        assert_eq!(
            net.store().samples("sink.arrival_ns"),
            &[21_000.0, 51_000.0]
        );
        assert_eq!(net.store().counter("fault.stalled"), 1.0);
    }

    #[test]
    fn reorder_adds_random_delay() {
        let plan = FaultPlan::new().link_fault(LinkFault {
            dev: DeviceId(0),
            port: PortId::P1,
            from: SimTime::ZERO,
            until: SimTime(500),
            kind: LinkFaultKind::Reorder {
                prob: 1.0,
                max_extra: SimDuration::micros(100),
            },
        });
        let (mut net, relay) = relay_net(plan);
        inject(&mut net, relay, 0); // delayed by 1ns..=100us past its 1us link
        inject(&mut net, relay, 1); // outside the window: on time at 2us
        net.run(StopCondition::Idle);
        let mut arrivals = net.store().samples("sink.arrival_ns").to_vec();
        arrivals.sort_by(f64::total_cmp);
        assert_eq!(arrivals.len(), 2);
        assert_eq!(net.store().counter("fault.reordered"), 1.0);
        assert!(arrivals.contains(&2_000.0), "undelayed frame on time");
        let delayed = if arrivals[0] == 2_000.0 {
            arrivals[1]
        } else {
            arrivals[0]
        };
        assert!(
            delayed > 1_000.0 && delayed <= 101_000.0,
            "delayed frame pushed past its nominal 1us arrival ({delayed})"
        );
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let run = || {
            let plan = FaultPlan::new().link_fault(LinkFault {
                dev: DeviceId(0),
                port: PortId::P1,
                from: SimTime::ZERO,
                until: SimTime(1_000_000_000),
                kind: LinkFaultKind::Loss(0.5),
            });
            let (mut net, relay) = relay_net(plan);
            for i in 0..50 {
                inject(&mut net, relay, i);
            }
            net.run(StopCondition::Idle);
            (
                net.store().counter("sink.received"),
                net.store().counter("fault.lost"),
            )
        };
        let (a_recv, a_lost) = run();
        let (b_recv, b_lost) = run();
        assert_eq!((a_recv, a_lost), (b_recv, b_lost));
        assert_eq!(a_recv + a_lost, 50.0);
        assert!(a_lost > 0.0, "loss draws actually exercised");
    }

    #[test]
    #[should_panic(expected = "before running")]
    fn plan_must_be_installed_before_running() {
        let mut net = Network::new(0);
        let sink = net.add_device("sink", CpuLocation::Host, Box::new(CaptureSink::new("s")));
        net.inject_frame(
            SimDuration::ZERO,
            sink,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 10),
        );
        net.run(StopCondition::Idle);
        net.install_fault_plan(FaultPlan::new());
    }

    #[test]
    #[should_panic(expected = "probability in [0,1]")]
    fn invalid_probability_rejected() {
        let _ = FaultPlan::new().link_fault(LinkFault {
            dev: DeviceId(0),
            port: PortId::P0,
            from: SimTime::ZERO,
            until: SimTime(1),
            kind: LinkFaultKind::Loss(1.5),
        });
    }
}
