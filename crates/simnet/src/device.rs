//! The device abstraction: everything on the datapath — bridges, veth pairs,
//! TAP devices, NAT routers, NICs and application endpoints — implements
//! [`Device`] and is driven by the event engine in [`crate::engine`].

use crate::costs::StageCost;
use crate::engine::DevCtx;
use crate::frame::Frame;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Index of a device inside a [`crate::engine::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

/// A port (attachment point) on a device. Port numbering is device-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub usize);

impl PortId {
    /// Port 0, the conventional "uplink"/single port.
    pub const P0: PortId = PortId(0);
    /// Port 1.
    pub const P1: PortId = PortId(1);
}

/// Coarse classification of devices, used for tracing and cost defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Learning Ethernet switch.
    Bridge,
    /// Virtual Ethernet pair endpoint (namespace boundary crossing).
    Veth,
    /// TAP device (kernel-side virtual NIC backed by a file descriptor).
    Tap,
    /// The modified multi-queue loopback TAP of Hostlo (§4.2).
    HostloTap,
    /// Netfilter-style router applying NAT chains.
    NatRouter,
    /// In-node loopback interface.
    Loopback,
    /// virtio-net guest NIC frontend.
    VirtioNic,
    /// vhost backend worker (host kernel).
    Vhost,
    /// Physical NIC.
    PhysNic,
    /// Application endpoint (socket owner).
    Endpoint,
    /// Anything else.
    Other,
}

/// A datapath element. Implementations are single-threaded state machines
/// driven by frame arrivals and timers; all interaction with the outside
/// world goes through [`DevCtx`].
pub trait Device: Send {
    /// Device classification.
    fn kind(&self) -> DeviceKind;

    /// Handles a frame arriving on `port`.
    fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut DevCtx<'_>);

    /// Handles a timer previously scheduled with [`DevCtx::set_timer`].
    fn on_timer(&mut self, token: u64, ctx: &mut DevCtx<'_>) {
        let _ = (token, ctx);
    }

    /// Deep-copies this device's state for the optimistic shard engine's
    /// snapshots (see `parallel.rs`). A fork must share *nothing* mutable
    /// with the original — in particular a
    /// [`SharedStation`](crate::shared::SharedStation) may only be forked
    /// when it is private to this device
    /// ([`fork_private`](crate::shared::SharedStation::fork_private)).
    ///
    /// The default returns `None`, which declares the device
    /// non-snapshotable; a shard containing such a device gracefully
    /// degrades to conservative synchronization instead of speculating.
    fn fork(&self) -> Option<Box<dyn Device>> {
        None
    }

    /// Whether the flow-level fast path may skip this device for steady
    /// flows (hybrid fidelity). Pure forwarders keep the default `true`;
    /// devices whose per-frame work changes outcomes — a rate shaper
    /// deciding pacing, for example — must return `false`, which pins
    /// every flow crossing them to packet level.
    fn flow_bypass(&self) -> bool {
        true
    }
}

/// FIFO single-server service station: the queueing discipline shared by all
/// store-and-forward devices.
///
/// A station is busy until `busy_until`; an arrival at `t` starts service at
/// `max(t, busy_until)` and completes after the [`StageCost`] service time.
/// This yields both queueing delay under load and a saturation throughput of
/// `1 / service_time` — the mechanism behind every throughput plateau in the
/// paper's figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct Station {
    busy_until: SimTime,
}

impl Station {
    /// A station that has never served a frame.
    pub fn new() -> Station {
        Station::default()
    }

    /// Serves one frame of `wire_len` bytes under `cost`, charging CPU via
    /// `ctx`, and returns the service completion time (when the frame may be
    /// transmitted onward).
    pub fn serve(&mut self, cost: &StageCost, wire_len: u32, ctx: &mut DevCtx<'_>) -> SimTime {
        let service = cost.sample_service(wire_len, ctx.rng());
        let start = self.busy_until.max(ctx.now());
        let done = start + service;
        self.busy_until = done;
        ctx.charge(cost.cpu_cat, service);
        // Stalls delay the frame without occupying the server: latency-only.
        done + cost.sample_stall(ctx.rng())
    }

    /// When the station next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}
