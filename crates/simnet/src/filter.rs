//! Netfilter-style filter chains with a compiled interval-index matcher.
//!
//! The NAT module models the PREROUTING/POSTROUTING translation chains;
//! this module adds the *filter* table — INPUT and FORWARD chains with
//! ACCEPT/DROP/REJECT verdicts and conntrack state-match — so the CNIs can
//! enforce NetworkPolicy-style isolation at whichever device actually
//! carries a pod's traffic (guest NAT, host bridge, hostlo queues).
//!
//! Two design constraints shape the implementation:
//!
//! 1. *Determinism.* Rule mutations are time-windowed, like `FaultPlan`
//!    windows: every installed rule carries an `[active_from, active_until)`
//!    window and a verdict is a pure function of `(frame, conntrack state,
//!    sim time)`. Control-plane mutations between run windows schedule the
//!    window boundaries; nothing about a verdict depends on shard count or
//!    wall-clock interleaving. The activation instants feed the flow
//!    fast path's escalation check (see `changed_in`), mirroring how
//!    `FaultPlan::any_active` knocks modeled flows back to packet level.
//! 2. *Scale.* A chain walk must not be O(rules): rules are compiled into
//!    an elementary-interval index over destination ports (sorted boundary
//!    array, binary search) with per-interval candidate lists ordered by
//!    install sequence, so a 100k-rule table costs O(log n) + O(candidates)
//!    per packet. Wild port ranges (wider than [`WIDE_SPAN`]) go to a
//!    separate short list merged in priority order.
//!
//! The compiled index is rebuilt lazily after a mutation; compilation is a
//! pure function of the rule list, so any shard may trigger it with an
//! identical result. Tables that never had a rule installed stay on a
//! single relaxed-atomic fast path and cost one branch per frame.

use crate::addr::{Ip4, Ip4Net, SockAddr};
use crate::nat::Proto;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which filter chain a rule lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Chain {
    /// Traffic delivered to the device itself (endpoint delivery).
    Input,
    /// Traffic transiting the device (router, bridge, hostlo queues).
    Forward,
}

impl Chain {
    /// Stable lowercase label (counter names, journal exports).
    pub fn label(self) -> &'static str {
        match self {
            Chain::Input => "input",
            Chain::Forward => "forward",
        }
    }
}

/// What happens to a matched frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Let the frame through.
    Accept,
    /// Silently discard.
    Drop,
    /// Discard and notify the sender (port-unreachable analogue).
    Reject,
}

impl Verdict {
    /// Journal operand code (`c` of a `FilterDrop` record).
    pub fn code(self) -> u64 {
        match self {
            Verdict::Accept => 2,
            Verdict::Drop => 0,
            Verdict::Reject => 1,
        }
    }
}

/// Conntrack state of the frame being filtered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnState {
    /// First packet of a flow the tracker has not seen.
    New,
    /// Packet of a tracked flow (either direction).
    Established,
    /// New flow between endpoints that already have a tracked flow on
    /// other ports (FTP-data / ICMP-error analogue).
    Related,
}

/// Set of [`ConnState`]s a rule matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateMask(u8);

impl StateMask {
    /// Matches only NEW.
    pub const NEW: StateMask = StateMask(1);
    /// Matches only ESTABLISHED.
    pub const ESTABLISHED: StateMask = StateMask(1 << 1);
    /// Matches only RELATED.
    pub const RELATED: StateMask = StateMask(1 << 2);
    /// Matches every state (a stateless rule).
    pub const ANY: StateMask = StateMask(0b111);

    /// Union of two masks.
    pub fn or(self, other: StateMask) -> StateMask {
        StateMask(self.0 | other.0)
    }

    /// True when `state` is in the mask.
    pub fn matches(self, state: ConnState) -> bool {
        let bit = match state {
            ConnState::New => 1,
            ConnState::Established => 1 << 1,
            ConnState::Related => 1 << 2,
        };
        self.0 & bit != 0
    }
}

/// One filter rule. First match wins, in install order; an empty chain
/// (or no matching rule) ACCEPTs, like an iptables chain with policy
/// ACCEPT — default-deny is expressed as a trailing catch-all DROP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterRule {
    /// Chain the rule belongs to.
    pub chain: Chain,
    /// Protocol to match; `None` matches both.
    pub proto: Option<Proto>,
    /// Source subnet to match; `None` matches any.
    pub src: Option<Ip4Net>,
    /// Destination subnet to match; `None` matches any.
    pub dst: Option<Ip4Net>,
    /// Inclusive destination-port range; `(0, u16::MAX)` matches any.
    pub dst_ports: (u16, u16),
    /// Conntrack states the rule applies to.
    pub states: StateMask,
    /// Verdict on match.
    pub verdict: Verdict,
}

impl FilterRule {
    /// A catch-all rule for `chain` with the given verdict (any proto,
    /// any address, any port, any state).
    pub fn any(chain: Chain, verdict: Verdict) -> FilterRule {
        FilterRule {
            chain,
            proto: None,
            src: None,
            dst: None,
            dst_ports: (0, u16::MAX),
            states: StateMask::ANY,
            verdict,
        }
    }

    /// Restricts the rule to one protocol.
    pub fn proto(mut self, p: Proto) -> FilterRule {
        self.proto = Some(p);
        self
    }

    /// Restricts the source subnet.
    pub fn from_net(mut self, net: Ip4Net) -> FilterRule {
        self.src = Some(net);
        self
    }

    /// Restricts the destination subnet.
    pub fn to_net(mut self, net: Ip4Net) -> FilterRule {
        self.dst = Some(net);
        self
    }

    /// Restricts the destination to a single address.
    pub fn to_ip(self, ip: Ip4) -> FilterRule {
        self.to_net(Ip4Net::new(ip, 32))
    }

    /// Restricts the destination port range (inclusive).
    pub fn ports(mut self, lo: u16, hi: u16) -> FilterRule {
        assert!(lo <= hi, "port range must be ordered");
        self.dst_ports = (lo, hi);
        self
    }

    /// Restricts the destination to one port.
    pub fn port(self, p: u16) -> FilterRule {
        self.ports(p, p)
    }

    /// Restricts the conntrack states.
    pub fn states(mut self, mask: StateMask) -> FilterRule {
        self.states = mask;
        self
    }

    fn matches(&self, proto: Proto, src: SockAddr, dst: SockAddr, state: ConnState) -> bool {
        self.proto.is_none_or(|p| p == proto)
            && self.dst_ports.0 <= dst.port
            && dst.port <= self.dst_ports.1
            && self.src.is_none_or(|n| n.contains(src.ip))
            && self.dst.is_none_or(|n| n.contains(dst.ip))
            && self.states.matches(state)
    }
}

/// Rule id returned on a default (no-match) ACCEPT verdict.
pub const NO_RULE: u64 = u64::MAX;

/// Port ranges wider than this skip the interval index and go to the
/// per-chain wide list (catch-alls; merged at match time in id order).
const WIDE_SPAN: u32 = 1024;

#[derive(Debug, Clone)]
struct Installed {
    rule: FilterRule,
    id: u64,
    from: SimTime,
    until: SimTime,
}

impl Installed {
    /// True when the rule's activity window contains `now`.
    fn live_at(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// Compiled form of one chain: elementary destination-port intervals with
/// per-interval candidate lists (indices into the installed-rule vec,
/// ascending = priority order) plus the wide-range list.
#[derive(Debug, Clone, Default)]
struct CompiledChain {
    /// Sorted distinct interval starts, excluding the implicit 0.
    bounds: Vec<u16>,
    /// Candidate lists; index `i` covers ports in
    /// `[bounds[i-1], bounds[i])` (`bounds.len()` lists + 1).
    buckets: Vec<Vec<u32>>,
    /// Rules whose port range is wider than [`WIDE_SPAN`].
    wide: Vec<u32>,
}

impl CompiledChain {
    fn build(rules: &[Installed], chain: Chain) -> CompiledChain {
        let mut starts: BTreeSet<u16> = BTreeSet::new();
        let chain_rules: Vec<u32> = rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.rule.chain == chain)
            .map(|(i, _)| i as u32)
            .collect();
        let narrow: Vec<u32> = chain_rules
            .iter()
            .copied()
            .filter(|&i| {
                let (lo, hi) = rules[i as usize].rule.dst_ports;
                u32::from(hi) - u32::from(lo) <= WIDE_SPAN
            })
            .collect();
        for &i in &narrow {
            let (lo, hi) = rules[i as usize].rule.dst_ports;
            if lo > 0 {
                starts.insert(lo);
            }
            if hi < u16::MAX {
                starts.insert(hi + 1);
            }
        }
        let bounds: Vec<u16> = starts.into_iter().collect();
        let mut buckets = vec![Vec::new(); bounds.len() + 1];
        for &i in &narrow {
            let (lo, hi) = rules[i as usize].rule.dst_ports;
            // Bucket k covers [prev_bound, bounds[k]); rules span the
            // contiguous run of buckets whose interval intersects [lo, hi].
            let first = bounds.partition_point(|&b| b <= lo);
            let last = bounds.partition_point(|&b| b <= hi);
            for bucket in &mut buckets[first..=last] {
                bucket.push(i);
            }
        }
        let wide: Vec<u32> = chain_rules
            .into_iter()
            .filter(|&i| {
                let (lo, hi) = rules[i as usize].rule.dst_ports;
                u32::from(hi) - u32::from(lo) > WIDE_SPAN
            })
            .collect();
        CompiledChain {
            bounds,
            buckets,
            wide,
        }
    }

    /// First matching rule (lowest install id), merging the port bucket
    /// with the wide list in id order.
    fn lookup(
        &self,
        rules: &[Installed],
        proto: Proto,
        src: SockAddr,
        dst: SockAddr,
        state: ConnState,
        now: SimTime,
    ) -> (Verdict, u64) {
        let idx = self.bounds.partition_point(|&b| b <= dst.port);
        let bucket = &self.buckets[idx];
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            let next = match (bucket.get(a), self.wide.get(b)) {
                (Some(&x), Some(&y)) => {
                    if x <= y {
                        a += 1;
                        x
                    } else {
                        b += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    a += 1;
                    x
                }
                (None, Some(&y)) => {
                    b += 1;
                    y
                }
                (None, None) => return (Verdict::Accept, NO_RULE),
            };
            let r = &rules[next as usize];
            if r.live_at(now) && r.rule.matches(proto, src, dst, state) {
                return (r.rule.verdict, r.id);
            }
        }
    }
}

#[derive(Debug, Default)]
struct FilterState {
    rules: Vec<Installed>,
    next_id: u64,
    /// Bumped on every mutation; the compiled index is tagged with the
    /// epoch it was built at and rebuilt lazily on mismatch.
    epoch: u64,
    /// Activation/deactivation instants of every mutation, for the flow
    /// fast path's overlap check (`u64::MAX` sentinels are not recorded).
    changes: BTreeSet<u64>,
    compiled: Option<(u64, CompiledChain, CompiledChain)>,
}

impl FilterState {
    fn note_change(&mut self, at: SimTime) {
        self.epoch += 1;
        self.compiled = None;
        if at.0 != u64::MAX {
            self.changes.insert(at.0);
        }
    }
}

/// A cloneable handle to one device's filter table — the `iptables -t
/// filter` administration surface. Created by the devices that host a
/// table (NAT router, bridge, hostlo TAP, endpoint) and handed to CNIs.
#[derive(Debug, Clone, Default)]
pub struct FilterControl {
    state: Arc<parking_lot::Mutex<FilterState>>,
    /// One relaxed load per frame keeps never-configured tables free.
    engaged: Arc<AtomicBool>,
}

impl FilterControl {
    /// Installs `rule`, active from `from` until removed. Returns the rule
    /// id (install order = match priority; lower wins).
    pub fn install_at(&self, rule: FilterRule, from: SimTime) -> u64 {
        let mut s = self.state.lock();
        let id = s.next_id;
        s.next_id += 1;
        s.rules.push(Installed {
            rule,
            id,
            from,
            until: SimTime(u64::MAX),
        });
        s.note_change(from);
        self.engaged.store(true, Ordering::Release);
        id
    }

    /// Installs `rule` active immediately (setup-time convenience).
    pub fn install(&self, rule: FilterRule) -> u64 {
        self.install_at(rule, SimTime::ZERO)
    }

    /// Schedules rule `id` to deactivate at `until` (`iptables -D`
    /// analogue; pass the current sim time for an immediate removal).
    /// Returns false when no such rule exists.
    pub fn remove_at(&self, id: u64, until: SimTime) -> bool {
        let mut s = self.state.lock();
        let Some(r) = s.rules.iter_mut().find(|r| r.id == id) else {
            return false;
        };
        r.until = until;
        s.note_change(until);
        true
    }

    /// Number of rules ever installed (including deactivated ones).
    pub fn len(&self) -> usize {
        self.state.lock().rules.len()
    }

    /// True when no rule was ever installed.
    pub fn is_empty(&self) -> bool {
        !self.engaged.load(Ordering::Acquire)
    }

    /// The table's mutation epoch: bumped by every install, removal, and
    /// purge. Zero for a never-configured table. The flow fast path sums
    /// the epochs of the controls on a learned path and escalates when
    /// the sum moves (a between-runs rule mutation that `changed_in`'s
    /// scheduled-instant check would miss, e.g. installing a rule whose
    /// window opened in the past).
    pub fn epoch(&self) -> u64 {
        if !self.engaged.load(Ordering::Acquire) {
            return 0;
        }
        self.state.lock().epoch
    }

    /// Number of rules whose activity window contains `now`.
    pub fn live_len(&self, now: SimTime) -> usize {
        self.state
            .lock()
            .rules
            .iter()
            .filter(|r| r.from <= now && now < r.until)
            .count()
    }

    /// Drops deactivated rules whose window ended at or before `now`
    /// (bounded memory across policy churn). Returns how many were purged.
    pub fn purge_expired(&self, now: SimTime) -> usize {
        let mut s = self.state.lock();
        let before = s.rules.len();
        s.rules.retain(|r| r.until > now);
        let purged = before - s.rules.len();
        if purged > 0 {
            s.epoch += 1;
            s.compiled = None;
        }
        purged
    }

    /// True when any rule activation/deactivation instant falls in
    /// `(after, upto]` — the flow fast path's "did policy change since I
    /// learned this path" check, mirroring `FaultPlan::any_active`.
    pub fn changed_in(&self, after: SimTime, upto: SimTime) -> bool {
        if after >= upto || !self.engaged.load(Ordering::Acquire) {
            return false;
        }
        use std::ops::Bound::{Excluded, Included};
        self.state
            .lock()
            .changes
            .range((Excluded(after.0), Included(upto.0)))
            .next()
            .is_some()
    }

    /// Evaluates `chain` for a frame. Never-configured tables return
    /// ACCEPT after one atomic load; configured tables take the lock,
    /// (re)compile if stale, and walk the interval index.
    pub fn eval(
        &self,
        chain: Chain,
        proto: Proto,
        src: SockAddr,
        dst: SockAddr,
        state: ConnState,
        now: SimTime,
    ) -> (Verdict, u64) {
        if !self.engaged.load(Ordering::Acquire) {
            return (Verdict::Accept, NO_RULE);
        }
        let mut s = self.state.lock();
        let s = &mut *s;
        // Split borrow: compile against the rules, then look up.
        if s.compiled.as_ref().is_none_or(|c| c.0 != s.epoch) {
            s.compiled = Some((
                s.epoch,
                CompiledChain::build(&s.rules, Chain::Input),
                CompiledChain::build(&s.rules, Chain::Forward),
            ));
        }
        let (_, input, forward) = s.compiled.as_ref().unwrap();
        let c = match chain {
            Chain::Input => input,
            Chain::Forward => forward,
        };
        c.lookup(&s.rules, proto, src, dst, state, now)
    }
}

/// Default lifetime of a [`StateTracker`] entry (matches the NAT
/// conntrack default).
pub const TRACK_TIMEOUT: SimDuration = SimDuration::secs(120);

/// Frames between expiry sweeps of a [`StateTracker`].
const TRACK_GC_EVERY: u32 = 256;

/// A device-local conntrack table for filter attach points that have no
/// NAT conntrack to consult (bridges, hostlo queues, endpoints). Lives
/// inside the device, so the sharded engine snapshots/forks it with the
/// device and state resolution stays bit-deterministic.
#[derive(Debug, Clone, Default)]
pub struct StateTracker {
    conns: HashMap<(Proto, SockAddr, SockAddr), SimTime>,
    /// Unordered ip-pair index for RELATED lookups (canonical low/high).
    pairs: HashMap<(Proto, Ip4, Ip4), SimTime>,
    lookups: u32,
}

impl StateTracker {
    fn pair_key(proto: Proto, a: Ip4, b: Ip4) -> (Proto, Ip4, Ip4) {
        if a.0 <= b.0 {
            (proto, a, b)
        } else {
            (proto, b, a)
        }
    }

    /// Resolves the conntrack state of a frame *without* recording it.
    pub fn state_of(
        &mut self,
        proto: Proto,
        src: SockAddr,
        dst: SockAddr,
        now: SimTime,
    ) -> ConnState {
        self.lookups += 1;
        if self.lookups >= TRACK_GC_EVERY {
            self.lookups = 0;
            self.conns.retain(|_, t| now.since(*t) <= TRACK_TIMEOUT);
            self.pairs.retain(|_, t| now.since(*t) <= TRACK_TIMEOUT);
        }
        let live = |t: &SimTime| now.since(*t) <= TRACK_TIMEOUT;
        if self.conns.get(&(proto, src, dst)).is_some_and(live) {
            return ConnState::Established;
        }
        if self
            .pairs
            .get(&Self::pair_key(proto, src.ip, dst.ip))
            .is_some_and(live)
        {
            return ConnState::Related;
        }
        ConnState::New
    }

    /// Records an accepted frame: both directions become ESTABLISHED and
    /// the address pair feeds future RELATED matches.
    pub fn note(&mut self, proto: Proto, src: SockAddr, dst: SockAddr, now: SimTime) {
        self.conns.insert((proto, src, dst), now);
        self.conns.insert((proto, dst, src), now);
        self.pairs
            .insert(Self::pair_key(proto, src.ip, dst.ip), now);
    }

    /// Number of tracked flow directions still alive at `now`.
    pub fn live_len(&self, now: SimTime) -> usize {
        self.conns
            .values()
            .filter(|t| now.since(**t) <= TRACK_TIMEOUT)
            .count()
    }
}

/// Payload tag carried by the notification frame a REJECT verdict sends
/// back to the sender (the port-unreachable analogue); lets endpoints and
/// tests tell an active refusal from silence.
pub const REJECT_TAG: u64 = 0x7265_6a65_6374; // "reject"

/// Interned per-chain verdict counters (`filter.<chain>.accept` / `.drop`
/// / `.reject`), shared by every device hosting a filter hook. Resolved
/// lazily on the first frame that reaches an *engaged* table, so
/// policy-free runs never intern filter metrics.
#[derive(Debug, Clone, Copy)]
pub struct HookIds {
    /// Counter bumped on every ACCEPT verdict.
    pub accept: metrics::MetricId,
    /// Counter bumped on every DROP verdict.
    pub drop: metrics::MetricId,
    /// Counter bumped on every REJECT verdict.
    pub reject: metrics::MetricId,
}

impl HookIds {
    /// Interns the three verdict counters for `chain` in the device's
    /// metric namespace (call once per device, on first engaged frame).
    pub fn resolve(chain: Chain, ctx: &mut crate::engine::DevCtx<'_>) -> HookIds {
        let l = chain.label();
        HookIds {
            accept: ctx.metric(&format!("filter.{l}.accept")),
            drop: ctx.metric(&format!("filter.{l}.drop")),
            reject: ctx.metric(&format!("filter.{l}.reject")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANY_STATE: ConnState = ConnState::New;

    fn sock(a: u32, port: u16) -> SockAddr {
        SockAddr::new(Ip4(a), port)
    }

    /// Reference matcher: linear first-match walk over the rule list.
    fn linear_eval(
        ctl: &FilterControl,
        chain: Chain,
        proto: Proto,
        src: SockAddr,
        dst: SockAddr,
        state: ConnState,
        now: SimTime,
    ) -> (Verdict, u64) {
        let s = ctl.state.lock();
        for r in &s.rules {
            if r.rule.chain == chain && r.live_at(now) && r.rule.matches(proto, src, dst, state) {
                return (r.rule.verdict, r.id);
            }
        }
        (Verdict::Accept, NO_RULE)
    }

    #[test]
    fn empty_table_accepts_cheaply() {
        let ctl = FilterControl::default();
        assert!(ctl.is_empty());
        let (v, id) = ctl.eval(
            Chain::Forward,
            Proto::Udp,
            sock(1, 1),
            sock(2, 2),
            ANY_STATE,
            SimTime::ZERO,
        );
        assert_eq!((v, id), (Verdict::Accept, NO_RULE));
    }

    #[test]
    fn first_match_wins_in_install_order() {
        let ctl = FilterControl::default();
        let allow = ctl.install(FilterRule::any(Chain::Forward, Verdict::Accept).port(80));
        let deny = ctl.install(FilterRule::any(Chain::Forward, Verdict::Drop));
        let (v, id) = ctl.eval(
            Chain::Forward,
            Proto::Tcp,
            sock(1, 999),
            sock(2, 80),
            ANY_STATE,
            SimTime::ZERO,
        );
        assert_eq!((v, id), (Verdict::Accept, allow));
        let (v, id) = ctl.eval(
            Chain::Forward,
            Proto::Tcp,
            sock(1, 999),
            sock(2, 81),
            ANY_STATE,
            SimTime::ZERO,
        );
        assert_eq!((v, id), (Verdict::Drop, deny));
    }

    #[test]
    fn chains_are_independent() {
        let ctl = FilterControl::default();
        ctl.install(FilterRule::any(Chain::Input, Verdict::Drop));
        let (v, _) = ctl.eval(
            Chain::Forward,
            Proto::Udp,
            sock(1, 1),
            sock(2, 2),
            ANY_STATE,
            SimTime::ZERO,
        );
        assert_eq!(v, Verdict::Accept);
        let (v, _) = ctl.eval(
            Chain::Input,
            Proto::Udp,
            sock(1, 1),
            sock(2, 2),
            ANY_STATE,
            SimTime::ZERO,
        );
        assert_eq!(v, Verdict::Drop);
    }

    #[test]
    fn windows_gate_activity() {
        let ctl = FilterControl::default();
        let id = ctl.install_at(
            FilterRule::any(Chain::Forward, Verdict::Drop),
            SimTime(1_000),
        );
        let at = |t: u64| {
            ctl.eval(
                Chain::Forward,
                Proto::Udp,
                sock(1, 1),
                sock(2, 2),
                ANY_STATE,
                SimTime(t),
            )
            .0
        };
        assert_eq!(at(999), Verdict::Accept, "not yet active");
        assert_eq!(at(1_000), Verdict::Drop, "active from the boundary");
        assert!(ctl.remove_at(id, SimTime(5_000)));
        assert_eq!(at(4_999), Verdict::Drop, "still active");
        assert_eq!(at(5_000), Verdict::Accept, "deactivated at the boundary");
        assert_eq!(ctl.live_len(SimTime(2_000)), 1);
        assert_eq!(ctl.live_len(SimTime(6_000)), 0);
    }

    #[test]
    fn change_instants_feed_the_flow_overlap_check() {
        let ctl = FilterControl::default();
        assert!(!ctl.changed_in(SimTime::ZERO, SimTime(u64::MAX - 1)));
        let id = ctl.install_at(
            FilterRule::any(Chain::Forward, Verdict::Drop),
            SimTime(2_000),
        );
        assert!(
            ctl.changed_in(SimTime(1_000), SimTime(2_000)),
            "inclusive upper"
        );
        assert!(
            !ctl.changed_in(SimTime(2_000), SimTime(3_000)),
            "exclusive lower"
        );
        ctl.remove_at(id, SimTime(9_000));
        assert!(ctl.changed_in(SimTime(8_000), SimTime(9_500)));
    }

    #[test]
    fn state_mask_selects_verdict() {
        let ctl = FilterControl::default();
        ctl.install(
            FilterRule::any(Chain::Forward, Verdict::Accept).states(StateMask::ESTABLISHED),
        );
        ctl.install(FilterRule::any(Chain::Forward, Verdict::Drop));
        let v = |state| {
            ctl.eval(
                Chain::Forward,
                Proto::Udp,
                sock(1, 1),
                sock(2, 2),
                state,
                SimTime::ZERO,
            )
            .0
        };
        assert_eq!(v(ConnState::Established), Verdict::Accept);
        assert_eq!(v(ConnState::New), Verdict::Drop);
        assert_eq!(v(ConnState::Related), Verdict::Drop);
    }

    #[test]
    fn reject_verdict_and_nets_match() {
        let ctl = FilterControl::default();
        let net = Ip4Net::new(Ip4::new(10, 0, 0, 0), 24);
        ctl.install(
            FilterRule::any(Chain::Input, Verdict::Reject)
                .proto(Proto::Tcp)
                .from_net(net)
                .port(22),
        );
        let hit = ctl.eval(
            Chain::Input,
            Proto::Tcp,
            SockAddr::new(Ip4::new(10, 0, 0, 9), 1234),
            sock(7, 22),
            ANY_STATE,
            SimTime::ZERO,
        );
        assert_eq!(hit.0, Verdict::Reject);
        let miss_proto = ctl.eval(
            Chain::Input,
            Proto::Udp,
            SockAddr::new(Ip4::new(10, 0, 0, 9), 1234),
            sock(7, 22),
            ANY_STATE,
            SimTime::ZERO,
        );
        assert_eq!(miss_proto.0, Verdict::Accept);
        let miss_net = ctl.eval(
            Chain::Input,
            Proto::Tcp,
            SockAddr::new(Ip4::new(10, 0, 1, 9), 1234),
            sock(7, 22),
            ANY_STATE,
            SimTime::ZERO,
        );
        assert_eq!(miss_net.0, Verdict::Accept);
    }

    #[test]
    fn interval_index_agrees_with_linear_walk() {
        // Deterministic pseudo-random rule soup, including wide ranges
        // and windows, cross-checked against the reference matcher.
        let ctl = FilterControl::default();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..500 {
            let lo = (step() % 60_000) as u16;
            let span = if step() % 5 == 0 {
                (step() % 5_000) as u16 // some wide ranges
            } else {
                (step() % 40) as u16
            };
            let hi = lo.saturating_add(span);
            let verdict = match step() % 3 {
                0 => Verdict::Accept,
                1 => Verdict::Drop,
                _ => Verdict::Reject,
            };
            let chain = if step() % 2 == 0 {
                Chain::Forward
            } else {
                Chain::Input
            };
            let mut rule = FilterRule::any(chain, verdict).ports(lo, hi);
            if step() % 2 == 0 {
                rule = rule.proto(if step() % 2 == 0 {
                    Proto::Udp
                } else {
                    Proto::Tcp
                });
            }
            if step() % 3 == 0 {
                rule = rule.to_net(Ip4Net::new(Ip4((step() as u32) & 0xFFFF_FF00), 24));
            }
            let from = SimTime(step() % 1_000);
            let id = ctl.install_at(rule, from);
            if step() % 4 == 0 {
                ctl.remove_at(id, SimTime(1_000 + step() % 1_000));
            }
        }
        for _ in 0..2_000 {
            let proto = if step() % 2 == 0 {
                Proto::Udp
            } else {
                Proto::Tcp
            };
            let src = SockAddr::new(Ip4(step() as u32), (step() % 65_536) as u16);
            let dst = SockAddr::new(Ip4(step() as u32), (step() % 65_536) as u16);
            let state = match step() % 3 {
                0 => ConnState::New,
                1 => ConnState::Established,
                _ => ConnState::Related,
            };
            let now = SimTime(step() % 2_500);
            for chain in [Chain::Input, Chain::Forward] {
                assert_eq!(
                    ctl.eval(chain, proto, src, dst, state, now),
                    linear_eval(&ctl, chain, proto, src, dst, state, now),
                    "compiled matcher diverged from the linear reference"
                );
            }
        }
    }

    #[test]
    fn purge_drops_only_dead_rules() {
        let ctl = FilterControl::default();
        let a = ctl.install(FilterRule::any(Chain::Forward, Verdict::Drop));
        let b = ctl.install(FilterRule::any(Chain::Input, Verdict::Drop));
        ctl.remove_at(a, SimTime(100));
        assert_eq!(ctl.purge_expired(SimTime(100)), 1);
        assert_eq!(ctl.len(), 1);
        let _ = b;
        // The survivor still matches.
        let (v, _) = ctl.eval(
            Chain::Input,
            Proto::Udp,
            sock(1, 1),
            sock(2, 2),
            ANY_STATE,
            SimTime(200),
        );
        assert_eq!(v, Verdict::Drop);
    }

    #[test]
    fn state_tracker_resolves_new_established_related() {
        let mut t = StateTracker::default();
        let a = sock(1, 100);
        let b = sock(2, 200);
        let now = SimTime::ZERO;
        assert_eq!(t.state_of(Proto::Udp, a, b, now), ConnState::New);
        t.note(Proto::Udp, a, b, now);
        assert_eq!(t.state_of(Proto::Udp, a, b, now), ConnState::Established);
        assert_eq!(
            t.state_of(Proto::Udp, b, a, now),
            ConnState::Established,
            "reply direction is established"
        );
        // Same hosts, different ports: related.
        assert_eq!(
            t.state_of(Proto::Udp, sock(1, 777), sock(2, 888), now),
            ConnState::Related
        );
        // Different proto: unrelated.
        assert_eq!(t.state_of(Proto::Tcp, a, b, now), ConnState::New);
        // Expired entries stop matching.
        let later = now + TRACK_TIMEOUT + SimDuration::secs(1);
        assert_eq!(t.state_of(Proto::Udp, a, b, later), ConnState::New);
        assert_eq!(t.live_len(later), 0);
    }
}
