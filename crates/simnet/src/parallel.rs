//! The parallel sharded engine: adaptive conservative lookahead, lock-free
//! cross-shard rings, and opt-in optimistic execution — without losing a
//! single bit of determinism.
//!
//! # Partitioning
//!
//! [`PartitionPlan::partition`] splits the device graph into *islands* that
//! must never be separated, then balances islands across shards:
//!
//! * devices joined by a **zero-latency link** stay together (a frame could
//!   cross instantly, so no lookahead exists across such a link);
//! * devices located in the **same VM** stay together (they serialize on
//!   shared guest state — stations, kernel queues);
//! * devices bound by [`Network::bind_same_shard`] stay together (coupling
//!   the device graph cannot see, above all a
//!   [`SharedStation`](crate::shared::SharedStation) serialized across
//!   devices — e.g. every host bridge of one machine sharing the host
//!   kernel's station).
//!
//! The paper's topologies are naturally host-shaped: intra-host plumbing
//! (veth, TAP, virtio/vhost, bridges) is glued by these rules while
//! physical inter-host links carry real latency, so islands are host
//! islands and the cut runs exactly along cross-host links.
//!
//! # Adaptive conservative lookahead
//!
//! The plan records a **per-pair minimum latency matrix** over the cut.
//! Each round, shard `d` may safely process every event strictly below
//!
//! ```text
//! bound(d) = min over s≠d with a link s→d of  floor(s) + minlat(s, d)
//! ```
//!
//! where `floor(s)` is `s`'s committed progress floor (its heap minimum,
//! folded with the minimum arrival time of frames already in flight to
//! `s`). A frame `s` emits at time `τ ≥ floor(s)` arrives no earlier than
//! `τ + minlat(s, d) ≥ bound(d)`, so the window is causally closed. This
//! strictly dominates the fixed global window `[t, t+E)` of the earlier
//! coordinator: a shard is only throttled by the shards that can actually
//! reach it, at the latency of the links that reach it. Shards with no
//! processable events, no pending arrivals and no speculation verdict are
//! not dispatched at all — on one core this is the difference between a
//! round costing `2n` channel hops and costing only what the active
//! shards need.
//!
//! # Cross-shard data plane
//!
//! Frames cross the cut through bounded **lock-free SPSC rings**
//! ([`crate::spsc`]), one per directed shard pair that shares at least one
//! link. A shard flushes its outbox once per round as a handful of
//! per-destination *batches* (`Vec<RemoteEvent>` tagged with the round
//! number) instead of routing every frame through the coordinator: the
//! control plane (tiny `Cmd`/`Reply` messages over `mpsc`) never touches
//! frame payloads. Receivers drain exactly the batches tagged with an
//! earlier round than the one they are executing — the round tag, not
//! thread scheduling, decides visibility, which keeps every decision the
//! coordinator makes a pure function of deterministic state.
//!
//! # Optimistic mode (time-warp-lite)
//!
//! With [`ShardedNetwork::set_optimistic`] (or `SIMNET_OPTIMISTIC=1`), a
//! shard that exhausts its conservative bound may *speculate* ahead up to
//! a bounded window beyond it. Before speculating it takes a full
//! [`EngineSnapshot`] (heap, pool, RNG streams, CPU account, store mark,
//! trace/span marks, forked devices). Speculative cross-shard frames are
//! **held**, never released — no anti-messages exist in this protocol, so
//! mis-speculation can never propagate. The coordinator resolves each
//! speculation with a per-round disposition:
//!
//! * **Rollback** when a straggler (an in-flight frame at or below the
//!   speculated clock) is detected: the worker restores the snapshot,
//!   re-queues the arrivals it drained while speculating, and replays
//!   conservatively. Every structure the run can observe — samples,
//!   counters, journal, traces, spans, stage table, CPU account, device
//!   state, RNG cursors — is restored, which is what keeps optimistic
//!   runs bit-identical to conservative ones.
//! * **Commit** when a greatest-fixpoint check proves no straggler can
//!   exist: starting from all speculating shards, repeatedly discard any
//!   shard whose speculated clock is not strictly below the earliest
//!   possible arrival from every peer — where a still-committing peer
//!   contributes the *concrete* minimum of its held frames (real data,
//!   which is what breaks the circular wait a floor-only rule would
//!   deadlock on). Surviving shards release their held batches and adopt
//!   the speculated state wholesale.
//!
//! If speculations are pending but nothing can run and nothing can
//! commit, the coordinator rolls back every speculation — always sound —
//! so the protocol is live by construction. Fault plans need no snapshot
//! state: a [`FaultPlan`](crate::fault::FaultPlan) is immutable and its
//! probabilistic draws come from device RNG streams, which the snapshot
//! already restores.
//!
//! # Bit-identical determinism
//!
//! Three mechanisms make the sharded run reproduce the sequential engine
//! exactly (not just statistically):
//!
//! 1. **Intrinsic event keys** `(time, source, per-source seq)` (see
//!    `engine.rs`): heap order does not depend on insertion order, so each
//!    shard's pop order equals the sequential pop order restricted to that
//!    shard's devices.
//! 2. **Per-device RNG streams** seeded from `(network seed, device id)`:
//!    jitter/loss draws depend only on a device's own event sequence, never
//!    on how unrelated devices interleave.
//! 3. **Merge by frontier order**: each shard keeps an event log and a
//!    sample journal; [`ShardedNetwork::into_report`] replays them with a
//!    k-way frontier merge (always consume the shard whose next logged
//!    event has the smallest key) which provably reconstructs the exact
//!    sequential interleaving — equal-time causal chains never cross
//!    shards because cross-shard links have latency ≥ E > 0.
//!
//! Optimistic execution preserves all three: committed speculation ran
//! exactly the events a conservative run would have run, in the same
//! intrinsic order, on the same RNG cursors; rolled-back speculation
//! leaves no observable residue.
//!
//! CPU time is aggregated by folding per-shard [`CpuAccount`]s
//! ([`CpuAccount::fold`] — integer nanoseconds, exact); counters are
//! summed per shard in shard order (counter deltas in this codebase are
//! integer-valued, so f64 addition is exact far beyond any realistic run
//! length). Flight-recorder spans ride the same frontier merge as sample
//! journals: each [`LogEntry`] carries its span count, replay restores
//! exact sequential emission order, and re-capping against the global
//! span cap reproduces the sequential kept/dropped split bit for bit.

use crate::device::DeviceId;
use crate::engine::{
    EngineSnapshot, EventTag, LogEntry, Network, RemoteEvent, SampleStore, StopCondition,
    TraceEntry, TRACE_CAP,
};
use crate::flow::Fidelity;
use crate::spsc::{self, Consumer, Producer};
use crate::time::{SimDuration, SimTime};
use metrics::{
    CpuAccount, CpuLocation, JournalKind, JournalRecord, JournalRing, JournalTag, SpanRecord,
    SpanRing, StageTable, TelemetryConfig, TelemetryMode, TraceMode, JOURNAL_KINDS,
};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

pub use crate::config::{optimistic_from_env, shards_from_env};

/// Capacity of each cross-shard ring, in batches. A sender pushes at most
/// two batches per destination per round (a committed flush plus a
/// speculative release) and receivers drain every eligible batch on their
/// next dispatch, so steady-state occupancy stays below four; the slack
/// absorbs rounds where the receiver is idle-skipped.
const RING_CAP: usize = 16;

/// How far past its conservative bound a shard may speculate, in units of
/// the partition epoch.
const SPEC_WINDOW_EPOCHS: u64 = 4;

/// Source id tagged onto coordinator-lane journal records (rounds,
/// commits, rollbacks, ring stats). One below the engine's external
/// source, so neither lane's tags can collide with a device's.
const COORD_SRC: u32 = u32::MAX - 1;

/// Emits one coordinator-lane journal record (no-op when telemetry is
/// off; the sequence counter advances only on emission so off-mode runs
/// leave no trace at all).
fn coord_rec(
    journal: &mut JournalRing,
    seq: &mut u64,
    at: SimTime,
    kind: JournalKind,
    a: u64,
    b: u64,
    c: u64,
) {
    if journal.mode() == TelemetryMode::Off {
        return;
    }
    let tag = JournalTag {
        at_ns: at.0,
        src: COORD_SRC,
        seq: *seq,
    };
    *seq += 1;
    journal.record(tag, kind, a, b, c);
}

/// Minimal union-find over device indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Assignment of every device to a shard, plus the lookahead structure
/// derived from the cut. Produced by [`PartitionPlan::partition`].
pub struct PartitionPlan {
    pub(crate) shard_of: Arc<Vec<u32>>,
    nshards: usize,
    epoch: SimDuration,
    /// `nshards × nshards` row-major matrix of the minimum link latency
    /// between each ordered shard pair; `u64::MAX` where no link crosses
    /// that pair. Links are bidirectional, so the matrix is symmetric.
    min_lat: Vec<u64>,
}

impl PartitionPlan {
    /// Partitions `net` into at most `want` shards.
    ///
    /// Islands (see module docs) are kept intact and balanced across
    /// shards longest-processing-time-first; the actual shard count is
    /// `min(want, number of islands)`, so a topology whose devices are all
    /// glued together falls back to a single shard.
    pub fn partition(net: &Network, want: usize) -> PartitionPlan {
        let n = net.device_count();
        let mut uf = UnionFind::new(n);
        let links = net.links();
        for &(a, pa, b, _) in &links {
            let p = net.link_params(a, pa).expect("listed link has params");
            if p.latency == SimDuration::ZERO {
                uf.union(a.0, b.0);
            }
        }
        let mut vm_anchor: HashMap<u32, usize> = HashMap::new();
        for i in 0..n {
            if let CpuLocation::Vm(vm) = net.device_location(DeviceId(i)) {
                match vm_anchor.get(&vm) {
                    Some(&anchor) => uf.union(anchor, i),
                    None => {
                        vm_anchor.insert(vm, i);
                    }
                }
            }
        }
        for &(a, b) in net.affinity() {
            uf.union(a.0, b.0);
        }

        // Islands in order of their smallest device id (deterministic).
        let mut island_of_root: HashMap<usize, usize> = HashMap::new();
        let mut islands: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let r = uf.find(i);
            let idx = *island_of_root.entry(r).or_insert_with(|| {
                islands.push(Vec::new());
                islands.len() - 1
            });
            islands[idx].push(i);
        }

        let nshards = want.max(1).min(islands.len().max(1));
        // LPT greedy balance: biggest islands first (ties: lowest device
        // id), each to the least-loaded shard (ties: lowest shard).
        let mut order: Vec<usize> = (0..islands.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(islands[i].len()), islands[i][0]));
        let mut load = vec![0usize; nshards];
        let mut shard_of = vec![0u32; n];
        for &i in &order {
            let s = (0..nshards).min_by_key(|&s| (load[s], s)).unwrap();
            load[s] += islands[i].len();
            for &d in &islands[i] {
                shard_of[d] = s as u32;
            }
        }

        // Per-pair minimum latency over links whose endpoints landed in
        // different shards; the scalar epoch (minimum over the whole cut)
        // is kept as the speculation-window unit and for compatibility.
        let mut min_lat = vec![u64::MAX; nshards * nshards];
        let mut epoch: Option<SimDuration> = None;
        if nshards > 1 {
            for &(a, pa, b, _) in &links {
                let (sa, sb) = (shard_of[a.0] as usize, shard_of[b.0] as usize);
                if sa != sb {
                    let lat = net.link_params(a, pa).unwrap().latency;
                    epoch = Some(epoch.map_or(lat, |e| e.min(lat)));
                    let cell = &mut min_lat[sa * nshards + sb];
                    *cell = (*cell).min(lat.0);
                    let cell = &mut min_lat[sb * nshards + sa];
                    *cell = (*cell).min(lat.0);
                }
            }
        }
        let epoch = match epoch {
            Some(e) => {
                debug_assert!(
                    e > SimDuration::ZERO,
                    "zero-latency links are glued, the cut cannot cross one"
                );
                e
            }
            None => {
                if nshards > 1 {
                    SimDuration(u64::MAX)
                } else {
                    SimDuration::ZERO
                }
            }
        };
        PartitionPlan {
            shard_of: Arc::new(shard_of),
            nshards,
            epoch,
            min_lat,
        }
    }

    /// Number of shards in the plan (≥ 1).
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The minimum latency over the whole cut (zero for single-shard
    /// plans, `u64::MAX` ns when no link crosses the cut). The adaptive
    /// coordinator bounds each shard by the per-pair matrix instead, but
    /// this scalar remains the unit of the speculation window.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// The shard owning `dev`.
    pub fn shard_of(&self, dev: DeviceId) -> usize {
        self.shard_of[dev.0] as usize
    }

    /// Minimum latency of any link from shard `s` to shard `d`
    /// (`u64::MAX` when no link connects them).
    pub(crate) fn min_lat(&self, s: usize, d: usize) -> u64 {
        self.min_lat[s * self.nshards + d]
    }

    /// Transitively closes the latency matrix (all-pairs shortest paths
    /// over the shard graph). Required whenever a flow table is installed:
    /// a synthesized fast-path delivery (or its advert) crosses directly
    /// from the origin's shard to the destination's, skipping the
    /// intermediate shards' event loops, so *any* connected ordered pair
    /// may exchange events. The closure stays a sound lookahead for both
    /// traffic kinds — a packet hop uses a direct link (≥ the pair's
    /// closed distance) and a synthesized delivery arrives after an
    /// *observed* end-to-end latency, which is at least the link-latency
    /// shortest path between the two shards.
    pub(crate) fn relax(&mut self) {
        let n = self.nshards;
        for k in 0..n {
            for s in 0..n {
                let via = self.min_lat[s * n + k];
                if via == u64::MAX {
                    continue;
                }
                for d in 0..n {
                    let rest = self.min_lat[k * n + d];
                    if rest == u64::MAX {
                        continue;
                    }
                    let cand = via.saturating_add(rest);
                    let cell = &mut self.min_lat[s * n + d];
                    if cand < *cell {
                        *cell = cand;
                    }
                }
            }
        }
        // Cycles can close the diagonal; self-pairs never exchange events.
        for s in 0..n {
            self.min_lat[s * n + s] = u64::MAX;
        }
    }
}

/// Synchronization statistics of a sharded run: how many coordinator
/// rounds it took and how speculation fared. Purely observational — the
/// simulation outcome never depends on them — but fully deterministic for
/// a given topology, seed, shard count and mode, because every dispatch
/// and disposition decision is a function of round-tagged state only.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncStats {
    /// Coordinator rounds executed.
    pub rounds: u64,
    /// Speculations whose state was adopted wholesale.
    pub spec_commits: u64,
    /// Speculations discarded because a straggler arrived (or to break a
    /// cross-shard commit deadlock).
    pub spec_rollbacks: u64,
    /// Shards that declined speculation permanently because a device
    /// could not be forked ([`Device::fork`](crate::device::Device::fork)
    /// returned `None`); they degrade to conservative synchronization.
    pub spec_denied: u64,
    /// Peak occupancy observed across every cross-shard ring (gathered at
    /// [`ShardedNetwork::into_report`]; 0 before then and for single-shard
    /// runs).
    pub ring_high_water: u64,
    /// Cumulative full-ring push stalls across every cross-shard ring
    /// (backpressure the data plane felt; gathered at `into_report`).
    pub ring_stalls: u64,
}

/// Everything a finished (sharded or single-shard) run yields: the merged
/// sample store, CPU account, trace, and engine counters. For any shard
/// count the contents are bit-identical to a sequential [`Network`] run of
/// the same topology, workload and seed.
pub struct RunReport {
    /// Merged sample store. Per-name samples and counters match the
    /// sequential run exactly; only the (unobservable) name enumeration
    /// order may differ.
    pub store: SampleStore,
    /// Merged CPU account (integer nanoseconds; exact).
    pub cpu: CpuAccount,
    /// Merged event trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEntry>,
    /// Trace entries dropped at [`TRACE_CAP`], summed over shard-local
    /// drops and merge re-cap skips — exactly the sequential drop count.
    pub trace_dropped: u64,
    /// Flight-recorder spans retained under the span cap, in exact
    /// sequential emission order (empty unless the recorder ran in
    /// [`TraceMode::Full`]).
    pub spans: Vec<SpanRecord>,
    /// Spans emitted in total (kept + dropped at the span cap).
    pub spans_emitted: u64,
    /// Spans dropped at the span cap (shard-local drops plus merge
    /// re-cap skips — exactly the sequential drop count).
    pub spans_dropped: u64,
    /// Per-stage latency/CPU aggregates. Stage ids resolve through
    /// [`store`](RunReport::store) (same interner).
    pub stages: StageTable,
    /// The recorder mode the run was configured with.
    pub trace_mode: TraceMode,
    /// Name of every device, indexed by device id (exporters resolve
    /// span `dev` fields through this).
    pub device_names: Vec<String>,
    /// Total events processed across all shards.
    pub events_processed: u64,
    /// Total frames dropped on unlinked ports across all shards.
    pub dropped_no_link: u64,
    /// Final simulated time.
    pub now: SimTime,
    /// Coordinator round and speculation statistics (all zero for
    /// single-shard runs, which bypass the coordinator).
    pub sync: SyncStats,
    /// Merged control-plane journal (deterministic lane), in exact
    /// sequential emission order — bit-identical for any shard count.
    /// Empty unless telemetry ran in [`TelemetryMode::Full`].
    pub journal: Vec<JournalRecord>,
    /// Journal records emitted but dropped at the cap (never silent).
    pub journal_dropped: u64,
    /// Per-kind journal emission counts (kept + dropped), indexed by
    /// `JournalKind as usize`. Populated in `Counters` and `Full` modes.
    pub journal_counts: [u64; JOURNAL_KINDS],
    /// Coordinator-lane journal records (rounds, commits, rollbacks, ring
    /// stats). Shard-count-dependent by nature — excluded from the
    /// determinism guarantee that covers [`journal`](RunReport::journal).
    pub coord_journal: Vec<JournalRecord>,
    /// The telemetry mode the run was configured with.
    pub telemetry_mode: TelemetryMode,
}

/// A round-tagged batch of cross-shard frames traveling through an SPSC
/// ring. The tag makes visibility deterministic: a receiver executing
/// round `r` consumes exactly the batches tagged `< r`, regardless of how
/// threads were scheduled.
struct RingBatch {
    round: u64,
    events: Vec<RemoteEvent>,
}

/// What the coordinator decided about a shard's pending speculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// No verdict yet — keep holding the speculative state.
    Hold,
    /// Proven safe: adopt the speculative state, release held frames.
    Commit,
    /// A straggler exists (or liveness demands it): restore the snapshot.
    Rollback,
}

/// One dispatched coordinator round for one shard.
struct RoundCmd {
    round: u64,
    /// Process every committed event strictly below this bound.
    bound: SimTime,
    /// Optimistic mode: may speculate up to (strictly below) this target
    /// after exhausting `bound`. Equal to `bound` in conservative mode.
    target: SimTime,
    disposition: Disposition,
}

enum Cmd {
    Round(RoundCmd),
    /// Epoch-tagged shutdown: sent only after the coordinator has
    /// collected every reply of `round`, so no worker can be mid-push
    /// into a ring when its peer exits. Replaces the implicit
    /// close-by-dropping-the-sender termination, which raced the final
    /// exchange (a shard could park on a drained channel while its last
    /// outbox was still undelivered).
    Terminate {
        #[cfg_attr(not(debug_assertions), allow(dead_code))]
        round: u64,
    },
}

/// What the coordinator knows about a shard's pending speculation.
#[derive(Debug, Clone)]
struct SpecInfo {
    /// Speculated clock: the time of the last speculatively processed
    /// event. Any in-flight frame at or below it is a straggler.
    now: SimTime,
    /// Minimum over the post-speculation heap (folded with arrivals
    /// drained while the speculation was pending): if committed, the
    /// shard's *future* emissions happen at or after this.
    floor: Option<SimTime>,
    /// Per-destination minimum arrival time of the held frames — the
    /// concrete effect the speculation would have on each peer.
    held_min: Vec<Option<SimTime>>,
}

struct Reply {
    shard: usize,
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    round: u64,
    /// Committed progress floor: heap minimum, or for a pending
    /// speculation the snapshot's heap minimum folded with drained
    /// arrivals (speculative progress is never reported as progress).
    floor: Option<SimTime>,
    /// Per-destination minimum arrival time of batches pushed this round.
    sent_min: Vec<Option<SimTime>>,
    spec: Option<SpecInfo>,
    spec_capable: bool,
    committed: bool,
    rolled_back: bool,
}

/// A shard's in-progress speculation, held worker-side.
struct Spec {
    snapshot: EngineSnapshot,
    /// Time of the last speculatively processed event.
    now: SimTime,
    /// Committed floor to report while pending: the snapshot's heap
    /// minimum, folded with arrivals drained since.
    committed_floor: Option<SimTime>,
    /// Post-speculation heap minimum, folded with drained arrivals.
    heap_floor: Option<SimTime>,
    /// Clones of every arrival drained while pending — re-queued on
    /// rollback (the originals went into the speculative heap, which the
    /// snapshot restore discards).
    drained: Vec<RemoteEvent>,
    /// Speculative cross-shard output, held per destination until commit.
    held: Vec<Vec<RemoteEvent>>,
    /// Per-destination minimum arrival time of `held`.
    held_min: Vec<Option<SimTime>>,
}

/// Ring endpoints of one shard: `incoming[s]` receives from shard `s`,
/// `outgoing[d]` sends to shard `d`; `None` where no link crosses the
/// pair (no traffic is possible, so no ring exists).
struct WorkerChans {
    incoming: Vec<Option<Consumer<RingBatch>>>,
    outgoing: Vec<Option<Producer<RingBatch>>>,
}

fn omin(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Flushes the shard's committed outbox into per-destination round-tagged
/// batches, folding each batch's minimum arrival time into `sent_min`.
fn flush_outbox(
    net: &mut Network,
    chans: &mut WorkerChans,
    shard_of: &[u32],
    round: u64,
    sent_min: &mut [Option<SimTime>],
) {
    let out = net.take_outbox();
    if out.is_empty() {
        return;
    }
    let n = chans.outgoing.len();
    let mut batches: Vec<Vec<RemoteEvent>> = (0..n).map(|_| Vec::new()).collect();
    for ev in out {
        batches[shard_of[ev.dev.0] as usize].push(ev);
    }
    for (d, events) in batches.into_iter().enumerate() {
        if events.is_empty() {
            continue;
        }
        let min = events.iter().map(|e| e.tag.at).min();
        sent_min[d] = omin(sent_min[d], min);
        chans.outgoing[d]
            .as_mut()
            .expect("cross-shard frame on a pair without a link")
            .push(RingBatch { round, events });
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    shard: usize,
    net: &mut Network,
    chans: &mut WorkerChans,
    shard_of: &[u32],
    optimistic: bool,
    mut spec_capable: bool,
    rx: Receiver<Cmd>,
    tx: Sender<Reply>,
) {
    let mut spec: Option<Spec> = None;
    let mut last_round = 0u64;
    while let Ok(cmd) = rx.recv() {
        let cmd = match cmd {
            Cmd::Round(c) => c,
            Cmd::Terminate { round } => {
                debug_assert!(round >= last_round, "terminated from a stale round");
                debug_assert!(spec.is_none(), "terminated with unresolved speculation");
                break;
            }
        };
        debug_assert!(cmd.round > last_round, "rounds are strictly monotonic");
        last_round = cmd.round;
        let reply = round_step(
            shard,
            net,
            chans,
            shard_of,
            optimistic,
            &mut spec_capable,
            &mut spec,
            &cmd,
        );
        if tx.send(reply).is_err() {
            break;
        }
    }
}

/// One shard's work for one dispatched round: apply the verdict, drain the
/// rings, run the committed window, optionally speculate. Shared verbatim by
/// the threaded workers and the single-core inline backend, so both execute
/// the identical protocol.
#[allow(clippy::too_many_arguments)]
fn round_step(
    shard: usize,
    net: &mut Network,
    chans: &mut WorkerChans,
    shard_of: &[u32],
    optimistic: bool,
    spec_capable: &mut bool,
    spec: &mut Option<Spec>,
    cmd: &RoundCmd,
) -> Reply {
    let nshards = chans.incoming.len();
    let mut sent_min: Vec<Option<SimTime>> = vec![None; nshards];
    let mut committed = false;
    let mut rolled_back = false;
    match cmd.disposition {
        Disposition::Commit => {
            // Adopt the speculative state: drop the snapshot, forget
            // the drained log, release the held output.
            let sp = spec.take().expect("commit without a pending speculation");
            for (d, events) in sp.held.into_iter().enumerate() {
                if events.is_empty() {
                    continue;
                }
                sent_min[d] = sp.held_min[d];
                chans.outgoing[d]
                    .as_mut()
                    .expect("held frames on a pair without a link")
                    .push(RingBatch {
                        round: cmd.round,
                        events,
                    });
            }
            committed = true;
        }
        Disposition::Rollback => {
            let sp = spec.take().expect("rollback without a pending speculation");
            net.restore(sp.snapshot);
            for ev in sp.drained {
                net.push_remote(ev);
            }
            rolled_back = true;
        }
        Disposition::Hold => {}
    }
    // Drain every batch published before this round. The round tag —
    // not thread scheduling — decides what is visible, so drains (and
    // with them every commit/rollback decision downstream) are
    // deterministic.
    let mut arrivals: Vec<RemoteEvent> = Vec::new();
    for cons in chans.incoming.iter_mut().flatten() {
        while cons.peek().is_some_and(|b| b.round < cmd.round) {
            let batch = cons.try_pop().expect("peeked batch pops");
            arrivals.extend(batch.events);
        }
    }
    if let Some(sp) = spec.as_mut() {
        // Still speculating, no verdict: arrivals must lie in the
        // speculation's future (the coordinator rolls back first
        // otherwise). They join the speculative heap and are logged
        // for re-queueing should the speculation fail.
        for ev in arrivals {
            debug_assert!(
                ev.tag.at > sp.now,
                "straggler reached a still-pending speculation"
            );
            sp.committed_floor = omin(sp.committed_floor, Some(ev.tag.at));
            sp.heap_floor = omin(sp.heap_floor, Some(ev.tag.at));
            sp.drained.push(ev.clone());
            net.push_remote(ev);
        }
    } else {
        for ev in arrivals {
            net.push_remote(ev);
        }
        net.run_window(cmd.bound);
        flush_outbox(net, chans, shard_of, cmd.round, &mut sent_min);
        if optimistic
            && *spec_capable
            && cmd.target > cmd.bound
            && net.peek_next_at().is_some_and(|t| t < cmd.target)
        {
            match net.snapshot() {
                Some(snapshot) => {
                    net.run_window(cmd.target);
                    let mut held: Vec<Vec<RemoteEvent>> =
                        (0..nshards).map(|_| Vec::new()).collect();
                    for ev in net.take_outbox() {
                        held[shard_of[ev.dev.0] as usize].push(ev);
                    }
                    let held_min = held
                        .iter()
                        .map(|v| v.iter().map(|e| e.tag.at).min())
                        .collect();
                    *spec = Some(Spec {
                        now: net.now(),
                        committed_floor: snapshot.next_at,
                        heap_floor: net.peek_next_at(),
                        snapshot,
                        drained: Vec::new(),
                        held,
                        held_min,
                    });
                }
                None => *spec_capable = false,
            }
        }
    }
    let floor = match spec.as_ref() {
        Some(sp) => sp.committed_floor,
        None => net.peek_next_at(),
    };
    Reply {
        shard,
        round: cmd.round,
        floor,
        sent_min,
        spec: spec.as_ref().map(|sp| SpecInfo {
            now: sp.now,
            floor: sp.heap_floor,
            held_min: sp.held_min.clone(),
        }),
        spec_capable: *spec_capable,
        committed,
        rolled_back,
    }
}

/// One round's coordinator decisions, shared by the threaded and the
/// single-core inline backend so both dispatch the identical protocol.
struct RoundPlan {
    bound: Vec<SimTime>,
    target: Vec<SimTime>,
    disp: Vec<Disposition>,
    dispatch: Vec<bool>,
    optimistic: bool,
}

impl RoundPlan {
    fn cmd_for(&self, d: usize, round: u64) -> RoundCmd {
        RoundCmd {
            round,
            bound: self.bound[d],
            target: if self.optimistic {
                self.target[d]
            } else {
                self.bound[d]
            },
            disposition: self.disp[d],
        }
    }
}

/// Computes one coordinator round: adaptive per-shard bounds, speculation
/// dispositions, and the dispatch set. Returns `None` when no committed
/// work remains below the deadline and no speculation is pending — the
/// run-loop termination condition.
// Matrix-style s/d double-indexing is the clearest shape for the
// relaxations; iterator rewrites obscure the symmetry.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn plan_round(
    plan: &PartitionPlan,
    deadline: SimTime,
    deadline_cap: SimTime,
    spec_window: u64,
    optimistic: bool,
    floors: &[Option<SimTime>],
    pending_in: &[Option<SimTime>],
    spec_capable: &[bool],
    spec: &[Option<SpecInfo>],
) -> Option<RoundPlan> {
    let nshards = floors.len();
    let eff: Vec<Option<SimTime>> = (0..nshards)
        .map(|s| omin(floors[s], pending_in[s]))
        .collect();
    let work_left = eff.iter().flatten().any(|&t| t < deadline);
    let spec_pending = spec.iter().any(Option::is_some);
    if !work_left && !spec_pending {
        return None;
    }
    // Emission promises: the earliest sim time at which each shard could
    // still emit a cross-shard frame. A shard's own floor/pending is not
    // enough — an idle relay re-emits whatever reaches it, and a shard's
    // *own* output can come back around a cycle — so the promises must be
    // relaxed transitively over the shard graph (Bellman–Ford; cross-shard
    // latencies are positive, so this converges).
    let mut promise = eff.clone();
    loop {
        let mut changed = false;
        for s in 0..nshards {
            let Some(p) = promise[s] else { continue };
            for d in 0..nshards {
                if s == d {
                    continue;
                }
                let lat = plan.min_lat(s, d);
                if lat == u64::MAX {
                    continue;
                }
                let cand = SimTime(p.0.saturating_add(lat));
                if promise[d].is_none_or(|cur| cand < cur) {
                    promise[d] = Some(cand);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Adaptive bound: the earliest time a frame from any peer could still
    // arrive at `d`, given the relaxed promises and the per-pair minimum
    // latencies.
    let bound: Vec<SimTime> = (0..nshards)
        .map(|d| {
            let mut b = deadline_cap.0;
            for s in 0..nshards {
                if s == d {
                    continue;
                }
                let lat = plan.min_lat(s, d);
                if lat == u64::MAX {
                    continue;
                }
                if let Some(f) = promise[s] {
                    b = b.min(f.0.saturating_add(lat));
                }
            }
            SimTime(b)
        })
        .collect();
    let target: Vec<SimTime> = (0..nshards)
        .map(|d| SimTime(bound[d].0.saturating_add(spec_window).min(deadline_cap.0)))
        .collect();
    // Dispositions. (a) A pending arrival at or below the speculated
    // clock is a straggler: roll back.
    let mut disp = vec![Disposition::Hold; nshards];
    for d in 0..nshards {
        if let Some(si) = &spec[d] {
            if pending_in[d].is_some_and(|p| p <= si.now) {
                disp[d] = Disposition::Rollback;
            }
        }
    }
    // (b) Greatest-fixpoint commit set: start from every still-held
    // speculation and discard any whose speculated clock is not strictly
    // below the earliest possible arrival from each peer. A peer still in
    // the set contributes its *concrete* held-frame minimum (plus its
    // post-speculation floor for frames it has not emitted yet); a
    // discarded or conservative peer contributes its committed promise.
    // Arrivals propagate transitively (the same relay/cycle argument as
    // for the bounds), so each candidate set is checked against promises
    // relaxed under the hypothesis that the whole set commits. The
    // fixpoint is the largest mutually consistent commit set.
    let mut in_set: Vec<bool> = (0..nshards)
        .map(|d| spec[d].is_some() && disp[d] == Disposition::Hold)
        .collect();
    loop {
        // Hypothetical promises: in-set shards start from their
        // post-speculation heap floor, everyone else from their committed
        // eff; edges out of in-set shards also carry the held frames'
        // concrete minima.
        let mut p: Vec<Option<SimTime>> = (0..nshards)
            .map(|s| {
                if in_set[s] {
                    omin(spec[s].as_ref().unwrap().floor, pending_in[s])
                } else {
                    eff[s]
                }
            })
            .collect();
        let edge = |src: usize, dst: usize, from: Option<SimTime>| {
            let lat = plan.min_lat(src, dst);
            if lat == u64::MAX {
                return None;
            }
            let moving = from.map(|f| SimTime(f.0.saturating_add(lat)));
            if in_set[src] {
                omin(spec[src].as_ref().unwrap().held_min[dst], moving)
            } else {
                moving
            }
        };
        loop {
            let mut changed = false;
            for s in 0..nshards {
                for d in 0..nshards {
                    if s == d {
                        continue;
                    }
                    let Some(cand) = edge(s, d, p[s]) else {
                        continue;
                    };
                    if p[d].is_none_or(|cur| cand < cur) {
                        p[d] = Some(cand);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let safe_of: Vec<SimTime> = (0..nshards)
            .map(|d| {
                let mut safe = deadline_cap;
                for s in 0..nshards {
                    if s == d {
                        continue;
                    }
                    if let Some(c) = edge(s, d, p[s]) {
                        safe = safe.min(c);
                    }
                }
                safe
            })
            .collect();
        let mut shrunk = false;
        for d in 0..nshards {
            if !in_set[d] {
                continue;
            }
            if safe_of[d] <= spec[d].as_ref().unwrap().now {
                in_set[d] = false;
                shrunk = true;
            }
        }
        if !shrunk {
            break;
        }
    }
    for d in 0..nshards {
        if in_set[d] {
            disp[d] = Disposition::Commit;
        }
    }
    // Dispatch only shards with something to do: a verdict to apply,
    // arrivals to drain, committed events below their bound, or
    // (optimistic) events within speculation reach.
    let mut dispatch = vec![false; nshards];
    for d in 0..nshards {
        let has_spec = spec[d].is_some();
        dispatch[d] = disp[d] != Disposition::Hold
            || pending_in[d].is_some()
            || (!has_spec && floors[d].is_some_and(|f| f < bound[d]))
            || (optimistic
                && !has_spec
                && spec_capable[d]
                && floors[d].is_some_and(|f| f < target[d]));
    }
    // Liveness breaker: speculations are pending but nothing can run and
    // nothing could commit — discard them all (always sound) so
    // conservative progress resumes.
    if !dispatch.iter().any(|&b| b) {
        debug_assert!(spec_pending, "idle round without pending speculation");
        for d in 0..nshards {
            if spec[d].is_some() {
                disp[d] = Disposition::Rollback;
                dispatch[d] = true;
            }
        }
    }
    Some(RoundPlan {
        bound,
        target,
        disp,
        dispatch,
        optimistic,
    })
}

/// Folds one shard's round reply into the coordinator state. Folding is
/// commutative (indexed writes, min-folds, counter bumps), so reply
/// arrival order — thread scheduling in the threaded backend, shard index
/// order inline — cannot affect the outcome.
#[allow(clippy::too_many_arguments)]
fn fold_reply(
    r: Reply,
    floors: &mut [Option<SimTime>],
    spec_capable: &mut [bool],
    stats: &mut SyncStats,
    spec: &mut [Option<SpecInfo>],
    new_pending: &mut [Option<SimTime>],
    journal: &mut JournalRing,
    jseq: &mut u64,
    at: SimTime,
) {
    floors[r.shard] = r.floor;
    if r.committed {
        stats.spec_commits += 1;
        coord_rec(
            journal,
            jseq,
            at,
            JournalKind::CoordCommit,
            r.round,
            r.shard as u64,
            0,
        );
    }
    if r.rolled_back {
        stats.spec_rollbacks += 1;
        coord_rec(
            journal,
            jseq,
            at,
            JournalKind::CoordRollback,
            r.round,
            r.shard as u64,
            0,
        );
    }
    if r.spec.is_some() && !r.committed && !r.rolled_back {
        coord_rec(
            journal,
            jseq,
            at,
            JournalKind::CoordHold,
            r.round,
            r.shard as u64,
            0,
        );
    }
    if !r.spec_capable && spec_capable[r.shard] {
        spec_capable[r.shard] = false;
        stats.spec_denied += 1;
    }
    spec[r.shard] = r.spec;
    for (np, sent) in new_pending.iter_mut().zip(&r.sent_min) {
        *np = omin(*np, *sent);
    }
}

/// A dispatched shard drained everything older than this round, so only
/// this round's sends remain; an idle shard accumulates.
fn apply_pending(
    pending_in: &mut [Option<SimTime>],
    new_pending: &[Option<SimTime>],
    dispatch: &[bool],
) {
    for d in 0..pending_in.len() {
        pending_in[d] = if dispatch[d] {
            new_pending[d]
        } else {
            omin(pending_in[d], new_pending[d])
        };
    }
}

/// A [`Network`] split across shards, each running its own slab/heap event
/// loop on its own thread, synchronized by adaptive conservative bounds
/// with optional speculation.
///
/// Build a topology on a plain [`Network`] (injecting initial frames and
/// timers as usual), then hand it to [`ShardedNetwork::new`] *before
/// running any event*. `run_until`/`run_to_idle` mirror the sequential
/// API; [`into_report`](ShardedNetwork::into_report) merges the shards
/// back into one [`RunReport`].
pub struct ShardedNetwork {
    nets: Vec<Network>,
    plan: PartitionPlan,
    chans: Vec<WorkerChans>,
    /// Committed progress floor per shard, persisted across run calls.
    floors: Vec<Option<SimTime>>,
    /// Minimum arrival time of undrained in-flight frames per receiving
    /// shard, persisted across run calls (the frames themselves persist
    /// in the rings).
    pending_in: Vec<Option<SimTime>>,
    /// False once a shard reported an unforkable device; it stays
    /// conservative for the rest of the run.
    spec_capable: Vec<bool>,
    /// Strictly monotonic round counter, persisted across run calls so
    /// ring batches left over at a deadline stay older than every future
    /// round.
    round: u64,
    optimistic: bool,
    /// Backend selection: `Some` pins inline/threaded; `None` defers to
    /// `SIMNET_INLINE`, then the core-count heuristic.
    inline: Option<bool>,
    stats: SyncStats,
    now: SimTime,
    /// Coordinator-lane journal (rounds, commits, rollbacks, ring stats);
    /// tagged [`COORD_SRC`], shard-count-dependent, kept out of the
    /// deterministic lane.
    coord_journal: JournalRing,
    /// Sequence counter for coordinator-lane record tags.
    coord_jseq: u64,
    /// The master network's pre-split journal (harness records emitted
    /// before sharding); seeds the merged ring in `into_report`. Unused
    /// (empty) for single-shard runs, whose network keeps its own ring.
    journal_seed: JournalRing,
}

impl ShardedNetwork {
    /// Shards `net` into at most `want` shards (see
    /// [`PartitionPlan::partition`] for the actual count).
    ///
    /// # Panics
    /// Panics if `net` has already processed events — sharding must happen
    /// between topology construction and the first run.
    pub fn new(mut net: Network, want: usize) -> ShardedNetwork {
        let now = net.now();
        let telem = net.telemetry_config();
        let mut plan = PartitionPlan::partition(&net, want);
        if net.fidelity() != Fidelity::Packet {
            // Flow fast-path traffic can cross directly between any two
            // connected shards (see `PartitionPlan::relax`).
            plan.relax();
        }
        let nshards = plan.nshards();
        let mut journal_seed = JournalRing::new(telem);
        let nets = if nshards == 1 {
            // Single shard: keep the network whole and run it directly —
            // trivially identical to the sequential engine.
            vec![net]
        } else {
            // The master's pre-split journal (harness records emitted
            // during topology construction) seeds the merged ring —
            // its records precede every event, like pre-split samples.
            journal_seed = net.take_journal();
            net.split(&plan.shard_of, nshards)
        };
        // One ring per directed pair that can exchange events: pairs
        // sharing a link, plus — after the flow-fidelity closure — any
        // transitively connected pair. Disconnected pairs never ring.
        let mut incoming: Vec<Vec<Option<Consumer<RingBatch>>>> = (0..nshards)
            .map(|_| (0..nshards).map(|_| None).collect())
            .collect();
        let mut outgoing: Vec<Vec<Option<Producer<RingBatch>>>> = (0..nshards)
            .map(|_| (0..nshards).map(|_| None).collect())
            .collect();
        if nshards > 1 {
            for s in 0..nshards {
                for d in 0..nshards {
                    if s != d && plan.min_lat(s, d) != u64::MAX {
                        let (p, c) = spsc::channel(RING_CAP);
                        outgoing[s][d] = Some(p);
                        incoming[d][s] = Some(c);
                    }
                }
            }
        }
        let chans = incoming
            .into_iter()
            .zip(outgoing)
            .map(|(incoming, outgoing)| WorkerChans { incoming, outgoing })
            .collect();
        let floors = nets.iter().map(Network::peek_next_at).collect();
        ShardedNetwork {
            nets,
            plan,
            chans,
            floors,
            pending_in: vec![None; nshards],
            spec_capable: vec![true; nshards],
            round: 0,
            optimistic: false,
            inline: None,
            stats: SyncStats::default(),
            now,
            coord_journal: JournalRing::new(telem),
            coord_jseq: 0,
            journal_seed,
        }
    }

    /// Shards `net` according to the `SIMNET_SHARDS` environment variable
    /// (default 1) and selects the synchronization mode from
    /// `SIMNET_OPTIMISTIC`.
    #[deprecated(note = "use SimConfig::from_env().build(net)")]
    pub fn from_env(net: Network) -> ShardedNetwork {
        crate::config::SimConfig::from_env().build(net)
    }

    /// The partition in effect.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Actual number of shards (≥ 1, at most the requested count).
    pub fn nshards(&self) -> usize {
        self.nets.len()
    }

    /// Current simulated time (the deadline of the last `run_until`, or
    /// the last processed event time after `run_to_idle`).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Selects optimistic (time-warp-lite) or conservative
    /// synchronization for subsequent run calls. Either setting yields
    /// bit-identical results; optimistic mode trades snapshot work for
    /// progress past the conservative bound.
    pub fn set_optimistic(&mut self, on: bool) {
        self.optimistic = on;
    }

    /// Whether optimistic synchronization is currently selected.
    pub fn optimistic(&self) -> bool {
        self.optimistic
    }

    /// Coordinator round and speculation statistics accumulated so far.
    pub fn sync_stats(&self) -> SyncStats {
        self.stats
    }

    /// Enables (or disables) event tracing on every shard.
    pub fn set_tracing(&mut self, on: bool) {
        for net in &mut self.nets {
            net.set_tracing(on);
        }
    }

    /// Configures the telemetry plane on every shard (plus the seed and
    /// coordinator rings). Prefer configuring the master [`Network`]
    /// before sharding (e.g. through `SimConfig`); this exists for parity
    /// with [`set_tracing`](ShardedNetwork::set_tracing).
    pub fn set_telemetry_config(&mut self, cfg: TelemetryConfig) {
        for net in &mut self.nets {
            net.set_telemetry_config(cfg);
        }
        self.journal_seed.reconfigure(cfg);
        self.coord_journal.reconfigure(cfg);
    }

    /// The active telemetry configuration.
    pub fn telemetry_config(&self) -> TelemetryConfig {
        self.nets[0].telemetry_config()
    }

    /// Pins the coordinator backend: `Some(true)` inline (coordinator
    /// thread runs the shards), `Some(false)` threaded, `None` (default)
    /// defers to `SIMNET_INLINE`, then the core-count heuristic.
    pub fn set_inline(&mut self, inline: Option<bool>) {
        self.inline = inline;
    }

    /// Runs the sharded network until `stop` (see [`StopCondition`]).
    ///
    /// `Until(t)` processes every event with `at < t` — events at exactly
    /// `t` are **excluded**, identically to the sequential
    /// [`Network::run`], so a deadline slices a scenario the same way at
    /// every shard count.
    pub fn run(&mut self, stop: StopCondition) {
        match stop {
            StopCondition::Until(deadline) => {
                self.run_epochs(deadline);
                if self.now < deadline {
                    self.now = deadline;
                }
            }
            StopCondition::For(d) => {
                let deadline = self.now + d;
                self.run(StopCondition::Until(deadline));
            }
            StopCondition::Idle => {
                self.run_epochs(SimTime(u64::MAX));
                let last = self.nets.iter().map(|n| n.now()).max().unwrap_or(self.now);
                if last > self.now {
                    self.now = last;
                }
            }
        }
    }

    /// Runs until the clock reaches `deadline`; events at exactly
    /// `deadline` are excluded.
    #[deprecated(note = "use run(StopCondition::Until(deadline))")]
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run(StopCondition::Until(deadline));
    }

    /// Runs for `d` of simulated time from now.
    #[deprecated(note = "use run(StopCondition::For(d))")]
    pub fn run_for(&mut self, d: SimDuration) {
        self.run(StopCondition::For(d));
    }

    /// Drains every remaining event.
    #[deprecated(note = "use run(StopCondition::Idle)")]
    pub fn run_to_idle(&mut self) {
        self.run(StopCondition::Idle);
    }

    /// The round coordinator (see module docs): compute per-shard
    /// adaptive bounds from the committed floors, resolve speculation
    /// dispositions, dispatch only the shards with something to do, and
    /// fold replies back into the floors.
    fn run_epochs(&mut self, deadline: SimTime) {
        if self.nets.len() == 1 {
            let net = &mut self.nets[0];
            if deadline == SimTime(u64::MAX) {
                net.run(StopCondition::Idle);
            } else {
                net.run(StopCondition::Until(deadline));
            }
            return;
        }
        // On a single hardware thread, worker threads buy no parallelism
        // and every round pays futex wakeups + context switches both ways.
        // The inline backend runs the identical protocol (same plan_round,
        // same round_step, same rings) on the coordinator thread instead.
        // `set_inline` (usually via `SimConfig`) pins a backend; otherwise
        // `SIMNET_INLINE=1`/`=0` overrides the core-count heuristic so
        // either backend can be selected for testing.
        let inline = self
            .inline
            .or_else(crate::config::inline_from_env)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()) == 1);
        if inline {
            self.run_epochs_inline(deadline);
        } else {
            self.run_epochs_threaded(deadline);
        }
    }

    fn run_epochs_threaded(&mut self, deadline: SimTime) {
        // The cap IS the deadline: shard windows are exclusive (`at <
        // bound`), so events at exactly the deadline stay queued — the
        // same boundary the sequential engine's `run` applies.
        let deadline_cap = deadline;
        let nshards = self.nets.len();
        let spec_window = self.plan.epoch.0.saturating_mul(SPEC_WINDOW_EPOCHS);
        let shard_of = Arc::clone(&self.plan.shard_of);
        let optimistic = self.optimistic;
        let plan = &self.plan;
        let floors = &mut self.floors;
        let pending_in = &mut self.pending_in;
        let spec_capable = &mut self.spec_capable;
        let round = &mut self.round;
        let stats = &mut self.stats;
        let coord_journal = &mut self.coord_journal;
        let coord_jseq = &mut self.coord_jseq;
        std::thread::scope(|scope| {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel::<Reply>();
            let mut cmd_txs = Vec::with_capacity(nshards);
            for (i, (net, ch)) in self.nets.iter_mut().zip(self.chans.iter_mut()).enumerate() {
                let (tx, rx) = std::sync::mpsc::channel::<Cmd>();
                let rtx = reply_tx.clone();
                let so = Arc::clone(&shard_of);
                let capable = spec_capable[i];
                scope.spawn(move || worker(i, net, ch, &so, optimistic, capable, rx, rtx));
                cmd_txs.push(tx);
            }
            drop(reply_tx);
            // Coordinator-side view of pending speculations. All of them
            // resolve before this function returns (the loop cannot end
            // while one is pending), so the view need not persist.
            let mut spec: Vec<Option<SpecInfo>> = (0..nshards).map(|_| None).collect();
            while let Some(rp) = plan_round(
                plan,
                deadline,
                deadline_cap,
                spec_window,
                optimistic,
                floors,
                pending_in,
                spec_capable,
                &spec,
            ) {
                *round += 1;
                stats.rounds += 1;
                let ndisp = rp.dispatch.iter().filter(|&&b| b).count();
                let floor = rp.bound.iter().copied().min().unwrap_or(deadline);
                coord_rec(
                    coord_journal,
                    coord_jseq,
                    floor,
                    JournalKind::CoordRound,
                    *round,
                    ndisp as u64,
                    floor.0,
                );
                for (d, tx) in cmd_txs.iter().enumerate() {
                    if !rp.dispatch[d] {
                        continue;
                    }
                    tx.send(Cmd::Round(rp.cmd_for(d, *round)))
                        .expect("shard worker exited early");
                }
                let mut new_pending: Vec<Option<SimTime>> = vec![None; nshards];
                for _ in 0..ndisp {
                    // A panicked worker drops only its own sender clone, so
                    // a plain recv() would block forever on the survivors;
                    // the timeout turns a dead shard into a loud failure.
                    let r = reply_rx
                        .recv_timeout(std::time::Duration::from_secs(120))
                        .expect("shard worker died or stalled");
                    debug_assert_eq!(r.round, *round, "reply from a stale round");
                    fold_reply(
                        r,
                        floors,
                        spec_capable,
                        stats,
                        &mut spec,
                        &mut new_pending,
                        coord_journal,
                        coord_jseq,
                        floor,
                    );
                }
                apply_pending(pending_in, &new_pending, &rp.dispatch);
            }
            for tx in &cmd_txs {
                let _ = tx.send(Cmd::Terminate { round: *round });
            }
        });
    }

    // The dispatch loop indexes four parallel per-shard arrays; a range
    // loop keeps the disjoint field borrows obvious.
    #[allow(clippy::needless_range_loop)]
    fn run_epochs_inline(&mut self, deadline: SimTime) {
        let deadline_cap = deadline;
        let nshards = self.nets.len();
        let spec_window = self.plan.epoch.0.saturating_mul(SPEC_WINDOW_EPOCHS);
        let shard_of = Arc::clone(&self.plan.shard_of);
        let optimistic = self.optimistic;
        let mut spec: Vec<Option<SpecInfo>> = (0..nshards).map(|_| None).collect();
        // Worker-side speculation state (snapshots, held frames). Specs
        // always resolve before run_epochs returns, so this need not
        // persist on `self`.
        let mut specs: Vec<Option<Spec>> = (0..nshards).map(|_| None).collect();
        while let Some(rp) = plan_round(
            &self.plan,
            deadline,
            deadline_cap,
            spec_window,
            optimistic,
            &self.floors,
            &self.pending_in,
            &self.spec_capable,
            &spec,
        ) {
            self.round += 1;
            self.stats.rounds += 1;
            let ndisp = rp.dispatch.iter().filter(|&&b| b).count();
            let floor = rp.bound.iter().copied().min().unwrap_or(deadline);
            coord_rec(
                &mut self.coord_journal,
                &mut self.coord_jseq,
                floor,
                JournalKind::CoordRound,
                self.round,
                ndisp as u64,
                floor.0,
            );
            let mut new_pending: Vec<Option<SimTime>> = vec![None; nshards];
            for d in 0..nshards {
                if !rp.dispatch[d] {
                    continue;
                }
                let cmd = rp.cmd_for(d, self.round);
                let mut capable = self.spec_capable[d];
                let r = round_step(
                    d,
                    &mut self.nets[d],
                    &mut self.chans[d],
                    &shard_of,
                    optimistic,
                    &mut capable,
                    &mut specs[d],
                    &cmd,
                );
                fold_reply(
                    r,
                    &mut self.floors,
                    &mut self.spec_capable,
                    &mut self.stats,
                    &mut spec,
                    &mut new_pending,
                    &mut self.coord_journal,
                    &mut self.coord_jseq,
                    floor,
                );
            }
            apply_pending(&mut self.pending_in, &new_pending, &rp.dispatch);
        }
    }

    /// Merges the shards back into one [`RunReport`]. The k-way frontier
    /// merge over per-shard event logs reconstructs the exact sequential
    /// interleaving of samples and trace entries (see module docs).
    pub fn into_report(mut self) -> RunReport {
        let now = self.now;
        let mut sync = self.stats;
        // Ring telemetry: peak occupancy (max over rings) and cumulative
        // push stalls, read from every producer half. Journaled in the
        // coordinator lane — shard-count-dependent by construction.
        for (s, ch) in self.chans.iter().enumerate() {
            for (d, prod) in ch.outgoing.iter().enumerate() {
                let Some(p) = prod else { continue };
                sync.ring_high_water = sync.ring_high_water.max(p.high_water() as u64);
                sync.ring_stalls += p.stalls();
                if p.high_water() > 0 || p.stalls() > 0 {
                    coord_rec(
                        &mut self.coord_journal,
                        &mut self.coord_jseq,
                        now,
                        JournalKind::RingHighWater,
                        s as u64,
                        d as u64,
                        p.high_water() as u64,
                    );
                }
            }
        }
        let coord_journal = std::mem::take(&mut self.coord_journal).into_parts().0;
        if self.nets.len() == 1 {
            let net = &mut self.nets[0];
            let (spans, spans_dropped) = net.take_spans().into_parts();
            let telemetry_mode = net.telemetry_config().mode;
            let (journal, journal_dropped, journal_counts) = net.take_journal().into_parts();
            let device_names = (0..net.device_count())
                .map(|i| net.device_name(DeviceId(i)).to_string())
                .collect();
            return RunReport {
                events_processed: net.events_processed(),
                dropped_no_link: net.dropped_no_link(),
                trace_dropped: net.dropped_traces(),
                spans_emitted: spans.len() as u64 + spans_dropped,
                spans,
                spans_dropped,
                stages: net.take_stages(),
                trace_mode: net.trace_config().mode,
                device_names,
                store: net.take_store(),
                cpu: net.take_cpu(),
                trace: net.take_trace(),
                now,
                sync,
                journal,
                journal_dropped,
                journal_counts,
                coord_journal,
                telemetry_mode,
            };
        }
        let n = self.nets.len();
        let mut events_processed = 0;
        let mut dropped_no_link = 0;
        let mut trace_dropped = 0;
        let trace_mode = self.nets[0].trace_config().mode;
        let span_cap = self.nets[0].trace_config().span_cap;
        let device_names: Vec<String> = (0..self.nets[0].device_count())
            .map(|i| self.nets[0].device_name(DeviceId(i)).to_string())
            .collect();
        let telemetry_mode = self.nets[0].telemetry_config().mode;
        let mut cpus = Vec::with_capacity(n);
        let mut logs: Vec<Vec<LogEntry>> = Vec::with_capacity(n);
        let mut traces: Vec<Vec<TraceEntry>> = Vec::with_capacity(n);
        let mut shard_spans: Vec<Vec<SpanRecord>> = Vec::with_capacity(n);
        let mut shard_stages: Vec<StageTable> = Vec::with_capacity(n);
        let mut spans = SpanRing::with_cap(span_cap);
        // The merged journal ring starts from the master's pre-split
        // records (which precede every event) and re-caps replayed shard
        // records below. Same first-cap argument as spans: a record a
        // shard dropped sits at local emission index ≥ cap, hence at
        // sequential index ≥ cap — exactly a record the sequential run
        // also dropped.
        let mut jring = std::mem::take(&mut self.journal_seed);
        let mut shard_jrecs: Vec<Vec<JournalRecord>> = Vec::with_capacity(n);
        let mut parts = Vec::with_capacity(n);
        for net in &mut self.nets {
            events_processed += net.events_processed();
            dropped_no_link += net.dropped_no_link();
            trace_dropped += net.dropped_traces();
            cpus.push(net.take_cpu());
            logs.push(net.take_event_log());
            traces.push(net.take_trace());
            let (sp, locally_dropped) = net.take_spans().into_parts();
            // A span dropped at a shard's ring sits at local emission index
            // ≥ cap, hence at sequential emission index ≥ cap (a shard's
            // emission order is a subsequence of the sequential order), so
            // it is exactly a span the sequential run also dropped.
            spans.add_dropped(locally_dropped);
            shard_spans.push(sp);
            shard_stages.push(net.take_stages());
            let (jrecs, jdropped, jcounts) = net.take_journal().into_parts();
            jring.add_dropped(jdropped);
            jring.add_counts(&jcounts);
            shard_jrecs.push(jrecs);
            parts.push(net.take_store().into_parts());
        }
        // Satellite of the flight recorder: shard-local CPU accounts fold
        // cell-wise (exact, order-independent).
        let cpu = CpuAccount::fold(&cpus);

        let mut store = SampleStore::default();
        // Samples recorded before the split live in shard 0's per-series
        // vectors and precede every event.
        for (i, name) in parts[0].names.iter().enumerate() {
            if !parts[0].samples[i].is_empty() {
                let id = store.metric_id(name);
                for &v in &parts[0].samples[i] {
                    store.record_id(id, v);
                }
            }
        }

        // Lazily maps a shard-local metric id into the merged store,
        // interning the name on first sight (shared by sample records,
        // span stage ids and the stage-table fold below).
        fn remap_id(
            store: &mut SampleStore,
            map: &mut [Option<metrics::MetricId>],
            names: &[String],
            mid: metrics::MetricId,
        ) -> metrics::MetricId {
            match map[mid.index()] {
                Some(id) => id,
                None => {
                    let id = store.metric_id(&names[mid.index()]);
                    map[mid.index()] = Some(id);
                    id
                }
            }
        }

        // Frontier merge: repeatedly consume the shard whose next logged
        // event has the smallest intrinsic key, replaying its journal
        // records, trace entries and span records. Keys are globally
        // unique, and an inductive argument over event availability shows
        // this recovers the sequential processing order exactly.
        //
        // Span re-cap: the replayed span sequence is the sequential
        // emission order minus shard-locally dropped spans, and every
        // locally dropped span has sequential emission index ≥ cap (see
        // the collection loop above), so the first `cap` replayed spans
        // are exactly the sequential kept set; the rest are re-dropped
        // here, which [`SpanRing::push`] counts. The same argument covers
        // trace entries at [`TRACE_CAP`].
        let mut idmap: Vec<Vec<Option<metrics::MetricId>>> =
            parts.iter().map(|p| vec![None; p.names.len()]).collect();
        let mut li = vec![0usize; n];
        let mut ji = vec![0usize; n];
        let mut ti = vec![0usize; n];
        let mut si = vec![0usize; n];
        let mut jx = vec![0usize; n];
        let mut trace = Vec::new();
        loop {
            let mut best: Option<(usize, EventTag)> = None;
            for s in 0..n {
                if let Some(e) = logs[s].get(li[s]) {
                    if best.is_none_or(|(_, bt)| e.tag < bt) {
                        best = Some((s, e.tag));
                    }
                }
            }
            let Some((s, _)) = best else { break };
            let e = logs[s][li[s]];
            li[s] += 1;
            for _ in 0..e.recs {
                let (mid, v) = parts[s].journal[ji[s]];
                ji[s] += 1;
                let oid = remap_id(&mut store, &mut idmap[s], &parts[s].names, mid);
                store.record_id(oid, v);
            }
            for _ in 0..e.traces {
                if trace.len() < TRACE_CAP {
                    trace.push(traces[s][ti[s]].clone());
                } else {
                    trace_dropped += 1;
                }
                ti[s] += 1;
            }
            for _ in 0..e.spans {
                let mut rec = shard_spans[s][si[s]];
                si[s] += 1;
                rec.stage = remap_id(&mut store, &mut idmap[s], &parts[s].names, rec.stage);
                spans.push(rec);
            }
            for _ in 0..e.jrecs {
                jring.push_merged(shard_jrecs[s][jx[s]]);
                jx[s] += 1;
            }
        }

        // Per-stage aggregates fold cell-wise (integer sums, min/max,
        // histogram bucket adds) — exact and order-independent, so shard
        // order is as good as sequential order.
        let mut stages = StageTable::default();
        for (s, table) in shard_stages.iter().enumerate() {
            let map = &mut idmap[s];
            let names = &parts[s].names;
            stages.merge_with(table, |mid| remap_id(&mut store, map, names, mid));
        }

        // Counters: summed per shard in shard order. Deltas are
        // integer-valued throughout the codebase, so f64 addition here is
        // exact and order-insensitive.
        for p in &parts {
            for (i, name) in p.names.iter().enumerate() {
                if p.counters[i] != 0.0 {
                    store.add(name, p.counters[i]);
                }
            }
        }

        let (spans, spans_dropped) = spans.into_parts();
        let (journal, journal_dropped, journal_counts) = jring.into_parts();
        RunReport {
            store,
            cpu,
            trace,
            trace_dropped,
            spans_emitted: spans.len() as u64 + spans_dropped,
            spans,
            spans_dropped,
            stages,
            trace_mode,
            device_names,
            events_processed,
            dropped_no_link,
            now,
            sync,
            journal,
            journal_dropped,
            journal_counts,
            coord_journal,
            telemetry_mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PortId;
    use crate::engine::LinkParams;
    use crate::testutil::CaptureSink;
    use metrics::CpuLocation;

    fn sink(net: &mut Network, name: &str, loc: CpuLocation) -> DeviceId {
        net.add_device(name, loc, Box::new(CaptureSink::new(name)))
    }

    #[test]
    fn every_device_lands_in_exactly_one_shard() {
        let mut net = Network::new(0);
        let lat = LinkParams::with_latency(SimDuration::micros(10));
        let mut firsts = Vec::new();
        for h in 0..4 {
            let a = sink(&mut net, format!("h{h}.a").as_str(), CpuLocation::Host);
            let b = sink(&mut net, format!("h{h}.b").as_str(), CpuLocation::Host);
            net.connect(a, PortId(0), b, PortId(0), LinkParams::default());
            firsts.push(a);
        }
        for w in firsts.windows(2) {
            net.connect(w[0], PortId(1), w[1], PortId(2), lat);
        }
        let plan = PartitionPlan::partition(&net, 4);
        assert_eq!(plan.nshards(), 4);
        let mut count = vec![0usize; plan.nshards()];
        for i in 0..net.device_count() {
            let s = plan.shard_of(DeviceId(i));
            assert!(s < plan.nshards());
            count[s] += 1;
        }
        assert_eq!(count.iter().sum::<usize>(), net.device_count());
        assert!(count.iter().all(|&c| c == 2), "islands balance 2-2-2-2");
    }

    #[test]
    fn cross_shard_links_are_no_shorter_than_the_epoch() {
        let mut net = Network::new(0);
        let a = sink(&mut net, "a", CpuLocation::Host);
        let b = sink(&mut net, "b", CpuLocation::Host);
        let c = sink(&mut net, "c", CpuLocation::Host);
        net.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(5)),
        );
        net.connect(
            b,
            PortId(1),
            c,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(20)),
        );
        let plan = PartitionPlan::partition(&net, 3);
        assert_eq!(plan.nshards(), 3);
        assert_eq!(plan.epoch(), SimDuration::micros(5));
        for (x, px, y, _) in net.links() {
            if plan.shard_of(x) != plan.shard_of(y) {
                assert!(net.link_params(x, px).unwrap().latency >= plan.epoch());
            }
        }
    }

    #[test]
    fn min_lat_matrix_is_per_pair_and_symmetric() {
        // a —5µs— b —20µs— c, three shards: the a↔b pair must see 5µs,
        // the b↔c pair 20µs, and the unlinked a↔c pair no bound at all —
        // the whole point of adaptive lookahead over a scalar epoch.
        let mut net = Network::new(0);
        let a = sink(&mut net, "a", CpuLocation::Host);
        let b = sink(&mut net, "b", CpuLocation::Host);
        let c = sink(&mut net, "c", CpuLocation::Host);
        net.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(5)),
        );
        net.connect(
            b,
            PortId(1),
            c,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(20)),
        );
        let plan = PartitionPlan::partition(&net, 3);
        assert_eq!(plan.nshards(), 3);
        let (sa, sb, sc) = (plan.shard_of(a), plan.shard_of(b), plan.shard_of(c));
        assert_eq!(plan.min_lat(sa, sb), SimDuration::micros(5).0);
        assert_eq!(plan.min_lat(sb, sa), SimDuration::micros(5).0);
        assert_eq!(plan.min_lat(sb, sc), SimDuration::micros(20).0);
        assert_eq!(plan.min_lat(sc, sb), SimDuration::micros(20).0);
        assert_eq!(plan.min_lat(sa, sc), u64::MAX, "no direct link");
        assert_eq!(plan.min_lat(sc, sa), u64::MAX, "no direct link");
    }

    #[test]
    fn zero_latency_cross_host_link_forces_single_shard() {
        // Two would-be hosts joined by a zero-latency link: no lookahead
        // exists, so the partitioner must glue them and fall back to one
        // shard however many were requested.
        let mut net = Network::new(0);
        let a = sink(&mut net, "host0", CpuLocation::Host);
        let b = sink(&mut net, "host1", CpuLocation::Host);
        net.connect(a, PortId(0), b, PortId(0), LinkParams::default());
        let plan = PartitionPlan::partition(&net, 8);
        assert_eq!(plan.nshards(), 1, "zero-latency cut is impossible");
        assert_eq!(plan.epoch(), SimDuration::ZERO);
        let sharded = ShardedNetwork::new(Network::new(0), 8);
        assert_eq!(sharded.nshards(), 1, "empty network is one shard");
    }

    #[test]
    fn same_vm_devices_are_glued() {
        let mut net = Network::new(0);
        let a = sink(&mut net, "vm1.a", CpuLocation::Vm(1));
        let b = sink(&mut net, "vm1.b", CpuLocation::Vm(1));
        let c = sink(&mut net, "vm2.c", CpuLocation::Vm(2));
        net.connect(
            a,
            PortId(0),
            c,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(3)),
        );
        net.connect(
            b,
            PortId(0),
            c,
            PortId(1),
            LinkParams::with_latency(SimDuration::micros(3)),
        );
        let plan = PartitionPlan::partition(&net, 8);
        assert_eq!(plan.nshards(), 2);
        assert_eq!(plan.shard_of(a), plan.shard_of(b), "same VM, same shard");
        assert_ne!(plan.shard_of(a), plan.shard_of(c));
    }

    #[test]
    fn bind_same_shard_affinity_is_honored() {
        let mut net = Network::new(0);
        let a = sink(&mut net, "a", CpuLocation::Host);
        let b = sink(&mut net, "b", CpuLocation::Host);
        net.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(3)),
        );
        assert_eq!(PartitionPlan::partition(&net, 2).nshards(), 2);
        net.bind_same_shard(a, b);
        let plan = PartitionPlan::partition(&net, 2);
        assert_eq!(plan.nshards(), 1, "affinity glued the only two islands");
    }

    #[test]
    fn relax_closes_the_latency_matrix_transitively() {
        let mut net = Network::new(0);
        let a = sink(&mut net, "a", CpuLocation::Host);
        let b = sink(&mut net, "b", CpuLocation::Host);
        let c = sink(&mut net, "c", CpuLocation::Host);
        net.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(5)),
        );
        net.connect(
            b,
            PortId(1),
            c,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(20)),
        );
        let mut plan = PartitionPlan::partition(&net, 3);
        let (sa, sc) = (plan.shard_of(a), plan.shard_of(c));
        assert_eq!(plan.min_lat(sa, sc), u64::MAX);
        plan.relax();
        assert_eq!(plan.min_lat(sa, sc), SimDuration::micros(25).0);
        assert_eq!(plan.min_lat(sc, sa), SimDuration::micros(25).0);
        // Direct pairs keep their (already-minimal) latency and the
        // diagonal stays unreachable.
        assert_eq!(plan.min_lat(sa, plan.shard_of(b)), SimDuration::micros(5).0);
        assert_eq!(plan.min_lat(sa, sa), u64::MAX);
    }
}
