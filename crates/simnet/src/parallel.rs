//! The parallel sharded engine: conservative lookahead without losing a
//! single bit of determinism.
//!
//! # Partitioning
//!
//! [`PartitionPlan::partition`] splits the device graph into *islands* that
//! must never be separated, then balances islands across shards:
//!
//! * devices joined by a **zero-latency link** stay together (a frame could
//!   cross instantly, so no lookahead exists across such a link);
//! * devices located in the **same VM** stay together (they serialize on
//!   shared guest state — stations, kernel queues);
//! * devices bound by [`Network::bind_same_shard`] stay together (coupling
//!   the device graph cannot see, above all a
//!   [`SharedStation`](crate::shared::SharedStation) serialized across
//!   devices — e.g. every host bridge of one machine sharing the host
//!   kernel's station).
//!
//! The paper's topologies are naturally host-shaped: intra-host plumbing
//! (veth, TAP, virtio/vhost, bridges) is glued by these rules while
//! physical inter-host links carry real latency, so islands are host
//! islands and the cut runs exactly along cross-host links.
//!
//! # Conservative epochs
//!
//! The epoch `E` is the minimum latency over cross-shard links. Shards run
//! in lockstep windows `[t, t+E)` where `t` is the global minimum pending
//! event time: a frame emitted in a window at time `s ≥ t` arrives at
//! `s + latency ≥ t + E`, i.e. no earlier than the *next* window, so a
//! shard can never receive an event in its past. Cross-shard frames travel
//! through per-epoch outboxes over `std::sync::mpsc` channels and are
//! pushed into the destination heap before the next window starts.
//!
//! # Bit-identical determinism
//!
//! Three mechanisms make the sharded run reproduce the sequential engine
//! exactly (not just statistically):
//!
//! 1. **Intrinsic event keys** `(time, source, per-source seq)` (see
//!    `engine.rs`): heap order does not depend on insertion order, so each
//!    shard's pop order equals the sequential pop order restricted to that
//!    shard's devices.
//! 2. **Per-device RNG streams** seeded from `(network seed, device id)`:
//!    jitter/loss draws depend only on a device's own event sequence, never
//!    on how unrelated devices interleave.
//! 3. **Merge by frontier order**: each shard keeps an event log and a
//!    sample journal; [`ShardedNetwork::into_report`] replays them with a
//!    k-way frontier merge (always consume the shard whose next logged
//!    event has the smallest key) which provably reconstructs the exact
//!    sequential interleaving — equal-time causal chains never cross
//!    shards because cross-shard links have latency ≥ E > 0.
//!
//! CPU time is aggregated by folding per-shard [`CpuAccount`]s
//! ([`CpuAccount::fold`] — integer nanoseconds, exact); counters are
//! summed per shard in shard order (counter deltas in this codebase are
//! integer-valued, so f64 addition is exact far beyond any realistic run
//! length). Flight-recorder spans ride the same frontier merge as sample
//! journals: each [`LogEntry`] carries its span count, replay restores
//! exact sequential emission order, and re-capping against the global
//! span cap reproduces the sequential kept/dropped split bit for bit.

use crate::device::DeviceId;
use crate::engine::{EventTag, LogEntry, Network, RemoteEvent, SampleStore, TraceEntry, TRACE_CAP};
use crate::time::{SimDuration, SimTime};
use metrics::{CpuAccount, CpuLocation, SpanRecord, SpanRing, StageTable, TraceMode};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// Reads the `SIMNET_SHARDS` environment knob (default 1). Values below 1
/// or unparsable values read as 1.
pub fn shards_from_env() -> usize {
    std::env::var("SIMNET_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Minimal union-find over device indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Assignment of every device to a shard, plus the epoch derived from the
/// cut. Produced by [`PartitionPlan::partition`].
pub struct PartitionPlan {
    pub(crate) shard_of: Arc<Vec<u32>>,
    nshards: usize,
    epoch: SimDuration,
}

impl PartitionPlan {
    /// Partitions `net` into at most `want` shards.
    ///
    /// Islands (see module docs) are kept intact and balanced across
    /// shards longest-processing-time-first; the actual shard count is
    /// `min(want, number of islands)`, so a topology whose devices are all
    /// glued together falls back to a single shard.
    pub fn partition(net: &Network, want: usize) -> PartitionPlan {
        let n = net.device_count();
        let mut uf = UnionFind::new(n);
        let links = net.links();
        for &(a, pa, b, _) in &links {
            let p = net.link_params(a, pa).expect("listed link has params");
            if p.latency == SimDuration::ZERO {
                uf.union(a.0, b.0);
            }
        }
        let mut vm_anchor: HashMap<u32, usize> = HashMap::new();
        for i in 0..n {
            if let CpuLocation::Vm(vm) = net.device_location(DeviceId(i)) {
                match vm_anchor.get(&vm) {
                    Some(&anchor) => uf.union(anchor, i),
                    None => {
                        vm_anchor.insert(vm, i);
                    }
                }
            }
        }
        for &(a, b) in net.affinity() {
            uf.union(a.0, b.0);
        }

        // Islands in order of their smallest device id (deterministic).
        let mut island_of_root: HashMap<usize, usize> = HashMap::new();
        let mut islands: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let r = uf.find(i);
            let idx = *island_of_root.entry(r).or_insert_with(|| {
                islands.push(Vec::new());
                islands.len() - 1
            });
            islands[idx].push(i);
        }

        let nshards = want.max(1).min(islands.len().max(1));
        // LPT greedy balance: biggest islands first (ties: lowest device
        // id), each to the least-loaded shard (ties: lowest shard).
        let mut order: Vec<usize> = (0..islands.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(islands[i].len()), islands[i][0]));
        let mut load = vec![0usize; nshards];
        let mut shard_of = vec![0u32; n];
        for &i in &order {
            let s = (0..nshards).min_by_key(|&s| (load[s], s)).unwrap();
            load[s] += islands[i].len();
            for &d in &islands[i] {
                shard_of[d] = s as u32;
            }
        }

        // Epoch: minimum latency over links whose endpoints landed in
        // different shards. No cross links (disconnected islands) means
        // unbounded lookahead.
        let mut epoch: Option<SimDuration> = None;
        if nshards > 1 {
            for &(a, pa, b, _) in &links {
                if shard_of[a.0] != shard_of[b.0] {
                    let lat = net.link_params(a, pa).unwrap().latency;
                    epoch = Some(epoch.map_or(lat, |e| e.min(lat)));
                }
            }
        }
        let epoch = match epoch {
            Some(e) => {
                debug_assert!(
                    e > SimDuration::ZERO,
                    "zero-latency links are glued, the cut cannot cross one"
                );
                e
            }
            None => {
                if nshards > 1 {
                    SimDuration(u64::MAX)
                } else {
                    SimDuration::ZERO
                }
            }
        };
        PartitionPlan {
            shard_of: Arc::new(shard_of),
            nshards,
            epoch,
        }
    }

    /// Number of shards in the plan (≥ 1).
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The conservative lookahead window: the minimum cross-shard link
    /// latency (zero for single-shard plans, `u64::MAX` ns when no link
    /// crosses the cut).
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// The shard owning `dev`.
    pub fn shard_of(&self, dev: DeviceId) -> usize {
        self.shard_of[dev.0] as usize
    }
}

/// Everything a finished (sharded or single-shard) run yields: the merged
/// sample store, CPU account, trace, and engine counters. For any shard
/// count the contents are bit-identical to a sequential [`Network`] run of
/// the same topology, workload and seed.
pub struct RunReport {
    /// Merged sample store. Per-name samples and counters match the
    /// sequential run exactly; only the (unobservable) name enumeration
    /// order may differ.
    pub store: SampleStore,
    /// Merged CPU account (integer nanoseconds; exact).
    pub cpu: CpuAccount,
    /// Merged event trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEntry>,
    /// Trace entries dropped at [`TRACE_CAP`], summed over shard-local
    /// drops and merge re-cap skips — exactly the sequential drop count.
    pub trace_dropped: u64,
    /// Flight-recorder spans retained under the span cap, in exact
    /// sequential emission order (empty unless the recorder ran in
    /// [`TraceMode::Full`]).
    pub spans: Vec<SpanRecord>,
    /// Spans emitted in total (kept + dropped at the span cap).
    pub spans_emitted: u64,
    /// Spans dropped at the span cap (shard-local drops plus merge
    /// re-cap skips — exactly the sequential drop count).
    pub spans_dropped: u64,
    /// Per-stage latency/CPU aggregates. Stage ids resolve through
    /// [`store`](RunReport::store) (same interner).
    pub stages: StageTable,
    /// The recorder mode the run was configured with.
    pub trace_mode: TraceMode,
    /// Name of every device, indexed by device id (exporters resolve
    /// span `dev` fields through this).
    pub device_names: Vec<String>,
    /// Total events processed across all shards.
    pub events_processed: u64,
    /// Total frames dropped on unlinked ports across all shards.
    pub dropped_no_link: u64,
    /// Final simulated time.
    pub now: SimTime,
}

enum Cmd {
    /// Deliver the incoming cross-shard frames, then process every local
    /// event with `at < until`.
    Run {
        until: SimTime,
        incoming: Vec<RemoteEvent>,
    },
}

struct Reply {
    shard: usize,
    next_at: Option<SimTime>,
    outbox: Vec<RemoteEvent>,
}

fn worker(shard: usize, net: &mut Network, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    while let Ok(Cmd::Run { until, incoming }) = rx.recv() {
        for ev in incoming {
            net.push_remote(ev);
        }
        net.run_window(until);
        if tx
            .send(Reply {
                shard,
                next_at: net.peek_next_at(),
                outbox: net.take_outbox(),
            })
            .is_err()
        {
            break;
        }
    }
}

/// A [`Network`] split across shards, each running its own slab/heap event
/// loop on its own thread, synchronized by conservative epochs.
///
/// Build a topology on a plain [`Network`] (injecting initial frames and
/// timers as usual), then hand it to [`ShardedNetwork::new`] *before
/// running any event*. `run_until`/`run_to_idle` mirror the sequential
/// API; [`into_report`](ShardedNetwork::into_report) merges the shards
/// back into one [`RunReport`].
pub struct ShardedNetwork {
    nets: Vec<Network>,
    plan: PartitionPlan,
    /// Cross-shard frames awaiting delivery at the next window.
    pending: Vec<Vec<RemoteEvent>>,
    now: SimTime,
}

impl ShardedNetwork {
    /// Shards `net` into at most `want` shards (see
    /// [`PartitionPlan::partition`] for the actual count).
    ///
    /// # Panics
    /// Panics if `net` has already processed events — sharding must happen
    /// between topology construction and the first run.
    pub fn new(net: Network, want: usize) -> ShardedNetwork {
        let now = net.now();
        let plan = PartitionPlan::partition(&net, want);
        let nshards = plan.nshards();
        let nets = if nshards == 1 {
            // Single shard: keep the network whole and run it directly —
            // trivially identical to the sequential engine.
            vec![net]
        } else {
            net.split(&plan.shard_of, nshards)
        };
        ShardedNetwork {
            nets,
            plan,
            pending: (0..nshards).map(|_| Vec::new()).collect(),
            now,
        }
    }

    /// Shards `net` according to the `SIMNET_SHARDS` environment variable
    /// (default 1).
    pub fn from_env(net: Network) -> ShardedNetwork {
        ShardedNetwork::new(net, shards_from_env())
    }

    /// The partition in effect.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Actual number of shards (≥ 1, at most the requested count).
    pub fn nshards(&self) -> usize {
        self.nets.len()
    }

    /// Current simulated time (the deadline of the last `run_until`, or
    /// the last processed event time after `run_to_idle`).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Enables (or disables) event tracing on every shard.
    pub fn set_tracing(&mut self, on: bool) {
        for net in &mut self.nets {
            net.set_tracing(on);
        }
    }

    /// Runs until the clock reaches `deadline`; events at exactly
    /// `deadline` are processed (sequential `run_until` semantics).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_epochs(deadline);
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Drains every remaining event.
    pub fn run_to_idle(&mut self) {
        self.run_epochs(SimTime(u64::MAX - 1));
        let last = self.nets.iter().map(|n| n.now()).max().unwrap_or(self.now);
        if last > self.now {
            self.now = last;
        }
    }

    /// The epoch-barrier scheduler: repeatedly pick the global minimum
    /// pending time `t`, let every shard process `[t, min(t+E, deadline+1))`
    /// in parallel, then exchange cross-shard frames.
    fn run_epochs(&mut self, deadline: SimTime) {
        if self.nets.len() == 1 {
            let net = &mut self.nets[0];
            if deadline == SimTime(u64::MAX - 1) {
                net.run_to_idle();
            } else {
                net.run_until(deadline);
            }
            return;
        }
        let epoch = self.plan.epoch.0;
        let nshards = self.nets.len();
        let shard_of = Arc::clone(&self.plan.shard_of);
        let mut pending = std::mem::take(&mut self.pending);
        let mut next_at: Vec<Option<SimTime>> =
            self.nets.iter().map(Network::peek_next_at).collect();
        std::thread::scope(|scope| {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel::<Reply>();
            let mut cmd_txs = Vec::with_capacity(nshards);
            for (i, net) in self.nets.iter_mut().enumerate() {
                let (tx, rx) = std::sync::mpsc::channel::<Cmd>();
                let rtx = reply_tx.clone();
                scope.spawn(move || worker(i, net, rx, rtx));
                cmd_txs.push(tx);
            }
            drop(reply_tx);
            loop {
                // Global minimum over shard heaps and undelivered frames.
                let mut t: Option<SimTime> = None;
                for s in 0..nshards {
                    let pend_min = pending[s].iter().map(|e| e.tag.at).min();
                    for cand in [next_at[s], pend_min].into_iter().flatten() {
                        t = Some(t.map_or(cand, |cur| cur.min(cand)));
                    }
                }
                let Some(t) = t else { break };
                if t > deadline {
                    break;
                }
                let until = SimTime(t.0.saturating_add(epoch).min(deadline.0.saturating_add(1)));
                for (s, tx) in cmd_txs.iter().enumerate() {
                    tx.send(Cmd::Run {
                        until,
                        incoming: std::mem::take(&mut pending[s]),
                    })
                    .expect("shard worker exited early");
                }
                for _ in 0..nshards {
                    let r = reply_rx.recv().expect("shard worker panicked");
                    next_at[r.shard] = r.next_at;
                    for ev in r.outbox {
                        pending[shard_of[ev.dev.0] as usize].push(ev);
                    }
                }
            }
            // Dropping the command senders terminates the workers.
        });
        // Frames addressed beyond the deadline wait for the next run call.
        self.pending = pending;
    }

    /// Merges the shards back into one [`RunReport`]. The k-way frontier
    /// merge over per-shard event logs reconstructs the exact sequential
    /// interleaving of samples and trace entries (see module docs).
    pub fn into_report(mut self) -> RunReport {
        let now = self.now;
        if self.nets.len() == 1 {
            let net = &mut self.nets[0];
            let (spans, spans_dropped) = net.take_spans().into_parts();
            let device_names = (0..net.device_count())
                .map(|i| net.device_name(DeviceId(i)).to_string())
                .collect();
            return RunReport {
                events_processed: net.events_processed(),
                dropped_no_link: net.dropped_no_link(),
                trace_dropped: net.dropped_traces(),
                spans_emitted: spans.len() as u64 + spans_dropped,
                spans,
                spans_dropped,
                stages: net.take_stages(),
                trace_mode: net.trace_config().mode,
                device_names,
                store: net.take_store(),
                cpu: net.take_cpu(),
                trace: net.take_trace(),
                now,
            };
        }
        let n = self.nets.len();
        let mut events_processed = 0;
        let mut dropped_no_link = 0;
        let mut trace_dropped = 0;
        let trace_mode = self.nets[0].trace_config().mode;
        let span_cap = self.nets[0].trace_config().span_cap;
        let device_names: Vec<String> = (0..self.nets[0].device_count())
            .map(|i| self.nets[0].device_name(DeviceId(i)).to_string())
            .collect();
        let mut cpus = Vec::with_capacity(n);
        let mut logs: Vec<Vec<LogEntry>> = Vec::with_capacity(n);
        let mut traces: Vec<Vec<TraceEntry>> = Vec::with_capacity(n);
        let mut shard_spans: Vec<Vec<SpanRecord>> = Vec::with_capacity(n);
        let mut shard_stages: Vec<StageTable> = Vec::with_capacity(n);
        let mut spans = SpanRing::with_cap(span_cap);
        let mut parts = Vec::with_capacity(n);
        for net in &mut self.nets {
            events_processed += net.events_processed();
            dropped_no_link += net.dropped_no_link();
            trace_dropped += net.dropped_traces();
            cpus.push(net.take_cpu());
            logs.push(net.take_event_log());
            traces.push(net.take_trace());
            let (sp, locally_dropped) = net.take_spans().into_parts();
            // A span dropped at a shard's ring sits at local emission index
            // ≥ cap, hence at sequential emission index ≥ cap (a shard's
            // emission order is a subsequence of the sequential order), so
            // it is exactly a span the sequential run also dropped.
            spans.add_dropped(locally_dropped);
            shard_spans.push(sp);
            shard_stages.push(net.take_stages());
            parts.push(net.take_store().into_parts());
        }
        // Satellite of the flight recorder: shard-local CPU accounts fold
        // cell-wise (exact, order-independent).
        let cpu = CpuAccount::fold(&cpus);

        let mut store = SampleStore::default();
        // Samples recorded before the split live in shard 0's per-series
        // vectors and precede every event.
        for (i, name) in parts[0].names.iter().enumerate() {
            if !parts[0].samples[i].is_empty() {
                let id = store.metric_id(name);
                for &v in &parts[0].samples[i] {
                    store.record_id(id, v);
                }
            }
        }

        // Lazily maps a shard-local metric id into the merged store,
        // interning the name on first sight (shared by sample records,
        // span stage ids and the stage-table fold below).
        fn remap_id(
            store: &mut SampleStore,
            map: &mut [Option<metrics::MetricId>],
            names: &[String],
            mid: metrics::MetricId,
        ) -> metrics::MetricId {
            match map[mid.index()] {
                Some(id) => id,
                None => {
                    let id = store.metric_id(&names[mid.index()]);
                    map[mid.index()] = Some(id);
                    id
                }
            }
        }

        // Frontier merge: repeatedly consume the shard whose next logged
        // event has the smallest intrinsic key, replaying its journal
        // records, trace entries and span records. Keys are globally
        // unique, and an inductive argument over event availability shows
        // this recovers the sequential processing order exactly.
        //
        // Span re-cap: the replayed span sequence is the sequential
        // emission order minus shard-locally dropped spans, and every
        // locally dropped span has sequential emission index ≥ cap (see
        // the collection loop above), so the first `cap` replayed spans
        // are exactly the sequential kept set; the rest are re-dropped
        // here, which [`SpanRing::push`] counts. The same argument covers
        // trace entries at [`TRACE_CAP`].
        let mut idmap: Vec<Vec<Option<metrics::MetricId>>> =
            parts.iter().map(|p| vec![None; p.names.len()]).collect();
        let mut li = vec![0usize; n];
        let mut ji = vec![0usize; n];
        let mut ti = vec![0usize; n];
        let mut si = vec![0usize; n];
        let mut trace = Vec::new();
        loop {
            let mut best: Option<(usize, EventTag)> = None;
            for s in 0..n {
                if let Some(e) = logs[s].get(li[s]) {
                    if best.is_none_or(|(_, bt)| e.tag < bt) {
                        best = Some((s, e.tag));
                    }
                }
            }
            let Some((s, _)) = best else { break };
            let e = logs[s][li[s]];
            li[s] += 1;
            for _ in 0..e.recs {
                let (mid, v) = parts[s].journal[ji[s]];
                ji[s] += 1;
                let oid = remap_id(&mut store, &mut idmap[s], &parts[s].names, mid);
                store.record_id(oid, v);
            }
            for _ in 0..e.traces {
                if trace.len() < TRACE_CAP {
                    trace.push(traces[s][ti[s]].clone());
                } else {
                    trace_dropped += 1;
                }
                ti[s] += 1;
            }
            for _ in 0..e.spans {
                let mut rec = shard_spans[s][si[s]];
                si[s] += 1;
                rec.stage = remap_id(&mut store, &mut idmap[s], &parts[s].names, rec.stage);
                spans.push(rec);
            }
        }

        // Per-stage aggregates fold cell-wise (integer sums, min/max,
        // histogram bucket adds) — exact and order-independent, so shard
        // order is as good as sequential order.
        let mut stages = StageTable::default();
        for (s, table) in shard_stages.iter().enumerate() {
            let map = &mut idmap[s];
            let names = &parts[s].names;
            stages.merge_with(table, |mid| remap_id(&mut store, map, names, mid));
        }

        // Counters: summed per shard in shard order. Deltas are
        // integer-valued throughout the codebase, so f64 addition here is
        // exact and order-insensitive.
        for p in &parts {
            for (i, name) in p.names.iter().enumerate() {
                if p.counters[i] != 0.0 {
                    store.add(name, p.counters[i]);
                }
            }
        }

        let (spans, spans_dropped) = spans.into_parts();
        RunReport {
            store,
            cpu,
            trace,
            trace_dropped,
            spans_emitted: spans.len() as u64 + spans_dropped,
            spans,
            spans_dropped,
            stages,
            trace_mode,
            device_names,
            events_processed,
            dropped_no_link,
            now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PortId;
    use crate::engine::LinkParams;
    use crate::testutil::CaptureSink;
    use metrics::CpuLocation;

    fn sink(net: &mut Network, name: &str, loc: CpuLocation) -> DeviceId {
        net.add_device(name, loc, Box::new(CaptureSink::new(name)))
    }

    #[test]
    fn every_device_lands_in_exactly_one_shard() {
        let mut net = Network::new(0);
        let lat = LinkParams::with_latency(SimDuration::micros(10));
        let mut firsts = Vec::new();
        for h in 0..4 {
            let a = sink(&mut net, format!("h{h}.a").as_str(), CpuLocation::Host);
            let b = sink(&mut net, format!("h{h}.b").as_str(), CpuLocation::Host);
            net.connect(a, PortId(0), b, PortId(0), LinkParams::default());
            firsts.push(a);
        }
        for w in firsts.windows(2) {
            net.connect(w[0], PortId(1), w[1], PortId(2), lat);
        }
        let plan = PartitionPlan::partition(&net, 4);
        assert_eq!(plan.nshards(), 4);
        let mut count = vec![0usize; plan.nshards()];
        for i in 0..net.device_count() {
            let s = plan.shard_of(DeviceId(i));
            assert!(s < plan.nshards());
            count[s] += 1;
        }
        assert_eq!(count.iter().sum::<usize>(), net.device_count());
        assert!(count.iter().all(|&c| c == 2), "islands balance 2-2-2-2");
    }

    #[test]
    fn cross_shard_links_are_no_shorter_than_the_epoch() {
        let mut net = Network::new(0);
        let a = sink(&mut net, "a", CpuLocation::Host);
        let b = sink(&mut net, "b", CpuLocation::Host);
        let c = sink(&mut net, "c", CpuLocation::Host);
        net.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(5)),
        );
        net.connect(
            b,
            PortId(1),
            c,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(20)),
        );
        let plan = PartitionPlan::partition(&net, 3);
        assert_eq!(plan.nshards(), 3);
        assert_eq!(plan.epoch(), SimDuration::micros(5));
        for (x, px, y, _) in net.links() {
            if plan.shard_of(x) != plan.shard_of(y) {
                assert!(net.link_params(x, px).unwrap().latency >= plan.epoch());
            }
        }
    }

    #[test]
    fn zero_latency_cross_host_link_forces_single_shard() {
        // Two would-be hosts joined by a zero-latency link: no lookahead
        // exists, so the partitioner must glue them and fall back to one
        // shard however many were requested.
        let mut net = Network::new(0);
        let a = sink(&mut net, "host0", CpuLocation::Host);
        let b = sink(&mut net, "host1", CpuLocation::Host);
        net.connect(a, PortId(0), b, PortId(0), LinkParams::default());
        let plan = PartitionPlan::partition(&net, 8);
        assert_eq!(plan.nshards(), 1, "zero-latency cut is impossible");
        assert_eq!(plan.epoch(), SimDuration::ZERO);
        let sharded = ShardedNetwork::new(Network::new(0), 8);
        assert_eq!(sharded.nshards(), 1, "empty network is one shard");
    }

    #[test]
    fn same_vm_devices_are_glued() {
        let mut net = Network::new(0);
        let a = sink(&mut net, "vm1.a", CpuLocation::Vm(1));
        let b = sink(&mut net, "vm1.b", CpuLocation::Vm(1));
        let c = sink(&mut net, "vm2.c", CpuLocation::Vm(2));
        net.connect(
            a,
            PortId(0),
            c,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(3)),
        );
        net.connect(
            b,
            PortId(0),
            c,
            PortId(1),
            LinkParams::with_latency(SimDuration::micros(3)),
        );
        let plan = PartitionPlan::partition(&net, 8);
        assert_eq!(plan.nshards(), 2);
        assert_eq!(plan.shard_of(a), plan.shard_of(b), "same VM, same shard");
        assert_ne!(plan.shard_of(a), plan.shard_of(c));
    }

    #[test]
    fn bind_same_shard_affinity_is_honored() {
        let mut net = Network::new(0);
        let a = sink(&mut net, "a", CpuLocation::Host);
        let b = sink(&mut net, "b", CpuLocation::Host);
        net.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkParams::with_latency(SimDuration::micros(3)),
        );
        assert_eq!(PartitionPlan::partition(&net, 2).nshards(), 2);
        net.bind_same_shard(a, b);
        let plan = PartitionPlan::partition(&net, 2);
        assert_eq!(plan.nshards(), 1, "affinity glued the only two islands");
    }

    #[test]
    fn shards_from_env_parses_and_defaults() {
        // Serialize around the env var (tests run in parallel).
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        std::env::remove_var("SIMNET_SHARDS");
        assert_eq!(shards_from_env(), 1);
        std::env::set_var("SIMNET_SHARDS", "4");
        assert_eq!(shards_from_env(), 4);
        std::env::set_var("SIMNET_SHARDS", "0");
        assert_eq!(shards_from_env(), 1);
        std::env::set_var("SIMNET_SHARDS", "nope");
        assert_eq!(shards_from_env(), 1);
        std::env::remove_var("SIMNET_SHARDS");
    }
}
