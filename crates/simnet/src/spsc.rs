//! Bounded lock-free single-producer single-consumer rings.
//!
//! The shard coordinator's data plane: every ordered pair of shards owns
//! one ring carrying per-round batches of cross-shard frames, so frame
//! payloads flow directly between worker threads and never through the
//! coordinator (see `parallel.rs`).
//!
//! The implementation is a classic Lamport queue with monotonic positions:
//! `head`/`tail` count elements ever popped/pushed and index the buffer
//! modulo a power-of-two capacity. The producer publishes a slot with a
//! `Release` store of `tail` and the consumer acquires it with an
//! `Acquire` load (and vice versa for slot reuse), which is the entire
//! synchronization protocol — no locks, no CAS, one atomic store per
//! operation. Each handle caches the opposite index and refreshes it only
//! on apparent full/empty, so the steady state touches one shared cache
//! line per side.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Elements ever popped (owned by the consumer, read by the producer).
    head: AtomicUsize,
    /// Elements ever pushed (owned by the producer, read by the consumer).
    tail: AtomicUsize,
}

// The ring hands each `T` from exactly one thread to exactly one other;
// slots are never aliased thanks to the head/tail protocol below.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both handles are gone; drain whatever was pushed but never popped.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for pos in head..tail {
            unsafe {
                self.buf[pos & self.mask].get().read().assume_init_drop();
            }
        }
    }
}

/// The producing half of a ring created by [`channel`].
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Producer-private copy of `tail` (only the producer advances it).
    tail: usize,
    /// Last observed `head`; refreshed only when the ring looks full.
    cached_head: usize,
    /// Peak occupancy observed right after a successful push (telemetry;
    /// an underestimate only by the consumer's concurrent progress).
    high_water: usize,
    /// Pushes that found the ring full at least once before succeeding.
    stalls: u64,
}

/// The consuming half of a ring created by [`channel`].
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Consumer-private copy of `head` (only the consumer advances it).
    head: usize,
    /// Last observed `tail`; refreshed only when the ring looks empty.
    cached_tail: usize,
}

/// Creates a bounded SPSC ring holding at least `capacity` elements
/// (rounded up to a power of two, minimum 2) and returns its two handles.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            tail: 0,
            cached_head: 0,
            high_water: 0,
            stalls: 0,
        },
        Consumer {
            inner,
            head: 0,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Peak occupancy observed after any successful push. Telemetry only:
    /// the consumer may have drained concurrently, so this is a lower
    /// bound on the true peak — but it is exact for the inline backend.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Pushes that found the ring full at least once before succeeding
    /// (each is a producer spin — backpressure the coordinator felt).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Pushes `value`, or returns it if the ring is full.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail - self.cached_head == cap {
            // Looks full: refresh the consumer's progress. `Acquire` pairs
            // with the consumer's `Release` store of `head`, so the slot we
            // are about to overwrite has really been read out.
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if self.tail - self.cached_head == cap {
                return Err(value);
            }
        }
        unsafe {
            (*self.inner.buf[self.tail & self.inner.mask].get()).write(value);
        }
        // `Release` publishes the slot write above to the consumer's
        // matching `Acquire` load of `tail`.
        self.inner.tail.store(self.tail + 1, Ordering::Release);
        self.tail += 1;
        let occupancy = self.tail - self.cached_head;
        if occupancy > self.high_water {
            self.high_water = occupancy;
        }
        Ok(())
    }

    /// Pushes `value`, spinning (with `yield_now`) while the ring is full.
    /// Callers must guarantee the consumer is alive and draining — in the
    /// shard coordinator this holds because a non-empty ring forces the
    /// receiver to be dispatched, and termination is only signalled after
    /// every producer has gone quiet (see `parallel.rs`).
    pub fn push(&mut self, mut value: T) {
        let mut stalled = false;
        loop {
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => {
                    if !stalled {
                        stalled = true;
                        self.stalls += 1;
                    }
                    value = v;
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest element, or `None` if the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.cached_tail == self.head {
            // Looks empty: refresh the producer's progress. `Acquire` pairs
            // with the producer's `Release` store of `tail`, making the
            // slot contents visible.
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if self.cached_tail == self.head {
                return None;
            }
        }
        let value = unsafe {
            self.inner.buf[self.head & self.inner.mask]
                .get()
                .read()
                .assume_init()
        };
        // `Release` hands the emptied slot back to the producer's matching
        // `Acquire` load of `head`.
        self.inner.head.store(self.head + 1, Ordering::Release);
        self.head += 1;
        Some(value)
    }

    /// Peeks at the oldest element without consuming it.
    pub fn peek(&mut self) -> Option<&T> {
        if self.cached_tail == self.head {
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if self.cached_tail == self.head {
                return None;
            }
        }
        Some(unsafe { (*self.inner.buf[self.head & self.inner.mask].get()).assume_init_ref() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let (p, _c) = channel::<u32>(0);
        assert_eq!(p.capacity(), 2);
        let (p, _c) = channel::<u32>(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = channel::<u32>(8);
        assert_eq!(p.capacity(), 8);
    }

    #[test]
    fn full_and_empty_boundaries() {
        let (mut p, mut c) = channel::<u32>(4);
        assert_eq!(c.try_pop(), None, "fresh ring is empty");
        for i in 0..4 {
            assert!(p.try_push(i).is_ok());
        }
        assert_eq!(p.try_push(99), Err(99), "full ring rejects");
        assert_eq!(c.try_pop(), Some(0));
        assert!(p.try_push(4).is_ok(), "one pop frees one slot");
        assert_eq!(p.try_push(99), Err(99), "and only one");
        for want in 1..=4 {
            assert_eq!(c.try_pop(), Some(want));
        }
        assert_eq!(c.try_pop(), None, "drained ring is empty again");
    }

    #[test]
    fn wraparound_preserves_order_and_values() {
        // Push/pop far more than the capacity so head and tail lap the
        // buffer many times; FIFO order must survive every wrap.
        let (mut p, mut c) = channel::<u64>(4);
        let mut next_pop = 0u64;
        for i in 0..10_000u64 {
            p.push(i);
            // Drain in bursts of 3 to keep occupancy oscillating across
            // the full/empty boundary at misaligned phases.
            if i % 3 == 2 {
                for _ in 0..3 {
                    assert_eq!(c.try_pop(), Some(next_pop));
                    next_pop += 1;
                }
            }
        }
        while let Some(v) = c.try_pop() {
            assert_eq!(v, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, 10_000);
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut p, mut c) = channel::<u32>(2);
        assert!(c.peek().is_none());
        p.push(7);
        assert_eq!(c.peek(), Some(&7));
        assert_eq!(c.peek(), Some(&7), "peek is idempotent");
        assert_eq!(c.try_pop(), Some(7));
        assert!(c.peek().is_none());
    }

    #[test]
    fn cross_thread_ordering_is_fifo_and_lossless() {
        // A tiny ring forces constant wraparound and full/empty contention
        // while a producer thread races the consuming test thread. Every
        // value must arrive exactly once, in order — this is the
        // Release/Acquire pairing under real contention.
        const N: u64 = 200_000;
        let (mut p, mut c) = channel::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i);
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = c.try_pop() {
                assert_eq!(v, expected, "FIFO order violated");
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn cross_thread_batches_are_seen_fully_written() {
        // Payloads with interior structure: the consumer must observe every
        // element of a pushed Vec, i.e. the Release store publishes the
        // whole slot write, not just the pointer.
        const N: usize = 20_000;
        let (mut p, mut c) = channel::<Vec<usize>>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(vec![i, i.wrapping_mul(31), i ^ 0xABCD]);
            }
        });
        let mut seen = 0;
        while seen < N {
            if let Some(batch) = c.try_pop() {
                assert_eq!(batch, vec![seen, seen.wrapping_mul(31), seen ^ 0xABCD]);
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn dropping_the_ring_drops_unpopped_elements() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, mut c) = channel::<Token>(4);
        for _ in 0..3 {
            p.push(Token);
        }
        drop(c.try_pop()); // one popped and dropped by us
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        drop(p);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3, "ring drained on drop");
    }
}
