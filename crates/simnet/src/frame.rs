//! Ethernet frames and the minimal L3/L4 headers the datapath manipulates.
//!
//! The simulator is packet-level but not byte-level: headers are structured
//! Rust values and payloads carry a *length* plus an optional [`bytes::Bytes`]
//! body (used by workloads that need to verify content integrity end to end).
//! Per-byte costs are computed from [`Frame::wire_len`].

use crate::addr::{Ip4, MacAddr, SockAddr};
use crate::flow::FlowTag;
use crate::time::SimTime;
use bytes::Bytes;
use metrics::FlightStamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ethernet header bytes on the wire (dst + src + ethertype + FCS).
pub const ETH_HEADER_LEN: u32 = 18;
/// IPv4 header bytes (no options).
pub const IPV4_HEADER_LEN: u32 = 20;
/// UDP header bytes.
pub const UDP_HEADER_LEN: u32 = 8;
/// TCP header bytes (no options).
pub const TCP_HEADER_LEN: u32 = 20;
/// Extra bytes added by VXLAN encapsulation: outer Ethernet + IP + UDP +
/// VXLAN header.
pub const VXLAN_OVERHEAD: u32 = ETH_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + 8;
/// Conventional Ethernet MTU (L3 bytes).
pub const DEFAULT_MTU: u32 = 1500;

/// Application payload: a declared length, an opaque application tag used to
/// correlate requests and responses, and an optional literal body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Payload {
    /// Payload length in bytes (drives serialization and per-byte costs).
    pub len: u32,
    /// Application correlation tag (e.g. transaction id).
    pub tag: u64,
    /// Timestamp the sending application stamped into the message; carried
    /// so the receiver can compute one-way/round-trip times. In the real
    /// system this lives in the payload; the paper used a TSC passed across
    /// the virtual boundary for the same purpose.
    pub sent_at: SimTime,
    /// Optional literal body for integrity-checking tests.
    pub body: Option<Bytes>,
}

impl Payload {
    /// A payload of `len` bytes with tag 0 and no body.
    pub fn sized(len: u32) -> Payload {
        Payload {
            len,
            ..Default::default()
        }
    }

    /// A payload carrying literal bytes; `len` is set from the body.
    pub fn bytes(body: Bytes) -> Payload {
        Payload {
            len: body.len() as u32,
            body: Some(body),
            ..Default::default()
        }
    }
}

/// Kind of TCP segment, reduced to what the stream model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpKind {
    /// Data-bearing segment.
    Data,
    /// Pure acknowledgement.
    Ack,
}

/// Transport-layer content of an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Application payload.
        payload: Payload,
    },
    /// A (highly simplified) TCP segment: enough for a windowed stream.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number of this segment (in segments, not bytes).
        seq: u64,
        /// Data or pure ACK.
        kind: TcpKind,
        /// Application payload (empty for ACKs).
        payload: Payload,
    },
    /// A VXLAN-encapsulated inner frame (the overlay driver's wire format).
    Vxlan {
        /// VXLAN network identifier.
        vni: u32,
        /// The encapsulated original frame.
        inner: Box<Frame>,
    },
}

impl Transport {
    /// Transport + payload length in bytes (excluding the IP header).
    /// Never zero (headers always exist), hence no `is_empty` twin.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u32 {
        match self {
            Transport::Udp { payload, .. } => UDP_HEADER_LEN + payload.len,
            Transport::Tcp { payload, .. } => TCP_HEADER_LEN + payload.len,
            Transport::Vxlan { inner, .. } => UDP_HEADER_LEN + 8 + inner.wire_len(),
        }
    }

    /// Source port if this is UDP or TCP.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            Transport::Udp { src_port, .. } | Transport::Tcp { src_port, .. } => Some(*src_port),
            Transport::Vxlan { .. } => None,
        }
    }

    /// Destination port if this is UDP or TCP.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            Transport::Udp { dst_port, .. } | Transport::Tcp { dst_port, .. } => Some(*dst_port),
            Transport::Vxlan { .. } => None,
        }
    }

    /// Application payload, if data-bearing.
    pub fn payload(&self) -> Option<&Payload> {
        match self {
            Transport::Udp { payload, .. } | Transport::Tcp { payload, .. } => Some(payload),
            Transport::Vxlan { .. } => None,
        }
    }

    /// Rewrites the source port (SNAT helper).
    pub fn set_src_port(&mut self, port: u16) {
        if let Transport::Udp { src_port, .. } | Transport::Tcp { src_port, .. } = self {
            *src_port = port;
        }
    }

    /// Rewrites the destination port (DNAT helper).
    pub fn set_dst_port(&mut self, port: u16) {
        if let Transport::Udp { dst_port, .. } | Transport::Tcp { dst_port, .. } = self {
            *dst_port = port;
        }
    }
}

/// An IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4 {
    /// Source address.
    pub src: Ip4,
    /// Destination address.
    pub dst: Ip4,
    /// Remaining hop budget; routers decrement and drop at zero.
    pub ttl: u8,
    /// Transport content.
    pub transport: Transport,
}

impl Ipv4 {
    /// Total L3 length in bytes. Never zero (the header alone is 20 B),
    /// hence no `is_empty` twin.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u32 {
        IPV4_HEADER_LEN + self.transport.len()
    }

    /// Source socket address, when ports exist.
    pub fn src_sock(&self) -> Option<SockAddr> {
        self.transport
            .src_port()
            .map(|p| SockAddr::new(self.src, p))
    }

    /// Destination socket address, when ports exist.
    pub fn dst_sock(&self) -> Option<SockAddr> {
        self.transport
            .dst_port()
            .map(|p| SockAddr::new(self.dst, p))
    }
}

/// An Ethernet frame carrying an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC (may be broadcast).
    pub dst_mac: MacAddr,
    /// L3 content.
    pub ip: Ipv4,
    /// Flight-recorder context (per-frame trace id + last stage span).
    /// Not part of the frame's wire content: it compares equal to
    /// everything, so frame equality stays a statement about headers and
    /// payload.
    pub flight: FlightStamp,
    /// Flow-learning probe stamp (hybrid fidelity only). Also equality-
    /// transparent and empty by default; packet-level runs never set it.
    pub flow: FlowTag,
}

impl Frame {
    /// Default initial TTL.
    pub const DEFAULT_TTL: u8 = 64;

    /// Builds a UDP frame.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: SockAddr,
        dst: SockAddr,
        payload: Payload,
    ) -> Frame {
        Frame {
            src_mac,
            dst_mac,
            ip: Ipv4 {
                src: src.ip,
                dst: dst.ip,
                ttl: Self::DEFAULT_TTL,
                transport: Transport::Udp {
                    src_port: src.port,
                    dst_port: dst.port,
                    payload,
                },
            },
            flight: FlightStamp::default(),
            flow: FlowTag::default(),
        }
    }

    /// Builds a TCP frame.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: SockAddr,
        dst: SockAddr,
        seq: u64,
        kind: TcpKind,
        payload: Payload,
    ) -> Frame {
        Frame {
            src_mac,
            dst_mac,
            ip: Ipv4 {
                src: src.ip,
                dst: dst.ip,
                ttl: Self::DEFAULT_TTL,
                transport: Transport::Tcp {
                    src_port: src.port,
                    dst_port: dst.port,
                    seq,
                    kind,
                    payload,
                },
            },
            flight: FlightStamp::default(),
            flow: FlowTag::default(),
        }
    }

    /// Wraps this frame in a VXLAN envelope addressed between two VTEPs.
    pub fn vxlan_encap(
        self,
        vni: u32,
        outer_src_mac: MacAddr,
        outer_dst_mac: MacAddr,
        outer_src: Ip4,
        outer_dst: Ip4,
    ) -> Frame {
        // The envelope inherits the inner frame's flight context so one
        // trace follows the packet across the encapsulation boundary.
        let flight = self.flight;
        // Flow probes deliberately die at the encapsulation boundary:
        // overlay paths are never flow-modeled (the tunnel hops would be
        // invisible to the learned path's fault-escalation checks).
        let mut inner = self;
        inner.flow = FlowTag::default();
        Frame {
            src_mac: outer_src_mac,
            dst_mac: outer_dst_mac,
            ip: Ipv4 {
                src: outer_src,
                dst: outer_dst,
                ttl: Self::DEFAULT_TTL,
                transport: Transport::Vxlan {
                    vni,
                    inner: Box::new(inner),
                },
            },
            flight,
            flow: FlowTag::default(),
        }
    }

    /// Unwraps a VXLAN envelope, returning `(vni, inner)` or the frame
    /// unchanged if it is not VXLAN.
    #[allow(clippy::result_large_err)] // Err IS the frame, handed back by value
    pub fn vxlan_decap(self) -> Result<(u32, Frame), Frame> {
        let flight = self.flight;
        match self.ip.transport {
            Transport::Vxlan { vni, inner } => {
                // Carry the (possibly restamped) outer context back onto
                // the inner frame: stages after decap parent to the last
                // stage the envelope crossed.
                let mut inner = *inner;
                inner.flight = flight;
                Ok((vni, inner))
            }
            _ => Err(self),
        }
    }

    /// Total bytes on the wire.
    pub fn wire_len(&self) -> u32 {
        ETH_HEADER_LEN + self.ip.len()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ip.transport {
            Transport::Udp {
                src_port,
                dst_port,
                payload,
            } => write!(
                f,
                "UDP {}:{} -> {}:{} ({}B tag={})",
                self.ip.src, src_port, self.ip.dst, dst_port, payload.len, payload.tag
            ),
            Transport::Tcp {
                src_port,
                dst_port,
                seq,
                kind,
                payload,
            } => write!(
                f,
                "TCP {}:{} -> {}:{} seq={} {:?} ({}B)",
                self.ip.src, src_port, self.ip.dst, dst_port, seq, kind, payload.len
            ),
            Transport::Vxlan { vni, inner } => {
                write!(
                    f,
                    "VXLAN vni={} {} -> {} [{}]",
                    vni, self.ip.src, self.ip.dst, inner
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock(d: u8, port: u16) -> SockAddr {
        SockAddr::new(Ip4::new(10, 0, 0, d), port)
    }

    #[test]
    fn udp_wire_len() {
        let f = Frame::udp(
            MacAddr::local(1),
            MacAddr::local(2),
            sock(1, 1000),
            sock(2, 2000),
            Payload::sized(1280),
        );
        assert_eq!(f.wire_len(), 18 + 20 + 8 + 1280);
        assert_eq!(f.ip.src_sock(), Some(sock(1, 1000)));
        assert_eq!(f.ip.dst_sock(), Some(sock(2, 2000)));
    }

    #[test]
    fn tcp_ack_is_headers_only() {
        let f = Frame::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            sock(1, 1000),
            sock(2, 2000),
            7,
            TcpKind::Ack,
            Payload::sized(0),
        );
        assert_eq!(f.wire_len(), 18 + 20 + 20);
    }

    #[test]
    fn vxlan_roundtrip_and_overhead() {
        let inner = Frame::udp(
            MacAddr::local(1),
            MacAddr::local(2),
            sock(1, 1000),
            sock(2, 2000),
            Payload::sized(100),
        );
        let inner_len = inner.wire_len();
        let outer = inner.clone().vxlan_encap(
            42,
            MacAddr::local(3),
            MacAddr::local(4),
            Ip4::new(192, 168, 0, 1),
            Ip4::new(192, 168, 0, 2),
        );
        assert_eq!(outer.wire_len(), inner_len + VXLAN_OVERHEAD);
        let (vni, back) = outer.vxlan_decap().unwrap();
        assert_eq!(vni, 42);
        assert_eq!(back, inner);
    }

    #[test]
    fn vxlan_decap_on_plain_frame_is_err() {
        let f = Frame::udp(
            MacAddr::local(1),
            MacAddr::local(2),
            sock(1, 1),
            sock(2, 2),
            Payload::sized(1),
        );
        assert!(f.vxlan_decap().is_err());
    }

    #[test]
    fn nat_port_rewrites() {
        let mut f = Frame::udp(
            MacAddr::local(1),
            MacAddr::local(2),
            sock(1, 1000),
            sock(2, 2000),
            Payload::sized(10),
        );
        f.ip.transport.set_dst_port(8080);
        f.ip.transport.set_src_port(3333);
        assert_eq!(f.ip.transport.dst_port(), Some(8080));
        assert_eq!(f.ip.transport.src_port(), Some(3333));
    }

    #[test]
    fn payload_constructors() {
        let p = Payload::bytes(Bytes::from_static(b"hello"));
        assert_eq!(p.len, 5);
        assert_eq!(p.body.as_deref(), Some(b"hello".as_ref()));
        assert_eq!(Payload::sized(9).len, 9);
    }
}
