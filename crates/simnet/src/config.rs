//! One place to configure a simulation run.
//!
//! [`SimConfig`] is the unified front door for every engine knob that used
//! to be scattered across constructors and ad-hoc `std::env` reads: shard
//! count, synchronization mode, coordinator backend, flight recorder,
//! event tracing, the fault plan, and the simulation [`Fidelity`].
//!
//! The `SIMNET_*` environment variables still work, but they are demoted
//! to *overrides parsed here and nowhere else*:
//!
//! | Variable           | Effect                                          |
//! |--------------------|-------------------------------------------------|
//! | `SIMNET_SHARDS`    | shard count (default 1)                         |
//! | `SIMNET_OPTIMISTIC`| `1`/`true` → optimistic synchronization          |
//! | `SIMNET_INLINE`    | `1` inline / `0` threaded coordinator backend    |
//! | `SIMNET_FIDELITY`  | `packet` (default), `hybrid`, or `flowonly`      |
//! | `SIMNET_TELEMETRY` | `off` (default), `counters`, or `full`          |
//!
//! Typical use:
//!
//! ```
//! use nestless_simnet::{Network, SimConfig};
//!
//! let net = Network::new(42);
//! // ... build the topology, inject frames/timers ...
//! let mut sim = SimConfig::new().shards(2).build(net);
//! ```

use crate::engine::Network;
use crate::fault::FaultPlan;
use crate::flow::Fidelity;
use crate::parallel::ShardedNetwork;
use metrics::{TelemetryConfig, TelemetryMode, TraceConfig};

/// Reads the `SIMNET_SHARDS` environment knob (default 1). Values below 1
/// or unparsable values read as 1.
pub fn shards_from_env() -> usize {
    std::env::var("SIMNET_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Reads the `SIMNET_OPTIMISTIC` environment knob: `1` or `true` enables
/// optimistic (time-warp-lite) synchronization, anything else — including
/// the variable being unset — selects conservative mode.
pub fn optimistic_from_env() -> bool {
    std::env::var("SIMNET_OPTIMISTIC")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false)
}

/// Reads the `SIMNET_INLINE` environment knob: `Some(true)` pins the
/// inline coordinator backend, any other set value pins the threaded one,
/// unset defers to the core-count heuristic.
pub fn inline_from_env() -> Option<bool> {
    std::env::var("SIMNET_INLINE").ok().map(|v| v.trim() == "1")
}

/// Reads the `SIMNET_TELEMETRY` environment knob: `off`, `counters`, or
/// `full`. Unset or unrecognized values read as `None` (caller keeps its
/// programmed default).
pub fn telemetry_from_env() -> Option<TelemetryMode> {
    let v = std::env::var("SIMNET_TELEMETRY").ok()?;
    match v.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "none" => Some(TelemetryMode::Off),
        "counters" => Some(TelemetryMode::Counters),
        "full" | "journal" => Some(TelemetryMode::Full),
        _ => None,
    }
}

/// Reads the `SIMNET_FIDELITY` environment knob: `packet`, `hybrid`, or
/// `flowonly`/`flow-only`/`flow_only`. Unset or unrecognized values read
/// as `None` (caller keeps its programmed default).
pub fn fidelity_from_env() -> Option<Fidelity> {
    let v = std::env::var("SIMNET_FIDELITY").ok()?;
    match v.trim().to_ascii_lowercase().as_str() {
        "packet" => Some(Fidelity::Packet),
        "hybrid" => Some(Fidelity::Hybrid),
        "flowonly" | "flow-only" | "flow_only" => Some(Fidelity::FlowOnly),
        _ => None,
    }
}

/// Builder for a fully configured simulation (see module docs).
///
/// Defaults match a plain `ShardedNetwork::new(net, 1)`: one shard,
/// conservative synchronization, backend by core-count heuristic, flight
/// recorder off, no event trace, no fault plan, packet fidelity.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    shards: Option<usize>,
    optimistic: bool,
    inline: Option<bool>,
    trace: TraceConfig,
    tracing: bool,
    fault: Option<FaultPlan>,
    fidelity: Fidelity,
    telemetry: TelemetryConfig,
}

impl SimConfig {
    /// A config with every knob at its default.
    pub fn new() -> SimConfig {
        SimConfig::default()
    }

    /// A config seeded entirely from the `SIMNET_*` environment: the
    /// defaults of [`SimConfig::new`] with every set variable applied.
    pub fn from_env() -> SimConfig {
        SimConfig::new().env_overrides()
    }

    /// Applies any set `SIMNET_*` environment variable on top of the
    /// current values — the standard pattern for binaries that program
    /// defaults but let the environment win.
    pub fn env_overrides(mut self) -> SimConfig {
        if std::env::var("SIMNET_SHARDS").is_ok() {
            self.shards = Some(shards_from_env());
        }
        if std::env::var("SIMNET_OPTIMISTIC").is_ok() {
            self.optimistic = optimistic_from_env();
        }
        if let Some(inline) = inline_from_env() {
            self.inline = Some(inline);
        }
        if let Some(f) = fidelity_from_env() {
            self.fidelity = f;
        }
        if let Some(mode) = telemetry_from_env() {
            self.telemetry = TelemetryConfig {
                mode,
                ..self.telemetry
            };
        }
        self
    }

    /// Shard-count target (the partitioner may produce fewer).
    pub fn shards(mut self, n: usize) -> SimConfig {
        self.shards = Some(n.max(1));
        self
    }

    /// Optimistic (time-warp-lite) vs conservative synchronization.
    pub fn optimistic(mut self, on: bool) -> SimConfig {
        self.optimistic = on;
        self
    }

    /// Pins the coordinator backend (`Some(true)` inline, `Some(false)`
    /// threaded); `None` defers to `SIMNET_INLINE` then the core count.
    pub fn inline(mut self, inline: Option<bool>) -> SimConfig {
        self.inline = inline;
        self
    }

    /// Flight-recorder configuration.
    pub fn trace(mut self, cfg: TraceConfig) -> SimConfig {
        self.trace = cfg;
        self
    }

    /// Full event tracing (every event's time/device/content retained).
    pub fn tracing(mut self, on: bool) -> SimConfig {
        self.tracing = on;
        self
    }

    /// Installs a deterministic fault plan.
    pub fn fault(mut self, plan: FaultPlan) -> SimConfig {
        self.fault = Some(plan);
        self
    }

    /// Simulation fidelity (packet / hybrid / flow-only).
    pub fn fidelity(mut self, f: Fidelity) -> SimConfig {
        self.fidelity = f;
        self
    }

    /// Telemetry plane configuration (journal mode and ring capacity).
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> SimConfig {
        self.telemetry = cfg;
        self
    }

    /// The configured telemetry plane (for harness-side branching).
    pub fn telemetry_mode(&self) -> TelemetryMode {
        self.telemetry.mode
    }

    /// The configured fidelity (for harness-side branching).
    pub fn fidelity_mode(&self) -> Fidelity {
        self.fidelity
    }

    /// The configured shard target (1 when unset).
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or(1)
    }

    /// Applies the whole configuration to `net` (which must not have
    /// processed events yet) and shards it.
    pub fn build(self, mut net: Network) -> ShardedNetwork {
        net.set_trace_config(self.trace);
        if self.tracing {
            net.set_tracing(true);
        }
        if let Some(plan) = self.fault {
            net.install_fault_plan(plan);
        }
        net.set_fidelity(self.fidelity);
        net.set_telemetry_config(self.telemetry);
        let mut sharded = ShardedNetwork::new(net, self.shards.unwrap_or(1));
        sharded.set_optimistic(self.optimistic);
        sharded.set_inline(self.inline);
        sharded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All env tests share one lock: they mutate process-global state.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn shards_from_env_parses_and_defaults() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::remove_var("SIMNET_SHARDS");
        assert_eq!(shards_from_env(), 1);
        std::env::set_var("SIMNET_SHARDS", "4");
        assert_eq!(shards_from_env(), 4);
        std::env::set_var("SIMNET_SHARDS", "0");
        assert_eq!(shards_from_env(), 1);
        std::env::set_var("SIMNET_SHARDS", "nope");
        assert_eq!(shards_from_env(), 1);
        std::env::remove_var("SIMNET_SHARDS");
    }

    #[test]
    fn optimistic_from_env_parses_and_defaults() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::remove_var("SIMNET_OPTIMISTIC");
        assert!(!optimistic_from_env());
        std::env::set_var("SIMNET_OPTIMISTIC", "1");
        assert!(optimistic_from_env());
        std::env::set_var("SIMNET_OPTIMISTIC", "true");
        assert!(optimistic_from_env());
        std::env::set_var("SIMNET_OPTIMISTIC", "0");
        assert!(!optimistic_from_env());
        std::env::remove_var("SIMNET_OPTIMISTIC");
    }

    #[test]
    fn inline_and_fidelity_env_knobs_parse() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::remove_var("SIMNET_INLINE");
        assert_eq!(inline_from_env(), None);
        std::env::set_var("SIMNET_INLINE", "1");
        assert_eq!(inline_from_env(), Some(true));
        std::env::set_var("SIMNET_INLINE", "0");
        assert_eq!(inline_from_env(), Some(false));
        std::env::remove_var("SIMNET_INLINE");

        std::env::remove_var("SIMNET_FIDELITY");
        assert_eq!(fidelity_from_env(), None);
        std::env::set_var("SIMNET_FIDELITY", "hybrid");
        assert_eq!(fidelity_from_env(), Some(Fidelity::Hybrid));
        std::env::set_var("SIMNET_FIDELITY", "Flow-Only");
        assert_eq!(fidelity_from_env(), Some(Fidelity::FlowOnly));
        std::env::set_var("SIMNET_FIDELITY", "bogus");
        assert_eq!(fidelity_from_env(), None);
        std::env::remove_var("SIMNET_FIDELITY");
    }

    #[test]
    fn telemetry_env_knob_parses_and_overrides() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::remove_var("SIMNET_TELEMETRY");
        assert_eq!(telemetry_from_env(), None);
        std::env::set_var("SIMNET_TELEMETRY", "counters");
        assert_eq!(telemetry_from_env(), Some(TelemetryMode::Counters));
        std::env::set_var("SIMNET_TELEMETRY", "FULL");
        assert_eq!(telemetry_from_env(), Some(TelemetryMode::Full));
        std::env::set_var("SIMNET_TELEMETRY", "off");
        assert_eq!(telemetry_from_env(), Some(TelemetryMode::Off));
        std::env::set_var("SIMNET_TELEMETRY", "bogus");
        assert_eq!(telemetry_from_env(), None);

        // The override keeps a programmed journal capacity, swapping only
        // the mode.
        std::env::set_var("SIMNET_TELEMETRY", "full");
        let cfg = SimConfig::new()
            .telemetry(TelemetryConfig::counters().with_journal_cap(128))
            .env_overrides();
        assert_eq!(cfg.telemetry_mode(), TelemetryMode::Full);
        assert_eq!(cfg.telemetry.journal_cap, 128);
        std::env::remove_var("SIMNET_TELEMETRY");
    }

    #[test]
    fn env_overrides_apply_on_top_of_programmed_defaults() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::remove_var("SIMNET_SHARDS");
        std::env::remove_var("SIMNET_OPTIMISTIC");
        std::env::remove_var("SIMNET_INLINE");
        std::env::set_var("SIMNET_FIDELITY", "hybrid");
        let cfg = SimConfig::new()
            .shards(4)
            .fidelity(Fidelity::Packet)
            .env_overrides();
        assert_eq!(cfg.shard_count(), 4, "unset vars keep programmed values");
        assert_eq!(cfg.fidelity_mode(), Fidelity::Hybrid, "set vars override");
        std::env::remove_var("SIMNET_FIDELITY");
    }

    #[test]
    fn build_wires_every_knob() {
        let _g = ENV_LOCK.lock().unwrap();
        std::env::remove_var("SIMNET_SHARDS");
        let net = Network::new(7);
        let sim = SimConfig::new()
            .optimistic(true)
            .inline(Some(true))
            .fidelity(Fidelity::Hybrid)
            .build(net);
        assert_eq!(sim.nshards(), 1, "empty topology is one shard");
        assert!(sim.optimistic());
    }
}
