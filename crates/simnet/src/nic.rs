//! The virtio-net / vhost NIC pair and the physical NIC.
//!
//! Every VM network interface in the evaluation setup is "based on virtio
//! and uses vhost in the backend" (§5.1): the guest-side frontend does its
//! descriptor work in the guest kernel, while the vhost worker runs in the
//! *host* kernel — which is why the paper observes ≈1.68 cores of host `sys`
//! time "used by the host kernel on behalf of the VMs" (§5.3.4).
//!
//! [`Vhost`] implements virtio's notification-suppression contract: the
//! expensive guest notification ("kick"/interrupt) is paid only when a
//! frame arrives at an *idle* worker; frames arriving while the worker is
//! busy ride the open descriptor batch for just the per-frame copy cost.
//! Closed-loop request/response traffic therefore pays one kick per
//! transaction (latency unaffected by batching), while streams amortize
//! the kick away — which is how vhost reaches high throughput.

use crate::costs::StageCost;
use crate::device::{Device, DeviceKind, PortId};
use crate::engine::DevCtx;
use crate::frame::Frame;
use crate::shared::SharedStation;
use crate::time::SimTime;
use metrics::MetricId;
use std::collections::VecDeque;

/// Default virtqueue depth (QEMU's default tx/rx ring size).
pub const DEFAULT_RING_SIZE: usize = 256;

/// Guest-side virtio-net frontend: a two-port pass-through whose descriptor
/// work is charged to the guest kernel (on the guest's shared station).
///
/// Port 0 faces the guest network stack, port 1 faces the vhost backend.
pub struct VirtioNic {
    cost: StageCost,
    station: SharedStation,
    /// Interned (frames counter, flight stage) ids.
    ids: Option<(MetricId, MetricId)>,
}

impl VirtioNic {
    /// Creates the frontend with the guest kernel's station.
    pub fn new(cost: StageCost, station: SharedStation) -> VirtioNic {
        VirtioNic {
            cost,
            station,
            ids: None,
        }
    }
}

impl Device for VirtioNic {
    fn kind(&self) -> DeviceKind {
        DeviceKind::VirtioNic
    }

    fn on_frame(&mut self, port: PortId, mut frame: Frame, ctx: &mut DevCtx<'_>) {
        assert!(port.0 < 2, "virtio frontend has two ports");
        let (frames_id, stage) = *self
            .ids
            .get_or_insert_with(|| (ctx.metric("virtio.frames"), ctx.metric("stage.virtio")));
        let done = self.station.serve(&self.cost, frame.wire_len(), ctx);
        ctx.count_id(frames_id, 1.0);
        ctx.stage_frame(stage, &mut frame, done);
        let out = if port == PortId::P0 {
            PortId::P1
        } else {
            PortId::P0
        };
        ctx.transmit_at(done, out, frame);
    }
}

/// Host-kernel vhost worker backing one VM NIC.
///
/// Port 0 links to the VM side (virtio frontend), port 1 to the host side
/// (bridge or hostlo TAP queue). Service work is charged `sys` at the host.
pub struct Vhost {
    /// Per-frame copy/descriptor cost.
    per_frame: StageCost,
    /// Per-notification (kick/interrupt) cost.
    kick: StageCost,
    /// With suppression (the virtio default), the kick is paid only on the
    /// idle->busy transition; without it, every frame pays the kick (the
    /// behaviour of an exclusive queue that must notify its one consumer
    /// per frame, as on hostlo endpoints).
    suppression: bool,
    /// Descriptor ring depth; arrivals beyond this backlog are dropped
    /// (ring-full), as a real virtqueue does under overload.
    ring_size: usize,
    /// Completion times of in-flight descriptors (per direction).
    inflight: [VecDeque<SimTime>; 2],
    station: SharedStation,
    ids: Option<VhostIds>,
}

/// Interned counter ids, resolved on the first frame and cached.
#[derive(Clone, Copy)]
struct VhostIds {
    frames: MetricId,
    ring_full: MetricId,
    kicks: MetricId,
    suppressed: MetricId,
    stage: MetricId,
}

impl Vhost {
    /// Creates a vhost worker. `suppression: false` makes every frame pay
    /// the notification cost.
    pub fn new(
        per_frame: StageCost,
        kick: StageCost,
        suppression: bool,
        station: SharedStation,
    ) -> Vhost {
        Vhost {
            per_frame,
            kick,
            suppression,
            ring_size: DEFAULT_RING_SIZE,
            inflight: [VecDeque::new(), VecDeque::new()],
            station,
            ids: None,
        }
    }

    /// Overrides the virtqueue depth.
    pub fn with_ring_size(mut self, n: usize) -> Vhost {
        assert!(n > 0, "ring needs at least one descriptor");
        self.ring_size = n;
        self
    }

    fn out_port(port: PortId) -> PortId {
        if port == PortId::P0 {
            PortId::P1
        } else {
            PortId::P0
        }
    }
}

impl Device for Vhost {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Vhost
    }

    fn on_frame(&mut self, port: PortId, mut frame: Frame, ctx: &mut DevCtx<'_>) {
        assert!(port.0 < 2, "vhost has two ports");
        let ids = *self.ids.get_or_insert_with(|| VhostIds {
            frames: ctx.metric("vhost.frames"),
            ring_full: ctx.metric("vhost.ring_full"),
            kicks: ctx.metric("vhost.kicks"),
            suppressed: ctx.metric("vhost.suppressed"),
            stage: ctx.metric("stage.vhost"),
        });
        ctx.count_id(ids.frames, 1.0);

        // Descriptor accounting: retire completed descriptors, then check
        // ring occupancy; a full ring drops the frame (virtio backpressure).
        let dir = port.0;
        let now = ctx.now();
        while self.inflight[dir].front().is_some_and(|&t| t <= now) {
            self.inflight[dir].pop_front();
        }
        if self.inflight[dir].len() >= self.ring_size {
            ctx.count_id(ids.ring_full, 1.0);
            return;
        }

        let idle = self.station.busy_until() <= ctx.now();
        if idle || !self.suppression {
            ctx.count_id(ids.kicks, 1.0);
            self.station.serve(&self.kick, 0, ctx);
        } else {
            ctx.count_id(ids.suppressed, 1.0);
        }
        let done = self.station.serve(&self.per_frame, frame.wire_len(), ctx);
        self.inflight[dir].push_back(done);
        ctx.stage_frame(ids.stage, &mut frame, done);
        ctx.transmit_at(done, Self::out_port(port), frame);
    }
}

/// Physical NIC: a plain two-port store-and-forward stage (wire side on
/// port 0, host stack side on port 1).
pub struct PhysNic {
    cost: StageCost,
    station: SharedStation,
    /// Interned flight stage id.
    stage_id: Option<MetricId>,
}

impl PhysNic {
    /// Creates a physical NIC with its DMA/descriptor cost.
    pub fn new(cost: StageCost, station: SharedStation) -> PhysNic {
        PhysNic {
            cost,
            station,
            stage_id: None,
        }
    }
}

impl Device for PhysNic {
    fn kind(&self) -> DeviceKind {
        DeviceKind::PhysNic
    }

    fn on_frame(&mut self, port: PortId, mut frame: Frame, ctx: &mut DevCtx<'_>) {
        assert!(port.0 < 2, "physical NIC has two ports");
        let stage = *self
            .stage_id
            .get_or_insert_with(|| ctx.metric("stage.physnic"));
        let done = self.station.serve(&self.cost, frame.wire_len(), ctx);
        ctx.stage_frame(stage, &mut frame, done);
        let out = if port == PortId::P0 {
            PortId::P1
        } else {
            PortId::P0
        };
        ctx.transmit_at(done, out, frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::engine::StopCondition;
    use crate::engine::{LinkParams, Network};
    use crate::testutil::{frame_between, CaptureSink};
    use crate::time::SimDuration;
    use metrics::{CpuCategory, CpuLocation};

    fn kick() -> StageCost {
        StageCost::fixed(3_000, 0.0, CpuCategory::Sys)
    }

    fn per_frame() -> StageCost {
        StageCost::fixed(500, 1.0, CpuCategory::Sys)
    }

    fn build(suppression: bool) -> (Network, crate::device::DeviceId) {
        let mut net = Network::new(0);
        let vhost = net.add_device(
            "vhost",
            CpuLocation::Host,
            Box::new(Vhost::new(
                per_frame(),
                kick(),
                suppression,
                SharedStation::new(),
            )),
        );
        let sink = net.add_device(
            "host",
            CpuLocation::Host,
            Box::new(CaptureSink::new("host")),
        );
        net.connect(vhost, PortId::P1, sink, PortId::P0, LinkParams::default());
        (net, vhost)
    }

    #[test]
    fn without_suppression_every_frame_pays_the_kick() {
        let (mut net, vhost) = build(false);
        for i in 0..3 {
            net.inject_frame(
                SimDuration::micros(i * 100),
                vhost,
                PortId::P0,
                frame_between(MacAddr::local(1), MacAddr::local(2), 100),
            );
        }
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("host.received"), 3.0);
        assert_eq!(net.store().counter("vhost.kicks"), 3.0);
        // 3 kicks (3000) + 3 frames (500 + 146 bytes wire)
        let expect = 3 * 3_000 + 3 * (500 + 146);
        assert_eq!(
            net.cpu().get(CpuLocation::Host, CpuCategory::Sys),
            expect as u64
        );
    }

    #[test]
    fn idle_arrival_is_processed_immediately() {
        let (mut net, vhost) = build(true);
        net.inject_frame(
            SimDuration::ZERO,
            vhost,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 100),
        );
        net.run(StopCondition::Idle);
        // kick 3000 + frame 646 = 3646 ns; no batching delay.
        assert_eq!(net.store().samples("host.arrival_ns"), &[3_646.0]);
    }

    #[test]
    fn busy_arrivals_suppress_the_kick() {
        let (mut net, vhost) = build(true);
        // 5 frames back-to-back: only the first finds the worker idle.
        for _ in 0..5 {
            net.inject_frame(
                SimDuration::ZERO,
                vhost,
                PortId::P0,
                frame_between(MacAddr::local(1), MacAddr::local(2), 100),
            );
        }
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("host.received"), 5.0);
        assert_eq!(net.store().counter("vhost.kicks"), 1.0);
        assert_eq!(net.store().counter("vhost.suppressed"), 4.0);
        let expect = 3_000 + 5 * 646;
        assert_eq!(
            net.cpu().get(CpuLocation::Host, CpuCategory::Sys),
            expect as u64
        );
    }

    #[test]
    fn ring_overflow_drops_frames() {
        let mut net = Network::new(0);
        let vhost = net.add_device(
            "vhost",
            CpuLocation::Host,
            Box::new(Vhost::new(per_frame(), kick(), true, SharedStation::new()).with_ring_size(4)),
        );
        let sink = net.add_device(
            "host",
            CpuLocation::Host,
            Box::new(CaptureSink::new("host")),
        );
        net.connect(vhost, PortId::P1, sink, PortId::P0, LinkParams::default());
        // 10 frames at the same instant against a 4-deep ring.
        for _ in 0..10 {
            net.inject_frame(
                SimDuration::ZERO,
                vhost,
                PortId::P0,
                frame_between(MacAddr::local(1), MacAddr::local(2), 100),
            );
        }
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("vhost.ring_full"), 6.0);
        assert_eq!(net.store().counter("host.received"), 4.0);
        // Once drained, the ring accepts traffic again.
        net.inject_frame(
            SimDuration::millis(1),
            vhost,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 100),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("host.received"), 5.0);
    }

    #[test]
    fn suppression_resets_once_idle_again() {
        let (mut net, vhost) = build(true);
        net.inject_frame(
            SimDuration::ZERO,
            vhost,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 100),
        );
        // Second frame long after the first completed: idle again -> kick.
        net.inject_frame(
            SimDuration::millis(1),
            vhost,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 100),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("vhost.kicks"), 2.0);
    }

    #[test]
    fn directions_are_independent_ports() {
        let (mut net, vhost) = build(true);
        let vm = net.add_device("vm", CpuLocation::Vm(1), Box::new(CaptureSink::new("vm")));
        net.connect(vhost, PortId::P0, vm, PortId::P0, LinkParams::default());
        net.inject_frame(
            SimDuration::ZERO,
            vhost,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 10),
        );
        net.inject_frame(
            SimDuration::ZERO,
            vhost,
            PortId::P1,
            frame_between(MacAddr::local(2), MacAddr::local(1), 10),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("host.received"), 1.0);
        assert_eq!(net.store().counter("vm.received"), 1.0);
    }

    #[test]
    fn virtio_charges_guest_kernel() {
        let mut net = Network::new(0);
        let nic = net.add_device(
            "virtio",
            CpuLocation::Vm(7),
            Box::new(VirtioNic::new(
                StageCost::fixed(2_000, 0.0, CpuCategory::Sys),
                SharedStation::new(),
            )),
        );
        let sink = net.add_device("s", CpuLocation::Vm(7), Box::new(CaptureSink::new("s")));
        net.connect(nic, PortId::P0, sink, PortId::P0, LinkParams::default());
        net.inject_frame(
            SimDuration::ZERO,
            nic,
            PortId::P1,
            frame_between(MacAddr::local(1), MacAddr::local(2), 10),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("s.received"), 1.0);
        assert_eq!(net.cpu().get(CpuLocation::Vm(7), CpuCategory::Sys), 2_000);
        assert_eq!(net.cpu().get(CpuLocation::Host, CpuCategory::Guest), 2_000);
    }

    #[test]
    fn phys_nic_passthrough() {
        let mut net = Network::new(0);
        let nic = net.add_device(
            "eth0",
            CpuLocation::Host,
            Box::new(PhysNic::new(
                StageCost::fixed(1_000, 0.0, CpuCategory::Sys),
                SharedStation::new(),
            )),
        );
        let sink = net.add_device("s", CpuLocation::Host, Box::new(CaptureSink::new("s")));
        net.connect(nic, PortId::P1, sink, PortId::P0, LinkParams::default());
        net.inject_frame(
            SimDuration::ZERO,
            nic,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 10),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("s.received"), 1.0);
    }
}
