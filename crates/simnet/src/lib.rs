//! # nestless-simnet
//!
//! A deterministic, discrete-event, packet-level network simulator modeling
//! the Linux virtual-networking building blocks that *Nested Virtualization
//! Without the Nest* (ICPP 2019) manipulates: learning bridges, veth pairs,
//! loopback interfaces, Netfilter NAT with connection tracking, virtio/vhost
//! NICs with adaptive interrupt coalescing, and application endpoints.
//!
//! ## Model
//!
//! * Every datapath element is a [`device::Device`] driven by the event
//!   engine in [`engine::Network`].
//! * Each element serves frames through a FIFO single-server
//!   [`device::Station`]; all stages belonging to one kernel (e.g. a guest's
//!   softirq core) can share a station via [`shared::SharedStation`],
//!   reproducing the contention that makes nested virtualization slow.
//! * Service times come from the calibrated [`costs::CostModel`]; CPU time
//!   is attributed to the paper's `usr`/`sys`/`soft`/`guest` categories per
//!   host/VM location.
//!
//! ## Example
//!
//! ```
//! use nestless_simnet::engine::{Network, LinkParams};
//! use nestless_simnet::device::PortId;
//! use nestless_simnet::bridge::Bridge;
//! use nestless_simnet::shared::SharedStation;
//! use nestless_simnet::costs::StageCost;
//! use metrics::{CpuCategory, CpuLocation};
//!
//! let mut net = Network::new(42);
//! let br = net.add_device(
//!     "br0",
//!     CpuLocation::Host,
//!     Box::new(Bridge::new(2, StageCost::fixed(1_000, 0.3, CpuCategory::Sys), SharedStation::new())),
//! );
//! assert_eq!(net.device_name(br), "br0");
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod bridge;
pub mod config;
pub mod costs;
pub mod device;
pub mod endpoint;
pub mod engine;
pub mod fault;
pub mod filter;
pub mod flight;
pub mod flow;
pub mod frame;
pub mod nat;
pub mod nic;
pub mod parallel;
pub mod rate;
pub mod shared;
pub mod spsc;
pub mod testutil;
pub mod time;
pub mod veth;

pub use addr::{Ip4, Ip4Net, MacAddr, SockAddr};
pub use config::{telemetry_from_env, SimConfig};
pub use costs::{CostModel, StageCost};
pub use device::{Device, DeviceId, DeviceKind, PortId, Station};
pub use endpoint::{AppApi, Application, Endpoint, IfaceConf, Incoming, START_TOKEN};
pub use engine::{DevCtx, LinkParams, Network, SampleStore, StopCondition};
pub use fault::{FaultPlan, LinkFault, LinkFaultKind, StallWindow};
pub use filter::{
    Chain, ConnState, FilterControl, FilterRule, HookIds, StateMask, StateTracker, Verdict,
    NO_RULE, REJECT_TAG,
};
pub use flight::{
    chrome_counter_tracks, chrome_trace_network, chrome_trace_report, snapshot_network,
    snapshot_report, telemetry_network, telemetry_report,
};
pub use flow::Fidelity;
pub use frame::{Frame, Payload, TcpKind, Transport};
pub use parallel::{
    optimistic_from_env, shards_from_env, PartitionPlan, RunReport, ShardedNetwork, SyncStats,
};
pub use shared::SharedStation;
pub use time::{SimDuration, SimTime};

// Telemetry-plane vocabulary (defined in the `metrics` crate) re-exported
// so simulation harnesses need only one dependency for journal access.
pub use metrics::{
    FlowEscalateReason, JournalKind, JournalRecord, JournalRing, JournalTag, TelemetryConfig,
    TelemetryMode, TelemetrySnapshot,
};
