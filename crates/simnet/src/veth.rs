//! Virtual Ethernet pair.
//!
//! A veth pair is the Linux mechanism for crossing a network-namespace
//! boundary: one end lives in the pod's namespace, the other is enslaved to
//! the node bridge (fig. 1a, step 1: "the packet is placed on the pod's
//! internal interface and crosses the pod's boundary"). Modeled as a single
//! two-port device whose crossing charges kernel (`sys`) time.

use crate::costs::StageCost;
use crate::device::{Device, DeviceKind, PortId};
use crate::engine::DevCtx;
use crate::frame::Frame;
use crate::shared::SharedStation;
use metrics::MetricId;

/// A veth pair: frames entering port 0 leave port 1 and vice versa.
pub struct VethPair {
    cost: StageCost,
    station: SharedStation,
    /// Interned (crossings counter, flight stage) ids.
    ids: Option<(MetricId, MetricId)>,
}

impl VethPair {
    /// Creates a veth pair with the given crossing cost, serialized on the
    /// owning kernel's station.
    pub fn new(cost: StageCost, station: SharedStation) -> VethPair {
        VethPair {
            cost,
            station,
            ids: None,
        }
    }
}

impl Device for VethPair {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Veth
    }

    fn on_frame(&mut self, port: PortId, mut frame: Frame, ctx: &mut DevCtx<'_>) {
        assert!(port.0 < 2, "veth pair has exactly two ends");
        let (crossings, stage) = *self
            .ids
            .get_or_insert_with(|| (ctx.metric("veth.crossings"), ctx.metric("stage.veth")));
        let done = self.station.serve(&self.cost, frame.wire_len(), ctx);
        ctx.count_id(crossings, 1.0);
        ctx.stage_frame(stage, &mut frame, done);
        let out = if port == PortId::P0 {
            PortId::P1
        } else {
            PortId::P0
        };
        ctx.transmit_at(done, out, frame);
    }
}

/// In-namespace loopback interface.
///
/// The pod's `localhost` — "a virtual loopback networking device: it sends
/// back any packet it receives" (§4.1). All sockets of the namespace attach
/// as ports; a frame received on any port is delivered to every *other*
/// port, and endpoints filter by transport port exactly like the kernel
/// demultiplexes loopback traffic.
pub struct Loopback {
    nports: usize,
    cost: StageCost,
    station: SharedStation,
    /// Interned (frames counter, flight stage) ids.
    ids: Option<(MetricId, MetricId)>,
}

impl Loopback {
    /// Creates a loopback with `nports` attached sockets.
    pub fn new(nports: usize, cost: StageCost, station: SharedStation) -> Loopback {
        assert!(
            nports >= 2,
            "loopback needs at least two attached endpoints"
        );
        Loopback {
            nports,
            cost,
            station,
            ids: None,
        }
    }
}

impl Device for Loopback {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Loopback
    }

    fn on_frame(&mut self, port: PortId, mut frame: Frame, ctx: &mut DevCtx<'_>) {
        assert!(port.0 < self.nports, "frame on nonexistent loopback port");
        let (frames, stage) = *self
            .ids
            .get_or_insert_with(|| (ctx.metric("loopback.frames"), ctx.metric("stage.loopback")));
        let done = self.station.serve(&self.cost, frame.wire_len(), ctx);
        ctx.count_id(frames, 1.0);
        ctx.stage_frame(stage, &mut frame, done);
        for p in 0..self.nports {
            if p != port.0 && ctx.is_linked(PortId(p)) {
                ctx.transmit_at(done, PortId(p), frame.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::engine::StopCondition;
    use crate::engine::{LinkParams, Network};
    use crate::testutil::{frame_between, CaptureSink};
    use crate::time::SimDuration;
    use metrics::{CpuCategory, CpuLocation};

    #[test]
    fn veth_crosses_both_ways() {
        let mut net = Network::new(0);
        let veth = net.add_device(
            "veth",
            CpuLocation::Vm(1),
            Box::new(VethPair::new(
                StageCost::fixed(500, 0.0, CpuCategory::Sys),
                SharedStation::new(),
            )),
        );
        let a = net.add_device("a", CpuLocation::Vm(1), Box::new(CaptureSink::new("a")));
        let b = net.add_device("b", CpuLocation::Vm(1), Box::new(CaptureSink::new("b")));
        net.connect(veth, PortId::P0, a, PortId::P0, LinkParams::default());
        net.connect(veth, PortId::P1, b, PortId::P0, LinkParams::default());

        net.inject_frame(
            SimDuration::ZERO,
            veth,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 64),
        );
        net.inject_frame(
            SimDuration::ZERO,
            veth,
            PortId::P1,
            frame_between(MacAddr::local(2), MacAddr::local(1), 64),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("a.received"), 1.0);
        assert_eq!(net.store().counter("b.received"), 1.0);
        assert_eq!(net.store().counter("veth.crossings"), 2.0);
    }

    #[test]
    fn veth_shares_station_with_sibling_devices() {
        // Two veths on the same kernel station: services serialize.
        let mut net = Network::new(0);
        let station = SharedStation::new();
        let cost = StageCost::fixed(1_000, 0.0, CpuCategory::Sys);
        let v1 = net.add_device(
            "v1",
            CpuLocation::Vm(1),
            Box::new(VethPair::new(cost, station.clone())),
        );
        let v2 = net.add_device(
            "v2",
            CpuLocation::Vm(1),
            Box::new(VethPair::new(cost, station)),
        );
        let s1 = net.add_device("s1", CpuLocation::Vm(1), Box::new(CaptureSink::new("s1")));
        let s2 = net.add_device("s2", CpuLocation::Vm(1), Box::new(CaptureSink::new("s2")));
        net.connect(v1, PortId::P1, s1, PortId::P0, LinkParams::default());
        net.connect(v2, PortId::P1, s2, PortId::P0, LinkParams::default());
        let f = frame_between(MacAddr::local(1), MacAddr::local(2), 64);
        net.inject_frame(SimDuration::ZERO, v1, PortId::P0, f.clone());
        net.inject_frame(SimDuration::ZERO, v2, PortId::P0, f);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().samples("s1.arrival_ns"), &[1_000.0]);
        assert_eq!(
            net.store().samples("s2.arrival_ns"),
            &[2_000.0],
            "second served after first"
        );
    }

    #[test]
    fn loopback_delivers_to_all_other_ports() {
        let mut net = Network::new(0);
        let lo = net.add_device(
            "lo",
            CpuLocation::Vm(1),
            Box::new(Loopback::new(
                3,
                StageCost::fixed(100, 0.0, CpuCategory::Sys),
                SharedStation::new(),
            )),
        );
        let sinks: Vec<_> = (0..3)
            .map(|i| {
                let s = net.add_device(
                    format!("c{i}"),
                    CpuLocation::Vm(1),
                    Box::new(CaptureSink::new(format!("c{i}"))),
                );
                net.connect(lo, PortId(i), s, PortId::P0, LinkParams::default());
                s
            })
            .collect();
        let _ = sinks;
        net.inject_frame(
            SimDuration::ZERO,
            lo,
            PortId(1),
            frame_between(MacAddr::local(1), MacAddr::BROADCAST, 64),
        );
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("c0.received"), 1.0);
        assert_eq!(net.store().counter("c1.received"), 0.0, "no echo to sender");
        assert_eq!(net.store().counter("c2.received"), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn loopback_needs_two_ports() {
        Loopback::new(
            1,
            StageCost::fixed(1, 0.0, CpuCategory::Sys),
            SharedStation::new(),
        );
    }
}
