//! Netfilter-style NAT router.
//!
//! Docker publishes container ports by installing DNAT rules in the node's
//! PREROUTING chain and masquerading egress traffic; the VMM does the same at
//! the host level. This device models that whole traversal — conntrack
//! lookup, rule walk, rewrite, routing — as a single softirq-charged stage,
//! which is exactly the work BrFusion removes from the guest ("NAT rules are
//! applied on packets via hooks executed by software interrupts", §5.2.3).

use crate::addr::{Ip4, Ip4Net, MacAddr, SockAddr};
use crate::costs::StageCost;
use crate::device::{Device, DeviceKind, PortId};
use crate::engine::DevCtx;
use crate::filter::{Chain, ConnState, FilterControl, HookIds, Verdict, REJECT_TAG};
use crate::frame::{Frame, Payload, Transport};
use crate::shared::SharedStation;
use crate::time::SimTime;
use metrics::{JournalKind, MetricId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Transport protocol selector for NAT rules and conntrack keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// UDP.
    Udp,
    /// TCP.
    Tcp,
}

impl Proto {
    /// Classifies a transport header; `None` for port-less encapsulations.
    pub fn of(t: &Transport) -> Option<Proto> {
        match t {
            Transport::Udp { .. } => Some(Proto::Udp),
            Transport::Tcp { .. } => Some(Proto::Tcp),
            Transport::Vxlan { .. } => None,
        }
    }
}

/// One network interface of the router (index = port id).
#[derive(Debug, Clone)]
pub struct Interface {
    /// Interface MAC address.
    pub mac: MacAddr,
    /// Interface IPv4 address.
    pub ip: Ip4,
    /// Directly-connected subnet.
    pub net: Ip4Net,
    /// Static neighbor (ARP) table for this interface.
    pub neigh: HashMap<Ip4, MacAddr>,
}

impl Interface {
    /// Builds an interface with an empty neighbor table.
    pub fn new(mac: MacAddr, ip: Ip4, net: Ip4Net) -> Interface {
        Interface {
            mac,
            ip,
            net,
            neigh: HashMap::new(),
        }
    }

    /// Adds a neighbor entry.
    pub fn with_neigh(mut self, ip: Ip4, mac: MacAddr) -> Interface {
        self.neigh.insert(ip, mac);
        self
    }
}

/// A destination-NAT (port publishing) rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnatRule {
    /// Protocol the rule applies to.
    pub proto: Proto,
    /// Destination IP to match; `None` matches any of the router's own
    /// interface addresses (Docker's `-p` behaviour).
    pub match_ip: Option<Ip4>,
    /// Destination port to match.
    pub match_port: u16,
    /// Translated destination.
    pub to: SockAddr,
}

/// A load-balancing DNAT rule: new flows rotate round-robin over the
/// backends (iptables' `statistic --mode nth`, what kube-proxy installs
/// for a Service). Established flows stick to their backend via conntrack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LbRule {
    /// Protocol the rule applies to.
    pub proto: Proto,
    /// Virtual (service) address to match.
    pub vip: SockAddr,
    /// Backend endpoints, rotated per new flow.
    pub backends: Vec<SockAddr>,
}

/// A static route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination subnet.
    pub net: Ip4Net,
    /// Egress port.
    pub port: PortId,
    /// Next-hop IP; `None` means the destination is on-link.
    pub via: Option<Ip4>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConnKey {
    proto: Proto,
    src: SockAddr,
    dst: SockAddr,
}

#[derive(Debug, Clone, Copy)]
struct ConnEntry {
    new_src: SockAddr,
    new_dst: SockAddr,
    last_used: crate::time::SimTime,
}

#[derive(Debug, Default)]
struct NatConfig {
    ifaces: Vec<Interface>,
    dnat: Vec<DnatRule>,
    lb: Vec<(LbRule, usize)>,
    masquerade: HashSet<PortId>,
    routes: Vec<Route>,
    /// Conntrack flush requests queued by [`NatControl::remove_dnat`]. The
    /// router drains them on its next frame, and every read path filters
    /// against them, so un-published flows stop translating the instant
    /// the rule is gone (conntrack -D alongside iptables -D).
    flush: Vec<DnatRule>,
    /// Bumped on every translation-affecting mutation. The flow fast path
    /// compares it per emission (see `flow.rs`), so a rule change
    /// escalates overlapping learned flows immediately instead of
    /// coasting for up to `NAT_PROBE_EVERY - 1` synthesized deliveries.
    epoch: u64,
}

impl NatConfig {
    fn is_local_ip(&self, ip: Ip4) -> bool {
        self.ifaces.iter().any(|i| i.ip == ip)
    }

    fn route_for(&self, dst: Ip4) -> Option<Route> {
        // Directly-connected subnets take precedence, then static routes.
        for (idx, iface) in self.ifaces.iter().enumerate() {
            if iface.net.contains(dst) {
                return Some(Route {
                    net: iface.net,
                    port: PortId(idx),
                    via: None,
                });
            }
        }
        self.routes.iter().copied().find(|r| r.net.contains(dst))
    }
}

/// A cloneable handle to a router's runtime-mutable configuration.
///
/// This models `iptables`/`ip` administration: Docker and the orchestrator
/// install DNAT rules, routes and neighbor entries while the datapath is
/// live, long after the router device was inserted into the network.
#[derive(Debug, Clone, Default)]
pub struct NatControl(std::sync::Arc<parking_lot::Mutex<NatConfig>>);

impl NatControl {
    /// Adds a DNAT (port-publishing) rule.
    pub fn add_dnat(&self, rule: DnatRule) {
        let mut cfg = self.0.lock();
        cfg.dnat.push(rule);
        cfg.epoch += 1;
    }

    /// Enables masquerade (source NAT to the interface address) on `port`.
    pub fn masquerade_on(&self, port: PortId) {
        let mut cfg = self.0.lock();
        cfg.masquerade.insert(port);
        cfg.epoch += 1;
    }

    /// Adds a static route. Routes are matched longest-prefix-first.
    pub fn add_route(&self, route: Route) {
        let mut cfg = self.0.lock();
        cfg.routes.push(route);
        cfg.routes.sort_by_key(|r| std::cmp::Reverse(r.net.prefix));
        cfg.epoch += 1;
    }

    /// Adds a neighbor (ARP) entry on interface `port`.
    pub fn add_neigh(&self, port: PortId, ip: Ip4, mac: MacAddr) {
        self.0.lock().ifaces[port.0].neigh.insert(ip, mac);
    }

    /// MAC of interface `port`.
    pub fn iface_mac(&self, port: PortId) -> MacAddr {
        self.0.lock().ifaces[port.0].mac
    }

    /// IP of interface `port`.
    pub fn iface_ip(&self, port: PortId) -> Ip4 {
        self.0.lock().ifaces[port.0].ip
    }

    /// Number of DNAT rules installed.
    pub fn dnat_len(&self) -> usize {
        self.0.lock().dnat.len()
    }

    /// Removes every DNAT rule matching `proto` + `match_port` (an
    /// `iptables -D` analogue; used when a publication moves to a new
    /// backend). Returns how many rules were removed.
    ///
    /// Conntrack entries established through a removed rule are flushed
    /// (the `conntrack -D` every un-publish needs): without the flush,
    /// established flows kept translating to the old backend forever —
    /// after the rule said they must not.
    pub fn remove_dnat(&self, proto: Proto, match_port: u16) -> usize {
        let mut cfg = self.0.lock();
        let mut removed = Vec::new();
        cfg.dnat.retain(|r| {
            let hit = r.proto == proto && r.match_port == match_port;
            if hit {
                removed.push(*r);
            }
            !hit
        });
        let n = removed.len();
        cfg.flush.extend(removed);
        cfg.epoch += 1;
        n
    }

    /// The translation-mutation epoch: bumped by every rule change. The
    /// flow fast path stamps learned paths with it and re-validates a
    /// flow the moment the epoch moves.
    pub fn change_epoch(&self) -> u64 {
        self.0.lock().epoch
    }

    /// Installs a round-robin load-balancing rule for a service VIP.
    ///
    /// # Panics
    /// Panics on an empty backend list.
    pub fn add_lb(&self, rule: LbRule) {
        assert!(
            !rule.backends.is_empty(),
            "a service needs at least one backend"
        );
        let mut cfg = self.0.lock();
        cfg.lb.push((rule, 0));
        cfg.epoch += 1;
    }
}

/// The NAT router device.
pub struct NatRouter {
    cfg: NatControl,
    conntrack: HashMap<ConnKey, ConnEntry>,
    /// Unordered address-pair index over live conntrack entries, for the
    /// filter table's RELATED state match (canonical low/high ip order).
    pair_last: HashMap<(Proto, Ip4, Ip4), SimTime>,
    conntrack_timeout: crate::time::SimDuration,
    frames_since_gc: u32,
    next_nat_port: u16,
    cost: StageCost,
    station: SharedStation,
    /// The FORWARD filter chain, evaluated post-DNAT / pre-SNAT like the
    /// kernel's filter-table hook. Costs one atomic load until engaged.
    filter: FilterControl,
    ids: Option<NatIds>,
    filter_ids: Option<HookIds>,
}

/// Interned counter ids, resolved on the first frame and cached.
#[derive(Clone, Copy)]
struct NatIds {
    not_for_us: MetricId,
    drop_ttl: MetricId,
    drop_no_route: MetricId,
    drop_no_neigh: MetricId,
    drop_port_exhausted: MetricId,
    routed: MetricId,
    conntrack_hit: MetricId,
    conntrack_new: MetricId,
    lb_assigned: MetricId,
    translated: MetricId,
    stage: MetricId,
}

impl NatIds {
    fn resolve(ctx: &mut DevCtx<'_>) -> NatIds {
        NatIds {
            not_for_us: ctx.metric("nat.not_for_us"),
            drop_ttl: ctx.metric("nat.drop_ttl"),
            drop_no_route: ctx.metric("nat.drop_no_route"),
            drop_no_neigh: ctx.metric("nat.drop_no_neigh"),
            drop_port_exhausted: ctx.metric("nat.drop_port_exhausted"),
            routed: ctx.metric("nat.routed"),
            conntrack_hit: ctx.metric("nat.conntrack_hit"),
            conntrack_new: ctx.metric("nat.conntrack_new"),
            lb_assigned: ctx.metric("nat.lb_assigned"),
            translated: ctx.metric("nat.translated"),
            stage: ctx.metric("stage.nat"),
        }
    }
}

impl NatRouter {
    /// First local port used for masquerade allocations (Linux default
    /// ephemeral range starts near here).
    pub const NAT_PORT_BASE: u16 = 32768;

    /// Default conntrack entry lifetime (Linux UDP stream default).
    pub const DEFAULT_CONNTRACK_TIMEOUT: crate::time::SimDuration =
        crate::time::SimDuration::secs(120);

    /// Creates a router with the given interfaces (one per port).
    pub fn new(ifaces: Vec<Interface>, cost: StageCost, station: SharedStation) -> NatRouter {
        assert!(!ifaces.is_empty(), "router needs at least one interface");
        let cfg = NatControl::default();
        cfg.0.lock().ifaces = ifaces;
        NatRouter {
            cfg,
            conntrack: HashMap::new(),
            pair_last: HashMap::new(),
            conntrack_timeout: Self::DEFAULT_CONNTRACK_TIMEOUT,
            frames_since_gc: 0,
            next_nat_port: Self::NAT_PORT_BASE,
            cost,
            station,
            filter: FilterControl::default(),
            ids: None,
            filter_ids: None,
        }
    }

    /// Overrides the conntrack entry timeout (`nf_conntrack_udp_timeout`
    /// analogue; default 120 s).
    pub fn with_conntrack_timeout(mut self, t: crate::time::SimDuration) -> NatRouter {
        self.conntrack_timeout = t;
        self
    }

    /// The runtime configuration handle (clone and keep it to administer
    /// the router after inserting it into the network).
    pub fn control(&self) -> NatControl {
        self.cfg.clone()
    }

    /// The FORWARD filter-chain handle (clone and keep it to install
    /// policy rules after inserting the router into the network).
    pub fn filter(&self) -> FilterControl {
        self.filter.clone()
    }

    /// Adds a DNAT (port-publishing) rule.
    pub fn add_dnat(&mut self, rule: DnatRule) {
        self.cfg.add_dnat(rule);
    }

    /// Enables masquerade (source NAT to the interface address) on `port`.
    pub fn masquerade_on(&mut self, port: PortId) {
        self.cfg.masquerade_on(port);
    }

    /// Adds a static route. Routes are matched longest-prefix-first.
    pub fn add_route(&mut self, route: Route) {
        self.cfg.add_route(route);
    }

    /// True when `e` has not expired at `now`. Entries stamped later than
    /// `now` (a query older than the router's last activity) count as
    /// live rather than panicking time-went-backwards.
    fn entry_live(&self, e: &ConnEntry, now: SimTime) -> bool {
        now.0.saturating_sub(e.last_used.0) <= self.conntrack_timeout.0
    }

    /// True when a flush request queued by `remove_dnat` covers this
    /// entry: the forward direction translates *to* the removed rule's
    /// backend, the reply direction originates *from* it.
    fn flush_hits(rule: &DnatRule, k: &ConnKey, e: &ConnEntry) -> bool {
        k.proto == rule.proto && (e.new_dst == rule.to || k.src == rule.to)
    }

    /// Number of live conntrack entries at `now`: expired entries and
    /// entries covered by a pending `remove_dnat` flush are excluded,
    /// even if the router has been idle on data and its lazy frame-path
    /// GC never ran.
    pub fn conntrack_len(&self, now: SimTime) -> usize {
        let cfg = self.cfg.0.lock();
        self.conntrack
            .iter()
            .filter(|(k, e)| {
                self.entry_live(e, now) && !cfg.flush.iter().any(|r| Self::flush_hits(r, k, e))
            })
            .count()
    }

    /// Canonical (order-free) address-pair key for the RELATED index.
    fn pair_key(proto: Proto, a: Ip4, b: Ip4) -> (Proto, Ip4, Ip4) {
        if a.0 <= b.0 {
            (proto, a, b)
        } else {
            (proto, b, a)
        }
    }

    /// Resolves the conntrack state the filter table matches on, with
    /// expiry applied: ESTABLISHED for a live tracked tuple (either
    /// direction was installed at flow setup), RELATED for a fresh tuple
    /// between hosts that already carry a live same-protocol flow on
    /// other ports, NEW otherwise. Entries covered by a pending
    /// `remove_dnat` flush never report ESTABLISHED.
    pub fn conn_state(
        &self,
        proto: Proto,
        src: SockAddr,
        dst: SockAddr,
        now: SimTime,
    ) -> ConnState {
        let cfg = self.cfg.0.lock();
        self.conn_state_filtered(&cfg.flush, proto, src, dst, now)
    }

    /// [`conn_state`](NatRouter::conn_state) against an explicit pending
    /// flush list (the frame path drains the list first and passes `&[]`;
    /// the public accessor must not re-lock the config).
    fn conn_state_filtered(
        &self,
        flush: &[DnatRule],
        proto: Proto,
        src: SockAddr,
        dst: SockAddr,
        now: SimTime,
    ) -> ConnState {
        let key = ConnKey { proto, src, dst };
        if self.conntrack.get(&key).is_some_and(|e| {
            self.entry_live(e, now) && !flush.iter().any(|r| Self::flush_hits(r, &key, e))
        }) {
            return ConnState::Established;
        }
        if self
            .pair_last
            .get(&Self::pair_key(proto, src.ip, dst.ip))
            .is_some_and(|t| now.0.saturating_sub(t.0) <= self.conntrack_timeout.0)
        {
            return ConnState::Related;
        }
        ConnState::New
    }

    /// Drains pending `remove_dnat` flush requests, purging the conntrack
    /// entries they cover. Runs at the head of every frame; read-only
    /// accessors filter against the pending list instead.
    fn drain_flush(&mut self, cfg: &mut NatConfig) {
        if cfg.flush.is_empty() {
            return;
        }
        for rule in std::mem::take(&mut cfg.flush) {
            self.conntrack.retain(|k, e| !Self::flush_hits(&rule, k, e));
        }
    }

    /// Allocates a masquerade source port on interface address `ip`,
    /// skipping ports still held by a live conntrack entry (the previous
    /// free-running counter handed out in-use ports after wrapping at
    /// `u16::MAX`, letting two flows share a source port). Returns `None`
    /// when every port of the range is genuinely in use.
    fn alloc_nat_port(&mut self, ip: Ip4, proto: Proto, now: crate::time::SimTime) -> Option<u16> {
        let timeout = self.conntrack_timeout;
        // One pass over conntrack: every port a live entry holds on `ip`,
        // in either direction (reply keys address the masquerade side as
        // `dst`; forward entries carry it as `new_src`).
        let in_use: HashSet<u16> = self
            .conntrack
            .iter()
            .filter(|(k, e)| k.proto == proto && now.since(e.last_used) <= timeout)
            .flat_map(|(k, e)| {
                [k.dst, e.new_src]
                    .into_iter()
                    .filter(|s| s.ip == ip)
                    .map(|s| s.port)
            })
            .collect();
        let range = u32::from(u16::MAX) - u32::from(Self::NAT_PORT_BASE) + 1;
        for _ in 0..range {
            let p = self.next_nat_port;
            self.next_nat_port = self
                .next_nat_port
                .checked_add(1)
                .unwrap_or(Self::NAT_PORT_BASE);
            if !in_use.contains(&p) {
                return Some(p);
            }
        }
        None
    }
}

impl Device for NatRouter {
    fn kind(&self) -> DeviceKind {
        DeviceKind::NatRouter
    }

    fn on_frame(&mut self, port: PortId, mut frame: Frame, ctx: &mut DevCtx<'_>) {
        let ids = *self.ids.get_or_insert_with(|| NatIds::resolve(ctx));
        let cfg_handle = self.cfg.clone();
        let mut cfg = cfg_handle.0.lock();
        assert!(
            port.0 < cfg.ifaces.len(),
            "frame on nonexistent router port"
        );

        // Routers only process frames addressed to their own interface (or
        // broadcast); bridge floods towards other hosts are ignored at L2.
        if frame.dst_mac != cfg.ifaces[port.0].mac && !frame.dst_mac.is_multicast() {
            ctx.count_id(ids.not_for_us, 1.0);
            return;
        }
        let done = self.station.serve(&self.cost, frame.wire_len(), ctx);
        // Staged right after service so frames the chain drops (TTL, no
        // route, no neighbour) still leave a span ending at this hop.
        ctx.stage_frame(ids.stage, &mut frame, done);

        if frame.ip.ttl == 0 {
            ctx.count_id(ids.drop_ttl, 1.0);
            return;
        }
        frame.ip.ttl -= 1;

        let (src_sock, dst_sock, proto) = match (
            frame.ip.src_sock(),
            frame.ip.dst_sock(),
            Proto::of(&frame.ip.transport),
        ) {
            (Some(s), Some(d), Some(p)) => (s, d, p),
            // Port-less traffic (e.g. VXLAN between VTEPs) is routed
            // without translation.
            _ => {
                let Some(route) = cfg.route_for(frame.ip.dst) else {
                    ctx.count_id(ids.drop_no_route, 1.0);
                    return;
                };
                let next_hop = route.via.unwrap_or(frame.ip.dst);
                let iface = &cfg.ifaces[route.port.0];
                let Some(&dst_mac) = iface.neigh.get(&next_hop) else {
                    ctx.count_id(ids.drop_no_neigh, 1.0);
                    return;
                };
                frame.src_mac = iface.mac;
                frame.dst_mac = dst_mac;
                ctx.count_id(ids.routed, 1.0);
                ctx.transmit_at(done, route.port, frame);
                return;
            }
        };

        // Periodic conntrack garbage collection (as the kernel's GC
        // worker does): entries idle longer than the timeout vanish.
        self.frames_since_gc += 1;
        if self.frames_since_gc >= 256 {
            self.frames_since_gc = 0;
            let now = ctx.now();
            let timeout = self.conntrack_timeout;
            self.conntrack
                .retain(|_, e| now.since(e.last_used) <= timeout);
            self.pair_last.retain(|_, t| now.since(*t) <= timeout);
        }
        // Pending rule-removal flushes land before any lookup, so a flow
        // whose publication was just removed cannot ride its old entry.
        self.drain_flush(&mut cfg);

        let key = ConnKey {
            proto,
            src: src_sock,
            dst: dst_sock,
        };
        let live = self
            .conntrack
            .get(&key)
            .filter(|e| ctx.now().since(e.last_used) <= self.conntrack_timeout)
            .copied();
        // A fresh flow's conntrack install is deferred until the FORWARD
        // filter accepts its first packet (kernel semantics: conntrack
        // confirmation happens after the filter hooks, so a dropped NEW
        // packet never creates state).
        let mut pending_insert = None;
        let (new_src, new_dst, state) = if let Some(entry) = live {
            ctx.count_id(ids.conntrack_hit, 1.0);
            let now = ctx.now();
            if let Some(e) = self.conntrack.get_mut(&key) {
                e.last_used = now;
            }
            self.pair_last
                .insert(Self::pair_key(proto, src_sock.ip, entry.new_dst.ip), now);
            (entry.new_src, entry.new_dst, ConnState::Established)
        } else {
            // New flow: service VIP rules first (round-robin over
            // backends, like kube-proxy's statistic-mode chains), then the
            // plain DNAT walk; SNAT decided after routing.
            let mut new_dst = dst_sock;
            let mut lb_matched = false;
            for (rule, next) in &mut cfg.lb {
                if rule.proto == proto && rule.vip == dst_sock {
                    new_dst = rule.backends[*next % rule.backends.len()];
                    *next = (*next + 1) % rule.backends.len();
                    lb_matched = true;
                    ctx.count_id(ids.lb_assigned, 1.0);
                    break;
                }
            }
            for rule in &cfg.dnat {
                if lb_matched {
                    break;
                }
                let ip_match = match rule.match_ip {
                    Some(ip) => ip == dst_sock.ip,
                    None => cfg.is_local_ip(dst_sock.ip),
                };
                if rule.proto == proto && ip_match && rule.match_port == dst_sock.port {
                    new_dst = rule.to;
                    break;
                }
            }
            let Some(route) = cfg.route_for(new_dst.ip) else {
                ctx.count_id(ids.drop_no_route, 1.0);
                return;
            };
            let new_src = if cfg.masquerade.contains(&route.port) {
                let ip = cfg.ifaces[route.port.0].ip;
                match self.alloc_nat_port(ip, proto, ctx.now()) {
                    Some(p) => SockAddr::new(ip, p),
                    None => {
                        ctx.count_id(ids.drop_port_exhausted, 1.0);
                        return;
                    }
                }
            } else {
                src_sock
            };
            let state = self.conn_state_filtered(&[], proto, src_sock, new_dst, ctx.now());
            pending_insert = Some((new_src, new_dst));
            (new_src, new_dst, state)
        };

        // FORWARD filter: evaluated on the post-DNAT destination with the
        // pre-SNAT source — the kernel's hook order (PREROUTING nat →
        // routing decision → FORWARD filter → POSTROUTING nat). One
        // atomic load when no rule was ever installed.
        if !self.filter.is_empty() {
            let fids = *self
                .filter_ids
                .get_or_insert_with(|| HookIds::resolve(Chain::Forward, ctx));
            let (verdict, rule_id) =
                self.filter
                    .eval(Chain::Forward, proto, src_sock, new_dst, state, ctx.now());
            let dev = ctx.self_id().0 as u64;
            match verdict {
                Verdict::Accept => ctx.count_id(fids.accept, 1.0),
                Verdict::Drop => {
                    ctx.count_id(fids.drop, 1.0);
                    ctx.journal(JournalKind::FilterDrop, dev, rule_id, Verdict::Drop.code());
                    return;
                }
                Verdict::Reject => {
                    ctx.count_id(fids.reject, 1.0);
                    ctx.journal(
                        JournalKind::FilterDrop,
                        dev,
                        rule_id,
                        Verdict::Reject.code(),
                    );
                    // Port-unreachable analogue: an active refusal frame
                    // back to the sender, out the ingress interface.
                    let mut p = Payload::sized(8);
                    p.tag = REJECT_TAG;
                    let notif = Frame::udp(
                        cfg.ifaces[port.0].mac,
                        frame.src_mac,
                        SockAddr::new(cfg.ifaces[port.0].ip, dst_sock.port),
                        src_sock,
                        p,
                    );
                    ctx.transmit_at(done, port, notif);
                    return;
                }
            }
        }

        if let Some((ns, nd)) = pending_insert {
            // Install both directions.
            let now = ctx.now();
            self.conntrack.insert(
                key,
                ConnEntry {
                    new_src: ns,
                    new_dst: nd,
                    last_used: now,
                },
            );
            self.conntrack.insert(
                ConnKey {
                    proto,
                    src: nd,
                    dst: ns,
                },
                ConnEntry {
                    new_src: dst_sock,
                    new_dst: src_sock,
                    last_used: now,
                },
            );
            self.pair_last
                .insert(Self::pair_key(proto, src_sock.ip, nd.ip), now);
            ctx.count_id(ids.conntrack_new, 1.0);
        }

        frame.ip.src = new_src.ip;
        frame.ip.dst = new_dst.ip;
        frame.ip.transport.set_src_port(new_src.port);
        frame.ip.transport.set_dst_port(new_dst.port);

        let Some(route) = cfg.route_for(new_dst.ip) else {
            ctx.count_id(ids.drop_no_route, 1.0);
            return;
        };
        let next_hop = route.via.unwrap_or(new_dst.ip);
        let iface = &cfg.ifaces[route.port.0];
        let Some(&dst_mac) = iface.neigh.get(&next_hop) else {
            ctx.count_id(ids.drop_no_neigh, 1.0);
            return;
        };
        frame.src_mac = iface.mac;
        frame.dst_mac = dst_mac;
        ctx.count_id(ids.translated, 1.0);
        ctx.transmit_at(done, route.port, frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StopCondition;
    use crate::engine::{LinkParams, Network};
    use crate::frame::Payload;
    use crate::testutil::CaptureSink;
    use crate::time::SimDuration;
    use metrics::{CpuCategory, CpuLocation};

    const EXT_NET: Ip4Net = Ip4Net {
        addr: Ip4(0xC0A8_0000),
        prefix: 24,
    }; // 192.168.0.0/24
    const POD_NET: Ip4Net = Ip4Net {
        addr: Ip4(0xAC11_0000),
        prefix: 24,
    }; // 172.17.0.0/24

    fn router() -> NatRouter {
        let ext = Interface::new(MacAddr::local(10), Ip4::new(192, 168, 0, 1), EXT_NET)
            .with_neigh(Ip4::new(192, 168, 0, 100), MacAddr::local(100));
        let pod = Interface::new(MacAddr::local(11), Ip4::new(172, 17, 0, 1), POD_NET)
            .with_neigh(Ip4::new(172, 17, 0, 2), MacAddr::local(2));
        let mut r = NatRouter::new(
            vec![ext, pod],
            StageCost::fixed(1_000, 0.0, CpuCategory::Soft),
            SharedStation::new(),
        );
        // Publish container port: :8080 on the router -> 172.17.0.2:80
        r.add_dnat(DnatRule {
            proto: Proto::Udp,
            match_ip: None,
            match_port: 8080,
            to: SockAddr::new(Ip4::new(172, 17, 0, 2), 80),
        });
        r.masquerade_on(PortId(0));
        r
    }

    fn wire(
        net: &mut Network,
        r: NatRouter,
    ) -> (
        crate::device::DeviceId,
        crate::device::DeviceId,
        crate::device::DeviceId,
    ) {
        let rid = net.add_device("nat", CpuLocation::Vm(1), Box::new(r));
        let ext = net.add_device("ext", CpuLocation::Host, Box::new(CaptureSink::new("ext")));
        let pod = net.add_device("pod", CpuLocation::Vm(1), Box::new(CaptureSink::new("pod")));
        net.connect(rid, PortId(0), ext, PortId::P0, LinkParams::default());
        net.connect(rid, PortId(1), pod, PortId::P0, LinkParams::default());
        (rid, ext, pod)
    }

    fn udp(src: SockAddr, dst: SockAddr) -> Frame {
        Frame::udp(
            MacAddr::local(100),
            MacAddr::local(10),
            src,
            dst,
            Payload::sized(64),
        )
    }

    #[test]
    fn dnat_publishes_container_port() {
        let mut net = Network::new(0);
        let (rid, _ext, _pod) = wire(&mut net, router());
        let client = SockAddr::new(Ip4::new(192, 168, 0, 100), 5555);
        let published = SockAddr::new(Ip4::new(192, 168, 0, 1), 8080);
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("pod.received"), 1.0);
        assert_eq!(net.store().counter("nat.conntrack_new"), 1.0);
    }

    #[test]
    fn reply_is_reverse_translated() {
        let mut net = Network::new(0);
        let r = router();
        let rid = net.add_device("nat", CpuLocation::Vm(1), Box::new(r));
        let ext = CaptureSink::new("ext");
        let ext_id = net.add_device("ext", CpuLocation::Host, Box::new(ext));
        let pod_id = net.add_device("pod", CpuLocation::Vm(1), Box::new(CaptureSink::new("pod")));
        net.connect(rid, PortId(0), ext_id, PortId::P0, LinkParams::default());
        net.connect(rid, PortId(1), pod_id, PortId::P0, LinkParams::default());

        let client = SockAddr::new(Ip4::new(192, 168, 0, 100), 5555);
        let published = SockAddr::new(Ip4::new(192, 168, 0, 1), 8080);
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);

        // Pod replies: 172.17.0.2:80 -> client (as it saw it).
        let pod_addr = SockAddr::new(Ip4::new(172, 17, 0, 2), 80);
        let reply = Frame::udp(
            MacAddr::local(2),
            MacAddr::local(11),
            pod_addr,
            client,
            Payload::sized(64),
        );
        net.inject_frame(SimDuration::ZERO, rid, PortId(1), reply);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("ext.received"), 1.0);
        assert_eq!(net.store().counter("nat.conntrack_hit"), 1.0);
    }

    #[test]
    fn masquerade_rewrites_source_for_egress() {
        let mut net = Network::new(0);
        let mut r = router();
        // Route everything unknown out the external interface.
        r.add_route(Route {
            net: Ip4Net::new(Ip4::UNSPECIFIED, 0),
            port: PortId(0),
            via: Some(Ip4::new(192, 168, 0, 100)),
        });
        let (rid, _ext, _pod) = wire(&mut net, r);
        // Pod-originated traffic to the outside world.
        let pod_addr = SockAddr::new(Ip4::new(172, 17, 0, 2), 4242);
        let outside = SockAddr::new(Ip4::new(192, 168, 0, 100), 9999);
        let f = Frame::udp(
            MacAddr::local(2),
            MacAddr::local(11),
            pod_addr,
            outside,
            Payload::sized(64),
        );
        net.inject_frame(SimDuration::ZERO, rid, PortId(1), f);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("ext.received"), 1.0);
        assert_eq!(net.store().counter("nat.conntrack_new"), 1.0);
    }

    #[test]
    fn unroutable_is_dropped() {
        let mut net = Network::new(0);
        let (rid, _, _) = wire(&mut net, router());
        let f = udp(
            SockAddr::new(Ip4::new(192, 168, 0, 100), 1),
            SockAddr::new(Ip4::new(8, 8, 8, 8), 53),
        );
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), f);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("nat.drop_no_route"), 1.0);
        assert_eq!(
            net.store().counter("pod.received") + net.store().counter("ext.received"),
            0.0
        );
    }

    #[test]
    fn ttl_expiry_drops() {
        let mut net = Network::new(0);
        let (rid, _, _) = wire(&mut net, router());
        let mut f = udp(
            SockAddr::new(Ip4::new(192, 168, 0, 100), 1),
            SockAddr::new(Ip4::new(192, 168, 0, 1), 8080),
        );
        f.ip.ttl = 0;
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), f);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("nat.drop_ttl"), 1.0);
    }

    #[test]
    fn missing_neighbor_drops() {
        let mut net = Network::new(0);
        let mut r = router();
        r.add_dnat(DnatRule {
            proto: Proto::Udp,
            match_ip: None,
            match_port: 8081,
            to: SockAddr::new(Ip4::new(172, 17, 0, 99), 80), // no ARP entry
        });
        let (rid, _, _) = wire(&mut net, r);
        let f = udp(
            SockAddr::new(Ip4::new(192, 168, 0, 100), 1),
            SockAddr::new(Ip4::new(192, 168, 0, 1), 8081),
        );
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), f);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("nat.drop_no_neigh"), 1.0);
    }

    #[test]
    fn nat_work_is_charged_as_softirq() {
        let mut net = Network::new(0);
        let (rid, _, _) = wire(&mut net, router());
        let client = SockAddr::new(Ip4::new(192, 168, 0, 100), 5555);
        let published = SockAddr::new(Ip4::new(192, 168, 0, 1), 8080);
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);
        assert_eq!(net.cpu().get(CpuLocation::Vm(1), CpuCategory::Soft), 1_000);
        assert_eq!(net.cpu().get(CpuLocation::Host, CpuCategory::Guest), 1_000);
    }

    /// A live conntrack pair holding masquerade port `p` towards `remote`.
    fn hold_port(r: &mut NatRouter, ip: Ip4, p: u16, remote: SockAddr, now: crate::time::SimTime) {
        let held = SockAddr::new(ip, p);
        let pod = SockAddr::new(Ip4::new(172, 17, 0, 2), p); // arbitrary inside addr
        r.conntrack.insert(
            ConnKey {
                proto: Proto::Udp,
                src: pod,
                dst: remote,
            },
            ConnEntry {
                new_src: held,
                new_dst: remote,
                last_used: now,
            },
        );
        r.conntrack.insert(
            ConnKey {
                proto: Proto::Udp,
                src: remote,
                dst: held,
            },
            ConnEntry {
                new_src: remote,
                new_dst: pod,
                last_used: now,
            },
        );
    }

    #[test]
    fn nat_port_wraparound_skips_live_ports() {
        let mut r = router();
        let ip = Ip4::new(192, 168, 0, 1);
        let now = crate::time::SimTime::ZERO;
        let remote = SockAddr::new(Ip4::new(192, 168, 0, 100), 9999);
        // A live flow holds the first port of the range; pin the allocator
        // to the top so the next allocation wraps.
        hold_port(&mut r, ip, NatRouter::NAT_PORT_BASE, remote, now);
        r.next_nat_port = u16::MAX;
        assert_eq!(r.alloc_nat_port(ip, Proto::Udp, now), Some(u16::MAX));
        // The wrap lands on NAT_PORT_BASE, which is in use: skipped.
        assert_eq!(
            r.alloc_nat_port(ip, Proto::Udp, now),
            Some(NatRouter::NAT_PORT_BASE + 1)
        );
        // An *expired* holder does not block its port.
        let after_timeout = now + NatRouter::DEFAULT_CONNTRACK_TIMEOUT + SimDuration::secs(1);
        r.next_nat_port = NatRouter::NAT_PORT_BASE;
        assert_eq!(
            r.alloc_nat_port(ip, Proto::Udp, after_timeout),
            Some(NatRouter::NAT_PORT_BASE)
        );
    }

    #[test]
    fn nat_port_exhaustion_errors_cleanly() {
        let mut r = router();
        let ip = Ip4::new(192, 168, 0, 1);
        let now = crate::time::SimTime::ZERO;
        // Every port of the masquerade range held by a live flow (each with
        // a distinct remote so the conntrack keys stay unique).
        for p in NatRouter::NAT_PORT_BASE..=u16::MAX {
            let remote = SockAddr::new(Ip4::new(192, 168, 0, 100), p);
            hold_port(&mut r, ip, p, remote, now);
        }
        assert_eq!(r.alloc_nat_port(ip, Proto::Udp, now), None);
        // Releasing one port makes exactly that port allocatable again.
        let freed = NatRouter::NAT_PORT_BASE + 7;
        r.conntrack.retain(|k, e| {
            k.dst != SockAddr::new(ip, freed) && e.new_src != SockAddr::new(ip, freed)
        });
        r.next_nat_port = NatRouter::NAT_PORT_BASE;
        assert_eq!(r.alloc_nat_port(ip, Proto::Udp, now), Some(freed));
    }

    #[test]
    fn masquerade_port_exhaustion_drops_and_counts() {
        let mut net = Network::new(0);
        let mut r = router();
        r.add_route(Route {
            net: Ip4Net::new(Ip4::UNSPECIFIED, 0),
            port: PortId(0),
            via: Some(Ip4::new(192, 168, 0, 100)),
        });
        let now = crate::time::SimTime::ZERO;
        let ip = Ip4::new(192, 168, 0, 1);
        for p in NatRouter::NAT_PORT_BASE..=u16::MAX {
            let remote = SockAddr::new(Ip4::new(192, 168, 0, 100), p);
            hold_port(&mut r, ip, p, remote, now);
        }
        let (rid, _ext, _pod) = wire(&mut net, r);
        // A new masquerade flow finds no free port: dropped, counted.
        let f = Frame::udp(
            MacAddr::local(2),
            MacAddr::local(11),
            SockAddr::new(Ip4::new(172, 17, 0, 2), 4242),
            SockAddr::new(Ip4::new(10, 1, 2, 3), 9999),
            Payload::sized(64),
        );
        net.inject_frame(SimDuration::ZERO, rid, PortId(1), f);
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("nat.drop_port_exhausted"), 1.0);
        assert_eq!(net.store().counter("ext.received"), 0.0);
    }

    #[test]
    fn five_tuple_flows_get_distinct_masquerade_ports() {
        let mut net = Network::new(0);
        let mut r = router();
        r.add_route(Route {
            net: Ip4Net::new(Ip4::UNSPECIFIED, 0),
            port: PortId(0),
            via: Some(Ip4::new(192, 168, 0, 100)),
        });
        let rid = net.add_device("nat", CpuLocation::Vm(1), Box::new(r));
        let mut sink = CaptureSink::new("ext");
        // Drive the device directly is awkward; instead check conntrack count
        // after two flows through the network.
        let ext_id = net.add_device("ext", CpuLocation::Host, Box::new(CaptureSink::new("ext2")));
        net.connect(rid, PortId(0), ext_id, PortId::P0, LinkParams::default());
        let pod1 = SockAddr::new(Ip4::new(172, 17, 0, 2), 1111);
        let pod2 = SockAddr::new(Ip4::new(172, 17, 0, 2), 2222);
        let outside = SockAddr::new(Ip4::new(192, 168, 0, 100), 9999);
        for s in [pod1, pod2] {
            let f = Frame::udp(
                MacAddr::local(2),
                MacAddr::local(11),
                s,
                outside,
                Payload::sized(10),
            );
            net.inject_frame(SimDuration::ZERO, rid, PortId(1), f);
        }
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("nat.conntrack_new"), 2.0);
        assert_eq!(net.store().counter("ext2.received"), 2.0);
        let _ = &mut sink;
    }

    #[test]
    fn remove_dnat_flushes_established_conntrack() {
        let mut net = Network::new(0);
        let r = router();
        let ctl = r.control();
        let (rid, _ext, _pod) = wire(&mut net, r);
        let client = SockAddr::new(Ip4::new(192, 168, 0, 100), 5555);
        let published = SockAddr::new(Ip4::new(192, 168, 0, 1), 8080);
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("pod.received"), 1.0);
        // Un-publish the port. The flow above established a conntrack
        // entry for its exact 5-tuple; without the flush, re-sending the
        // same tuple would keep translating through that entry and reach
        // the pod even though the rule is gone.
        assert_eq!(ctl.remove_dnat(Proto::Udp, 8080), 1);
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);
        assert_eq!(
            net.store().counter("pod.received"),
            1.0,
            "established flow kept translating after its DNAT rule was removed"
        );
    }

    #[test]
    fn conntrack_len_applies_expiry_without_frame_traffic() {
        let mut r = router().with_conntrack_timeout(SimDuration::secs(1));
        let now = crate::time::SimTime::ZERO;
        let remote = SockAddr::new(Ip4::new(192, 168, 0, 100), 9999);
        hold_port(
            &mut r,
            Ip4::new(192, 168, 0, 1),
            NatRouter::NAT_PORT_BASE,
            remote,
            now,
        );
        assert_eq!(r.conntrack_len(now), 2, "both directions tracked");
        // No frames cross the router, so the lazy frame-path GC never
        // runs; the read path must apply the timeout itself.
        assert_eq!(r.conntrack_len(now + SimDuration::secs(2)), 0);
    }

    #[test]
    fn conn_state_applies_expiry_and_pending_flush() {
        let mut r = router().with_conntrack_timeout(SimDuration::secs(1));
        let now = crate::time::SimTime::ZERO;
        let client = SockAddr::new(Ip4::new(192, 168, 0, 100), 5555);
        let published = SockAddr::new(Ip4::new(192, 168, 0, 1), 8080);
        let pod = SockAddr::new(Ip4::new(172, 17, 0, 2), 80);
        r.conntrack.insert(
            ConnKey {
                proto: Proto::Udp,
                src: client,
                dst: published,
            },
            ConnEntry {
                new_src: client,
                new_dst: pod,
                last_used: now,
            },
        );
        r.pair_last
            .insert(NatRouter::pair_key(Proto::Udp, client.ip, pod.ip), now);
        assert_eq!(
            r.conn_state(Proto::Udp, client, published, now),
            ConnState::Established
        );
        // Same hosts, different ports: RELATED via the address pair. The
        // state query runs on the post-DNAT tuple (as the frame path
        // does), so the pair is (client, pod).
        let other = SockAddr::new(client.ip, 7777);
        let pod_other = SockAddr::new(pod.ip, 8081);
        assert_eq!(
            r.conn_state(Proto::Udp, other, pod_other, now),
            ConnState::Related
        );
        // Expired entries must not state-match even though the lazy GC
        // never ran.
        let later = now + SimDuration::secs(2);
        assert_eq!(
            r.conn_state(Proto::Udp, client, published, later),
            ConnState::New
        );
        assert_eq!(
            r.conn_state(Proto::Udp, other, pod_other, later),
            ConnState::New
        );
        // A queued flush (rule removed, frame path not yet run) must hide
        // matching entries from state-match immediately.
        assert_eq!(r.control().remove_dnat(Proto::Udp, 8080), 1);
        assert_eq!(
            r.conn_state(Proto::Udp, client, published, now),
            ConnState::New
        );
    }

    #[test]
    fn forward_filter_drop_is_silent_and_journaled() {
        use crate::filter::{Chain, FilterRule, Verdict};
        use metrics::{JournalKind, TelemetryConfig};
        let mut net = Network::new(0);
        net.set_telemetry_config(TelemetryConfig::full());
        let r = router();
        let filter = r.filter();
        // FORWARD matches the post-DNAT destination: the pod's port 80.
        filter.install(FilterRule::any(Chain::Forward, Verdict::Drop).port(80));
        let (rid, _ext, _pod) = wire(&mut net, r);
        let client = SockAddr::new(Ip4::new(192, 168, 0, 100), 5555);
        let published = SockAddr::new(Ip4::new(192, 168, 0, 1), 8080);
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);
        // Dropped post-DNAT: nothing reaches the pod, nothing echoes back,
        // and no conntrack entry is confirmed for the refused flow.
        assert_eq!(net.store().counter("pod.received"), 0.0);
        assert_eq!(net.store().counter("ext.received"), 0.0);
        assert_eq!(net.store().counter("nat.conntrack_new"), 0.0);
        assert_eq!(net.store().counter("filter.forward.drop"), 1.0);
        let drops: Vec<_> = net
            .journal()
            .records()
            .iter()
            .filter(|r| r.kind == JournalKind::FilterDrop)
            .collect();
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].a, rid.0 as u64);
        assert_eq!(drops[0].c, Verdict::Drop.code());
    }

    #[test]
    fn forward_filter_reject_notifies_the_sender() {
        use crate::filter::{Chain, FilterRule, Verdict, REJECT_TAG};
        let mut net = Network::new(0);
        let r = router();
        let filter = r.filter();
        filter.install(FilterRule::any(Chain::Forward, Verdict::Reject).port(80));
        let (rid, _ext, _pod) = wire(&mut net, r);
        let client = SockAddr::new(Ip4::new(192, 168, 0, 100), 5555);
        let published = SockAddr::new(Ip4::new(192, 168, 0, 1), 8080);
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);
        // The frame never reaches the pod, but the sender hears about the
        // refusal: a notification frame comes back out the ingress port.
        assert_eq!(net.store().counter("pod.received"), 0.0);
        assert_eq!(net.store().counter("ext.received"), 1.0);
        assert_eq!(net.store().counter("filter.forward.reject"), 1.0);
        let _ = REJECT_TAG; // tag checked in filter_statematch integration test
    }

    #[test]
    fn forward_filter_state_match_admits_replies_only() {
        use crate::filter::{Chain, FilterRule, StateMask, Verdict};
        let mut net = Network::new(0);
        let r = router();
        let ctl = r.control();
        let filter = r.filter();
        let (rid, _ext, _pod) = wire(&mut net, r);
        let client = SockAddr::new(Ip4::new(192, 168, 0, 100), 5555);
        let published = SockAddr::new(Ip4::new(192, 168, 0, 1), 8080);
        // First exchange runs unfiltered and establishes conntrack state.
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("pod.received"), 1.0);
        // Lock the table down to established traffic only.
        filter.install(
            FilterRule::any(Chain::Forward, Verdict::Accept).states(StateMask::ESTABLISHED),
        );
        filter.install(FilterRule::any(Chain::Forward, Verdict::Drop));
        // The established flow still passes...
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(client, published));
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("pod.received"), 2.0);
        assert_eq!(net.store().counter("filter.forward.accept"), 1.0);
        // ...but a NEW flow (different source port) is dropped.
        let newcomer = SockAddr::new(Ip4::new(192, 168, 0, 100), 5556);
        net.inject_frame(SimDuration::ZERO, rid, PortId(0), udp(newcomer, published));
        net.run(StopCondition::Idle);
        assert_eq!(net.store().counter("pod.received"), 2.0);
        assert_eq!(net.store().counter("filter.forward.drop"), 1.0);
        let _ = ctl;
    }
}
