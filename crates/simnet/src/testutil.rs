//! Test helpers shared by simnet's own tests and downstream crates' tests.
//!
//! Exposed behind the default `testutil` feature of the library (always
//! compiled; it is tiny and keeps cross-crate tests honest by reusing the
//! same capture devices everywhere).

use crate::addr::{Ip4, MacAddr, SockAddr};
use crate::costs::StageCost;
use crate::device::{Device, DeviceKind, PortId};
use crate::engine::{DevCtx, LinkParams, Network};
use crate::frame::{Frame, Payload};
use crate::shared::SharedStation;
use crate::time::SimDuration;
use metrics::{CpuCategory, CpuLocation, MetricId};

/// A sink device that records every received frame under
/// `"{name}.received"` (counter), `"{name}.arrival_ns"` (samples) and
/// `"{name}.bytes"` (counter).
pub struct CaptureSink {
    name: String,
    frames: Vec<Frame>,
    ids: Option<SinkIds>,
}

/// Interned metric ids, resolved from the name once on the first frame.
#[derive(Clone, Copy)]
struct SinkIds {
    received: MetricId,
    bytes: MetricId,
    arrival_ns: MetricId,
}

impl CaptureSink {
    /// Creates a sink labelled `name`.
    pub fn new(name: impl Into<String>) -> CaptureSink {
        CaptureSink {
            name: name.into(),
            frames: Vec::new(),
            ids: None,
        }
    }

    /// Frames captured so far (only observable before the device is added to
    /// a network, or in unit tests driving the device directly).
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }
}

impl Device for CaptureSink {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Endpoint
    }

    fn on_frame(&mut self, _port: PortId, frame: Frame, ctx: &mut DevCtx<'_>) {
        let name = &self.name;
        let ids = *self.ids.get_or_insert_with(|| SinkIds {
            received: ctx.metric(&format!("{name}.received")),
            bytes: ctx.metric(&format!("{name}.bytes")),
            arrival_ns: ctx.metric(&format!("{name}.arrival_ns")),
        });
        ctx.count_id(ids.received, 1.0);
        ctx.count_id(ids.bytes, frame.wire_len() as f64);
        ctx.record_id(ids.arrival_ns, ctx.now().as_nanos() as f64);
        self.frames.push(frame);
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(CaptureSink {
            name: self.name.clone(),
            frames: self.frames.clone(),
            ids: self.ids,
        }))
    }
}

/// Builds a UDP frame of `payload_len` bytes between two MACs with fixed
/// placeholder IPs/ports (for L2-only device tests).
pub fn frame_between(src: MacAddr, dst: MacAddr, payload_len: u32) -> Frame {
    Frame::udp(
        src,
        dst,
        SockAddr::new(Ip4::new(10, 0, 0, 1), 40_000),
        SockAddr::new(Ip4::new(10, 0, 0, 2), 50_000),
        Payload::sized(payload_len),
    )
}

/// A single-port responder: frames addressed to its MAC are served on its
/// station and bounced back to the sender; everything else (bridge floods
/// in transient learning phases) is counted as stray and dropped. The
/// traffic generator of the multi-host scenarios — a pair of bouncers
/// ping-pongs forever without any timer.
pub struct MacBouncer {
    name: String,
    mac: MacAddr,
    payload_len: u32,
    cost: StageCost,
    station: SharedStation,
    record_arrivals: bool,
    ids: Option<BouncerIds>,
}

#[derive(Clone, Copy)]
struct BouncerIds {
    bounced: MetricId,
    stray: MetricId,
    arrival_ns: Option<MetricId>,
}

impl MacBouncer {
    /// Creates a bouncer answering for `mac` with `payload_len`-byte
    /// replies. With `record_arrivals`, every accepted frame's arrival
    /// time is recorded under `"{name}.arrival_ns"`.
    pub fn new(
        name: impl Into<String>,
        mac: MacAddr,
        payload_len: u32,
        cost: StageCost,
        record_arrivals: bool,
    ) -> MacBouncer {
        MacBouncer {
            name: name.into(),
            mac,
            payload_len,
            cost,
            station: SharedStation::new(),
            record_arrivals,
            ids: None,
        }
    }
}

impl Device for MacBouncer {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Endpoint
    }

    fn on_frame(&mut self, _port: PortId, frame: Frame, ctx: &mut DevCtx<'_>) {
        let name = &self.name;
        let record_arrivals = self.record_arrivals;
        let ids = *self.ids.get_or_insert_with(|| BouncerIds {
            bounced: ctx.metric(&format!("{name}.bounced")),
            stray: ctx.metric(&format!("{name}.stray")),
            arrival_ns: record_arrivals.then(|| ctx.metric(&format!("{name}.arrival_ns"))),
        });
        if frame.dst_mac != self.mac {
            ctx.count_id(ids.stray, 1.0);
            return;
        }
        let done = self.station.serve(&self.cost, frame.wire_len(), ctx);
        ctx.count_id(ids.bounced, 1.0);
        if let Some(arrival) = ids.arrival_ns {
            ctx.record_id(arrival, ctx.now().as_nanos() as f64);
        }
        let reply = frame_between(self.mac, frame.src_mac, self.payload_len);
        ctx.transmit_at(done, PortId::P0, reply);
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        // The station is created privately in `new`, but a caller could
        // still have cloned it out; `fork_private` is the proof either way.
        let station = self.station.fork_private()?;
        Some(Box::new(MacBouncer {
            name: self.name.clone(),
            mac: self.mac,
            payload_len: self.payload_len,
            cost: self.cost,
            station,
            record_arrivals: self.record_arrivals,
            ids: self.ids,
        }))
    }
}

/// Shape of the synthetic multi-host topology built by
/// [`build_multihost`]: `hosts` islands of one learning bridge plus
/// bouncer pairs, joined through a core bridge by latency-bearing uplinks.
/// Used by the cross-shard determinism tests and the `engine_throughput`
/// bench.
#[derive(Debug, Clone)]
pub struct MultihostSpec {
    /// Number of host islands (the core bridge forms one more island).
    pub hosts: usize,
    /// Ping-pong bouncer pairs per host (intra-host load).
    pub local_flows: usize,
    /// Reply payload length in bytes.
    pub payload_len: u32,
    /// One-way latency of each host-to-core uplink; this becomes the
    /// partition epoch.
    pub uplink_latency: SimDuration,
    /// Frame loss probability on the uplinks (exercises per-device RNG
    /// loss draws; cross chains die after a loss, local flows persist).
    pub loss: f64,
    /// Service-time jitter fraction for every station in the scenario.
    pub jitter: f64,
}

impl Default for MultihostSpec {
    fn default() -> MultihostSpec {
        MultihostSpec {
            hosts: 4,
            local_flows: 4,
            payload_len: 256,
            uplink_latency: SimDuration::micros(20),
            loss: 0.0,
            jitter: 0.05,
        }
    }
}

/// Builds the multi-host scenario on `net` and injects its initial
/// traffic: per-host ping-pong bouncer pairs behind a learning bridge,
/// one cross-host bouncer per host talking to the next host through the
/// core bridge. All intra-host links are zero-latency (gluing each host
/// into one partition island); only the uplinks carry latency.
pub fn build_multihost(net: &mut Network, spec: &MultihostSpec) {
    use crate::bridge::Bridge;
    assert!(spec.hosts >= 2, "a multi-host scenario needs two hosts");
    let bouncer_cost = StageCost::fixed(600, 0.2, CpuCategory::Usr).with_jitter(spec.jitter);
    let bridge_cost = StageCost::fixed(1_000, 0.3, CpuCategory::Sys).with_jitter(spec.jitter);
    let core_cost = StageCost::fixed(400, 0.05, CpuCategory::Sys).with_jitter(spec.jitter);
    let core = net.add_device(
        "core",
        CpuLocation::Host,
        Box::new(Bridge::new(spec.hosts, core_cost, SharedStation::new())),
    );
    let mut mac = 0u32;
    let mut next_mac = || {
        mac += 1;
        MacAddr::local(mac)
    };
    let mut cross = Vec::with_capacity(spec.hosts);
    for h in 0..spec.hosts {
        let nports = 2 * spec.local_flows + 2;
        let bridge = net.add_device(
            format!("h{h}.br"),
            CpuLocation::Host,
            Box::new(Bridge::new(nports, bridge_cost, SharedStation::new())),
        );
        for f in 0..spec.local_flows {
            let (ma, mb) = (next_mac(), next_mac());
            let a = net.add_device(
                format!("h{h}.f{f}.a"),
                CpuLocation::Host,
                Box::new(MacBouncer::new(
                    format!("h{h}.f{f}.a"),
                    ma,
                    spec.payload_len,
                    bouncer_cost,
                    false,
                )),
            );
            let b = net.add_device(
                format!("h{h}.f{f}.b"),
                CpuLocation::Host,
                Box::new(MacBouncer::new(
                    format!("h{h}.f{f}.b"),
                    mb,
                    spec.payload_len,
                    bouncer_cost,
                    false,
                )),
            );
            net.connect(a, PortId::P0, bridge, PortId(2 * f), LinkParams::default());
            net.connect(
                b,
                PortId::P0,
                bridge,
                PortId(2 * f + 1),
                LinkParams::default(),
            );
            // Kick the flow off: a frame from A arrives at B, which
            // replies, and the pair ping-pongs forever. Staggered starts
            // decorrelate the hosts.
            net.inject_frame(
                SimDuration::nanos((h as u64) * 131 + (f as u64) * 17),
                b,
                PortId::P0,
                frame_between(ma, mb, spec.payload_len),
            );
        }
        let mx = next_mac();
        let x = net.add_device(
            format!("h{h}.x"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(
                format!("h{h}.x"),
                mx,
                spec.payload_len,
                bouncer_cost,
                true,
            )),
        );
        net.connect(
            x,
            PortId::P0,
            bridge,
            PortId(2 * spec.local_flows),
            LinkParams::default(),
        );
        net.connect(
            bridge,
            PortId(2 * spec.local_flows + 1),
            core,
            PortId(h),
            LinkParams::with_latency(spec.uplink_latency).with_loss(spec.loss),
        );
        cross.push((x, mx));
    }
    // One cross-host chain per host: h's cross bouncer pings host h+1's.
    for h in 0..spec.hosts {
        let (_, src_mac) = cross[h];
        let (dst, dst_mac) = cross[(h + 1) % spec.hosts];
        net.inject_frame(
            SimDuration::nanos(7 + (h as u64) * 41),
            dst,
            PortId::P0,
            frame_between(src_mac, dst_mac, spec.payload_len),
        );
    }
}
