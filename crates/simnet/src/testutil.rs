//! Test helpers shared by simnet's own tests and downstream crates' tests.
//!
//! Exposed behind the default `testutil` feature of the library (always
//! compiled; it is tiny and keeps cross-crate tests honest by reusing the
//! same capture devices everywhere).

use crate::addr::{Ip4, MacAddr, SockAddr};
use crate::device::{Device, DeviceKind, PortId};
use crate::engine::DevCtx;
use crate::frame::{Frame, Payload};
use metrics::MetricId;

/// A sink device that records every received frame under
/// `"{name}.received"` (counter), `"{name}.arrival_ns"` (samples) and
/// `"{name}.bytes"` (counter).
pub struct CaptureSink {
    name: String,
    frames: Vec<Frame>,
    ids: Option<SinkIds>,
}

/// Interned metric ids, resolved from the name once on the first frame.
#[derive(Clone, Copy)]
struct SinkIds {
    received: MetricId,
    bytes: MetricId,
    arrival_ns: MetricId,
}

impl CaptureSink {
    /// Creates a sink labelled `name`.
    pub fn new(name: impl Into<String>) -> CaptureSink {
        CaptureSink {
            name: name.into(),
            frames: Vec::new(),
            ids: None,
        }
    }

    /// Frames captured so far (only observable before the device is added to
    /// a network, or in unit tests driving the device directly).
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }
}

impl Device for CaptureSink {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Endpoint
    }

    fn on_frame(&mut self, _port: PortId, frame: Frame, ctx: &mut DevCtx<'_>) {
        let name = &self.name;
        let ids = *self.ids.get_or_insert_with(|| SinkIds {
            received: ctx.metric(&format!("{name}.received")),
            bytes: ctx.metric(&format!("{name}.bytes")),
            arrival_ns: ctx.metric(&format!("{name}.arrival_ns")),
        });
        ctx.count_id(ids.received, 1.0);
        ctx.count_id(ids.bytes, frame.wire_len() as f64);
        ctx.record_id(ids.arrival_ns, ctx.now().as_nanos() as f64);
        self.frames.push(frame);
    }
}

/// Builds a UDP frame of `payload_len` bytes between two MACs with fixed
/// placeholder IPs/ports (for L2-only device tests).
pub fn frame_between(src: MacAddr, dst: MacAddr, payload_len: u32) -> Frame {
    Frame::udp(
        src,
        dst,
        SockAddr::new(Ip4::new(10, 0, 0, 1), 40_000),
        SockAddr::new(Ip4::new(10, 0, 0, 2), 50_000),
        Payload::sized(payload_len),
    )
}
