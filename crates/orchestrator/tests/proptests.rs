//! Property-based tests for scheduling and reconciliation invariants.

extern crate nestless_orchestrator as orchestrator;

use contd::{ContainerSpec, ResourceRequest};
use orchestrator::{MostRequestedScheduler, Node, PodSpec, Scheduler};
use proptest::prelude::*;
use vmm::{VmId, VmSpec};

fn arb_pod() -> impl Strategy<Value = PodSpec> {
    prop::collection::vec((50u64..2_500, 32u64..1_024), 1..5).prop_map(|reqs| {
        PodSpec::new(
            "p",
            reqs.into_iter()
                .enumerate()
                .map(|(i, (cpu, mem))| {
                    ContainerSpec::new(format!("c{i}"), "app:1")
                        .with_resources(ResourceRequest::new(cpu, mem))
                })
                .collect(),
        )
    })
}

fn arb_nodes() -> impl Strategy<Value = Vec<Node>> {
    prop::collection::vec((1u32..=16, 512u64..16_384), 1..8).prop_map(|shapes| {
        shapes
            .into_iter()
            .enumerate()
            .map(|(i, (vcpus, mem))| {
                Node::from_vm(
                    VmId(i as u32),
                    &VmSpec {
                        name: format!("vm{i}"),
                        vcpus,
                        memory_mib: mem,
                    },
                )
            })
            .collect()
    })
}

proptest! {
    /// Whole-pod placements always fit and always use one node; when the
    /// scheduler refuses, no node could actually hold the pod.
    #[test]
    fn most_requested_is_sound_and_complete(pod in arb_pod(), nodes in arb_nodes()) {
        let total = pod.total_resources();
        match MostRequestedScheduler.place(&pod, &nodes) {
            Ok(placement) => {
                prop_assert!(placement.is_single_node());
                prop_assert_eq!(placement.assignments.len(), pod.containers.len());
                let node = &nodes[placement.assignments[0].0];
                prop_assert!(node.fits(total));
            }
            Err(_) => {
                prop_assert!(
                    nodes.iter().all(|n| !n.fits(total)),
                    "scheduler refused a feasible pod"
                );
            }
        }
    }

    /// The most-requested choice is maximal: no other feasible node has a
    /// strictly higher requested fraction.
    #[test]
    fn most_requested_picks_the_fullest(pod in arb_pod(), nodes in arb_nodes()) {
        let total = pod.total_resources();
        if let Ok(placement) = MostRequestedScheduler.place(&pod, &nodes) {
            let chosen = &nodes[placement.assignments[0].0];
            let chosen_frac = chosen.requested_fraction_with(total);
            for n in nodes.iter().filter(|n| n.fits(total)) {
                prop_assert!(n.requested_fraction_with(total) <= chosen_frac + 1e-12);
            }
        }
    }
}
