//! The orchestrator's in-VM agent.
//!
//! "The orchestrator is already a datacenter-global entity with local agents
//! running inside each VM" (§3.1). After the VMM hot-plugs a NIC and returns
//! its MAC over the management channel, the agent is the piece that — inside
//! the VM — detects the device, configures addresses on it, and inserts it
//! into the pod's network namespace (§3.1 step 4, §4.1 step 4).

use simnet::device::{DeviceId, PortId};
use simnet::endpoint::IfaceConf;
use simnet::{Ip4, Ip4Net, MacAddr};
use std::str::FromStr;
use vmm::{VmId, Vmm};

/// The VM agent of one node.
#[derive(Debug, Clone, Copy)]
pub struct VmAgent {
    /// The VM this agent runs in.
    pub vm: VmId,
}

/// Agent-side view of a configured pod NIC: where to attach the pod's
/// endpoint and the ready-made interface configuration.
#[derive(Debug, Clone)]
pub struct ConfiguredNic {
    /// Attachment point (the NIC's guest-facing port).
    pub attach: (DeviceId, PortId),
    /// Interface configuration for the pod's endpoint.
    pub iface: IfaceConf,
}

impl VmAgent {
    /// Creates the agent for `vm`.
    pub fn new(vm: VmId) -> VmAgent {
        VmAgent { vm }
    }

    /// Finds the hot-plugged NIC the VMM reported as `mac` (the identifier
    /// from the management channel) and configures `ip`/`subnet` on it.
    ///
    /// Returns `None` when no active NIC has that MAC — e.g. the hot-plug
    /// has not completed, or the identifier was corrupted.
    pub fn configure_pod_nic(
        &self,
        vmm: &Vmm,
        mac: &str,
        ip: Ip4,
        subnet: Ip4Net,
    ) -> Option<ConfiguredNic> {
        let mac = MacAddr::from_str(mac).ok()?;
        let nic = vmm.vm(self.vm).nic_by_mac(mac)?;
        Some(ConfiguredNic {
            attach: nic.guest_attach,
            iface: IfaceConf::new(mac, ip, subnet),
        })
    }

    /// Like [`Self::configure_pod_nic`] but for a hostlo endpoint: the
    /// interface is used as the pod's localhost, so unresolved on-link
    /// neighbors fall back to broadcast (the hostlo TAP floods to every
    /// queue and receivers filter, §4.2).
    pub fn configure_hostlo_nic(
        &self,
        vmm: &Vmm,
        mac: &str,
        ip: Ip4,
        subnet: Ip4Net,
    ) -> Option<ConfiguredNic> {
        let c = self.configure_pod_nic(vmm, mac, ip, subnet)?;
        Some(ConfiguredNic {
            attach: c.attach,
            iface: c.iface.with_broadcast_unresolved(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmm::{QmpCommand, QmpResponse, VmSpec};

    #[test]
    fn agent_finds_hot_plugged_nic_by_reported_mac() {
        let mut vmm = Vmm::new(0);
        vmm.create_bridge("br0", 8);
        let vm = vmm.create_vm(VmSpec::paper_eval("vm0"));
        let QmpResponse::NicAdded(nic) = vmm.qmp(QmpCommand::NetdevAdd {
            vm: 0,
            bridge: "br0".into(),
            coalesce: false,
        }) else {
            panic!("hot-plug failed")
        };

        let agent = VmAgent::new(vm);
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let conf = agent
            .configure_pod_nic(&vmm, &nic.mac, subnet.host(50), subnet)
            .expect("NIC must be found by MAC");
        assert_eq!(conf.iface.ip, subnet.host(50));
        assert_eq!(conf.iface.mac.to_string(), nic.mac);
        // The attach point is the virtio guest port, still unconnected.
        assert_eq!(vmm.network().peer(conf.attach.0, conf.attach.1), None);
    }

    #[test]
    fn unknown_mac_yields_none() {
        let mut vmm = Vmm::new(0);
        let vm = vmm.create_vm(VmSpec::paper_eval("vm0"));
        let agent = VmAgent::new(vm);
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        assert!(agent
            .configure_pod_nic(&vmm, "52:54:00:00:00:99", subnet.host(2), subnet)
            .is_none());
        assert!(agent
            .configure_pod_nic(&vmm, "not-a-mac", subnet.host(2), subnet)
            .is_none());
    }

    #[test]
    fn hostlo_configuration_broadcasts_unresolved() {
        let mut vmm = Vmm::new(0);
        vmm.create_vm(VmSpec::paper_eval("vm0"));
        vmm.create_vm(VmSpec::paper_eval("vm1"));
        let QmpResponse::HostloCreated { endpoints } =
            vmm.qmp(QmpCommand::HostloCreate { vms: vec![0, 1] })
        else {
            panic!("hostlo failed")
        };
        let agent = VmAgent::new(VmId(0));
        let subnet = Ip4Net::new(Ip4::new(169, 254, 0, 0), 24);
        let conf = agent
            .configure_hostlo_nic(&vmm, &endpoints[0].mac, subnet.host(1), subnet)
            .unwrap();
        assert!(conf.iface.broadcast_unresolved);
    }
}
