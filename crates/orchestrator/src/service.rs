//! Services: a stable virtual IP load-balanced over pod endpoints.
//!
//! Kubernetes exposes replicated pods behind a Service VIP; kube-proxy
//! realizes it as round-robin DNAT chains in the node's Netfilter. Here the
//! same rule is installed on whichever NAT fronts the pods — with BrFusion
//! that is the *host* NAT, which is exactly the "orchestrator drives the
//! host-level network" integration the paper argues for.

use crate::cni::PodAttachment;
use simnet::nat::{LbRule, NatControl, Proto};
use simnet::SockAddr;

/// A service exposed behind a VIP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Service {
    /// Service name.
    pub name: String,
    /// Virtual address clients target.
    pub vip: SockAddr,
    /// Backend endpoints, in rotation order.
    pub backends: Vec<SockAddr>,
}

impl Service {
    /// Exposes `attachments` behind `vip`: each backend is the attachment's
    /// pod address on `backend_port`. Installs the round-robin rule on
    /// `nat` (the NAT fronting the pods) and returns the service record.
    ///
    /// # Panics
    /// Panics if `attachments` is empty.
    pub fn expose(
        name: impl Into<String>,
        nat: &NatControl,
        vip: SockAddr,
        proto: Proto,
        backend_port: u16,
        attachments: &[PodAttachment],
    ) -> Service {
        assert!(
            !attachments.is_empty(),
            "a service needs at least one endpoint"
        );
        let backends: Vec<SockAddr> = attachments
            .iter()
            .map(|a| SockAddr::new(a.net.ip, backend_port))
            .collect();
        nat.add_lb(LbRule {
            proto,
            vip,
            backends: backends.clone(),
        });
        Service {
            name: name.into(),
            vip,
            backends,
        }
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contd::ContainerNet;
    use simnet::device::{DeviceId, PortId};
    use simnet::endpoint::IfaceConf;
    use simnet::nat::{Interface, NatRouter};
    use simnet::shared::SharedStation;
    use simnet::{Ip4, Ip4Net, MacAddr};
    use vmm::VmId;

    fn attachment(i: u32) -> PodAttachment {
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let ip = subnet.host(50 + i);
        let mac = MacAddr::local(500 + i);
        PodAttachment {
            container_idx: i as usize,
            vm: VmId(0),
            net: ContainerNet {
                ip,
                mac,
                attach: (DeviceId(0), PortId(0)),
                iface: IfaceConf::new(mac, ip, subnet),
            },
        }
    }

    #[test]
    fn expose_installs_rotation_rule() {
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let router = NatRouter::new(
            vec![Interface::new(MacAddr::local(1), subnet.host(1), subnet)],
            simnet::costs::StageCost::fixed(100, 0.0, metrics::CpuCategory::Soft),
            SharedStation::new(),
        );
        let ctl = router.control();
        let atts = [attachment(0), attachment(1), attachment(2)];
        let svc = Service::expose(
            "web",
            &ctl,
            SockAddr::new(subnet.host(1), 80),
            Proto::Udp,
            8080,
            &atts,
        );
        assert_eq!(svc.backend_count(), 3);
        assert_eq!(svc.backends[0], SockAddr::new(subnet.host(50), 8080));
        assert_eq!(svc.backends[2], SockAddr::new(subnet.host(52), 8080));
    }

    #[test]
    #[should_panic(expected = "at least one endpoint")]
    fn expose_rejects_empty() {
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let router = NatRouter::new(
            vec![Interface::new(MacAddr::local(1), subnet.host(1), subnet)],
            simnet::costs::StageCost::fixed(100, 0.0, metrics::CpuCategory::Soft),
            SharedStation::new(),
        );
        Service::expose(
            "none",
            &router.control(),
            SockAddr::new(subnet.host(1), 80),
            Proto::Udp,
            8080,
            &[],
        );
    }
}
