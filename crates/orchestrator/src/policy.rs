//! Kubernetes-NetworkPolicy-like ingress isolation, compiled to filter
//! chains.
//!
//! A [`NetworkPolicy`] selects one pod and whitelists its allowed ingress.
//! Selecting a pod flips it to default-deny: traffic that matches no
//! [`IngressRule`] is discarded at whichever device actually carries the
//! pod's frames — the CNI plugin decides the enforcement point and compiles
//! the policy there ([`CniPlugin::apply_policy`](crate::cni::CniPlugin::apply_policy)):
//!
//! * default bridge+NAT CNI — the nested guest's NAT router (FORWARD,
//!   post-DNAT, so rules match container sockets);
//! * Hostlo — the host's hostlo TAP queues;
//! * BrFusion — the host bridge the fused NICs hang off; when a pod is
//!   parked on the degraded nested path the chains migrate to the fallback
//!   guest NAT, and back to the bridge on re-promotion.
//!
//! Compilation is a pure function of `(policy, pod address)` producing an
//! ordered rule list for the first-match-wins filter engine:
//!
//! 1. accept ESTABLISHED/RELATED to the pod (conntrack replies always
//!    pass, like the canonical iptables state-match preamble);
//! 2. one ACCEPT per ingress rule;
//! 3. a trailing catch-all DROP (or REJECT) for the pod's address.

use crate::pod::PodSpec;
use simnet::filter::{Chain, FilterRule, StateMask, Verdict};
use simnet::nat::Proto;
use simnet::{Ip4, Ip4Net};

/// One whitelisted ingress class: who may open NEW connections to the
/// selected pod, on which ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressRule {
    /// Source subnet allowed to connect; `None` allows any source.
    pub from: Option<Ip4Net>,
    /// Protocol; `None` matches both UDP and TCP.
    pub proto: Option<Proto>,
    /// Destination (container) port range on the pod; `None` allows all.
    pub ports: Option<(u16, u16)>,
}

impl IngressRule {
    /// An allow-anything ingress rule (refine with the builders).
    pub fn any() -> IngressRule {
        IngressRule {
            from: None,
            proto: None,
            ports: None,
        }
    }

    /// Restricts the rule to sources inside `net`.
    pub fn from(mut self, net: Ip4Net) -> IngressRule {
        self.from = Some(net);
        self
    }

    /// Restricts the rule to one protocol.
    pub fn proto(mut self, p: Proto) -> IngressRule {
        self.proto = Some(p);
        self
    }

    /// Restricts the rule to a destination port range.
    pub fn ports(mut self, lo: u16, hi: u16) -> IngressRule {
        assert!(lo <= hi, "port range must be ordered");
        self.ports = Some((lo, hi));
        self
    }

    /// Restricts the rule to one destination port.
    pub fn port(self, p: u16) -> IngressRule {
        self.ports(p, p)
    }
}

/// A NetworkPolicy object: default-deny ingress for one pod, with an
/// allow-list of [`IngressRule`]s.
#[derive(Debug, Clone)]
pub struct NetworkPolicy {
    /// Policy object name (journals, logs).
    pub name: String,
    /// Name of the pod the policy selects (label-selector stand-in).
    pub pod: String,
    /// Whitelisted ingress, first match wins.
    pub ingress: Vec<IngressRule>,
    /// Deny verdict: `false` drops silently (Kubernetes semantics),
    /// `true` actively rejects so the sender sees the refusal.
    pub reject: bool,
}

impl NetworkPolicy {
    /// A deny-all-ingress policy for `pod` (the K8s "default-deny"
    /// idiom); whitelist entries are added with [`NetworkPolicy::allow`].
    pub fn deny_all(name: impl Into<String>, pod: impl Into<String>) -> NetworkPolicy {
        NetworkPolicy {
            name: name.into(),
            pod: pod.into(),
            ingress: Vec::new(),
            reject: false,
        }
    }

    /// Appends a whitelisted ingress class.
    pub fn allow(mut self, rule: IngressRule) -> NetworkPolicy {
        self.ingress.push(rule);
        self
    }

    /// Makes the trailing deny an active REJECT instead of a silent DROP.
    pub fn with_reject(mut self) -> NetworkPolicy {
        self.reject = true;
        self
    }

    /// True when the policy selects `pod`.
    pub fn selects(&self, pod: &PodSpec) -> bool {
        self.pod == pod.name
    }

    /// Compiles the policy for one pod address into an ordered rule list
    /// for `chain` (install in order; the engine is first-match-wins).
    pub fn compile(&self, chain: Chain, pod_ip: Ip4) -> Vec<FilterRule> {
        let mut rules = Vec::with_capacity(self.ingress.len() + 2);
        // Conntrack preamble: replies and related flows of connections the
        // enforcement point already admitted always pass.
        rules.push(
            FilterRule::any(chain, Verdict::Accept)
                .to_ip(pod_ip)
                .states(StateMask::ESTABLISHED.or(StateMask::RELATED)),
        );
        for ing in &self.ingress {
            let mut r = FilterRule::any(chain, Verdict::Accept).to_ip(pod_ip);
            if let Some(net) = ing.from {
                r = r.from_net(net);
            }
            if let Some(p) = ing.proto {
                r = r.proto(p);
            }
            if let Some((lo, hi)) = ing.ports {
                r = r.ports(lo, hi);
            }
            rules.push(r);
        }
        let deny = if self.reject {
            Verdict::Reject
        } else {
            Verdict::Drop
        };
        rules.push(FilterRule::any(chain, deny).to_ip(pod_ip));
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contd::ContainerSpec;

    #[test]
    fn compile_orders_preamble_allows_deny() {
        let pol = NetworkPolicy::deny_all("web-allow", "web")
            .allow(
                IngressRule::any()
                    .from(Ip4Net::new(Ip4::new(10, 0, 0, 0), 24))
                    .proto(Proto::Tcp)
                    .port(80),
            )
            .allow(IngressRule::any().ports(9000, 9100));
        let ip = Ip4::new(192, 168, 0, 50);
        let rules = pol.compile(Chain::Forward, ip);
        assert_eq!(rules.len(), 4);
        // Conntrack preamble first: state-matched accept, no NEW.
        assert_eq!(rules[0].verdict, Verdict::Accept);
        assert!(rules[0]
            .states
            .matches(simnet::filter::ConnState::Established));
        assert!(!rules[0].states.matches(simnet::filter::ConnState::New));
        // Whitelist in declaration order.
        assert_eq!(rules[1].proto, Some(Proto::Tcp));
        assert_eq!(rules[1].dst_ports, (80, 80));
        assert_eq!(rules[2].dst_ports, (9000, 9100));
        // Trailing deny covers only the selected pod.
        assert_eq!(rules[3].verdict, Verdict::Drop);
        assert_eq!(rules[3].dst, Some(Ip4Net::new(ip, 32)));
        assert_eq!(rules[3].states, StateMask::ANY);
    }

    #[test]
    fn reject_flag_switches_the_trailing_deny() {
        let pol = NetworkPolicy::deny_all("p", "w").with_reject();
        let rules = pol.compile(Chain::Input, Ip4::new(1, 2, 3, 4));
        assert_eq!(rules.last().unwrap().verdict, Verdict::Reject);
    }

    #[test]
    fn selects_by_pod_name() {
        let pol = NetworkPolicy::deny_all("p", "web");
        let web = PodSpec::new("web", vec![ContainerSpec::new("c", "i:1")]);
        let db = PodSpec::new("db", vec![ContainerSpec::new("c", "i:1")]);
        assert!(pol.selects(&web));
        assert!(!pol.selects(&db));
    }
}
