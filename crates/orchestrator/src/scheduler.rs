//! Pod schedulers.
//!
//! Vanilla Kubernetes "only implements single-VM pod deployments:
//! containers belonging to the same pod must be deployed inside the same
//! VM" (§1). [`MostRequestedScheduler`] implements that whole-pod policy
//! with the "most requested" priority the paper simulates against (§5.3.1).
//! The [`Scheduler`] trait also admits per-container placements, which is
//! what Hostlo's cross-VM scheduler (in the `nestless` crate) returns.

use crate::node::{Node, NodeId};
use crate::pod::PodSpec;
use cloudsim::{FreeCapIndex, Res};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Placement decision: one node per container (whole-pod schedulers repeat
/// the same node).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// `assignments[i]` is the node for `pod.containers[i]`.
    pub assignments: Vec<NodeId>,
}

impl Placement {
    /// Distinct nodes used, in first-seen order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut seen = Vec::new();
        for &n in &self.assignments {
            if !seen.contains(&n) {
                seen.push(n);
            }
        }
        seen
    }

    /// True when the whole pod landed on one node.
    pub fn is_single_node(&self) -> bool {
        self.nodes().len() == 1
    }
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedError {
    /// Human-readable cause.
    pub reason: String,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unschedulable: {}", self.reason)
    }
}

impl std::error::Error for SchedError {}

/// A pod scheduler.
pub trait Scheduler {
    /// Chooses nodes for a pod's containers. Must not mutate the nodes;
    /// the control plane commits allocations after a successful placement.
    fn place(&self, pod: &PodSpec, nodes: &[Node]) -> Result<Placement, SchedError>;

    /// Like [`place`](Scheduler::place), but with access to the control
    /// plane's incremental free-capacity index (node `i` is index id `i`).
    /// Schedulers that can exploit it override this to avoid the full-node
    /// rescan; the default simply delegates to `place`. Implementations
    /// must return exactly what `place` would — the index is an
    /// accelerator, never a semantic change.
    fn place_indexed(
        &self,
        pod: &PodSpec,
        nodes: &[Node],
        _index: &FreeCapIndex,
    ) -> Result<Placement, SchedError> {
        self.place(pod, nodes)
    }
}

/// Whole-pod scheduling with Kubernetes's "most requested" priority: among
/// nodes with room for the entire pod, pick the one that would be fullest —
/// a grouping strategy (§5.3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MostRequestedScheduler;

impl MostRequestedScheduler {
    fn unschedulable(pod: &PodSpec) -> SchedError {
        let total = pod.total_resources();
        SchedError {
            reason: format!(
                "no node fits pod {} ({} mCPU, {} MiB)",
                pod.name, total.cpu_millis, total.memory_mib
            ),
        }
    }
}

impl Scheduler for MostRequestedScheduler {
    fn place(&self, pod: &PodSpec, nodes: &[Node]) -> Result<Placement, SchedError> {
        let total = pod.total_resources();
        let best = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.fits(total))
            .max_by(|(_, a), (_, b)| {
                a.requested_fraction_with(total)
                    .partial_cmp(&b.requested_fraction_with(total))
                    .expect("fractions are finite")
            });
        match best {
            Some((idx, _)) => Ok(Placement {
                assignments: vec![NodeId(idx); pod.containers.len()],
            }),
            None => Err(Self::unschedulable(pod)),
        }
    }

    /// Index-backed placement: `pick_most_requested_f64` reproduces the
    /// exact float scoring and last-wins tie-break of the scan above, so
    /// the chosen node is bit-identical — only the rescan cost is gone.
    fn place_indexed(
        &self,
        pod: &PodSpec,
        nodes: &[Node],
        index: &FreeCapIndex,
    ) -> Result<Placement, SchedError> {
        let total = pod.total_resources();
        debug_assert_eq!(index.len(), nodes.len(), "index must mirror the registry");
        match index.pick_most_requested_f64(Res::new(total.cpu_millis, total.memory_mib)) {
            Some(id) => Ok(Placement {
                assignments: vec![NodeId(id as usize); pod.containers.len()],
            }),
            None => Err(Self::unschedulable(pod)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contd::{ContainerSpec, ResourceRequest};
    use vmm::{VmId, VmSpec};

    fn nodes() -> Vec<Node> {
        (0..3)
            .map(|i| Node::from_vm(VmId(i), &VmSpec::paper_eval(format!("vm{i}"))))
            .collect()
    }

    fn pod(cpu: u64, mem: u64) -> PodSpec {
        PodSpec::new(
            "p",
            vec![ContainerSpec::new("c", "img:1").with_resources(ResourceRequest::new(cpu, mem))],
        )
    }

    #[test]
    fn picks_fullest_fitting_node() {
        let mut ns = nodes();
        ns[1].allocate(ResourceRequest::new(3000, 2048)); // fullest with room
        ns[2].allocate(ResourceRequest::new(4500, 3584)); // too full for the pod
        let p = pod(1000, 512);
        let placement = MostRequestedScheduler.place(&p, &ns).unwrap();
        assert_eq!(placement.assignments, vec![NodeId(1)]);
        assert!(placement.is_single_node());
    }

    #[test]
    fn whole_pod_must_fit_one_node() {
        // Two containers of 3000 mCPU each: 6000 total never fits a 5000
        // node, even though each half would.
        let p = PodSpec::new(
            "big",
            vec![
                ContainerSpec::new("a", "i:1").with_resources(ResourceRequest::new(3000, 512)),
                ContainerSpec::new("b", "i:1").with_resources(ResourceRequest::new(3000, 512)),
            ],
        );
        let err = MostRequestedScheduler.place(&p, &nodes()).unwrap_err();
        assert!(err.reason.contains("no node fits"));
    }

    #[test]
    fn empty_cluster_unschedulable() {
        let p = pod(100, 100);
        assert!(MostRequestedScheduler.place(&p, &[]).is_err());
    }

    /// The index-backed path must reproduce the legacy full scan exactly:
    /// same node (including float-tie last-wins) or same failure, over
    /// randomized registries with heterogeneous, loaded, and drained
    /// (zero-capacity) nodes.
    #[test]
    fn indexed_placement_matches_legacy_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let caps = [
            (5_000u64, 4_096u64), // paper_eval node
            (8_000, 16_384),
            (2_000, 2_048),
            (5_000, 4_096), // duplicate class: exercises float ties
            (0, 0),         // drained
        ];
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..400 {
            let n = rng.gen_range(0usize..12);
            let mut ns = Vec::new();
            let mut index = FreeCapIndex::new();
            for _ in 0..n {
                let (cc, cm) = caps[rng.gen_range(0..caps.len())];
                let allocated =
                    contd::ResourceRequest::new(rng.gen_range(0..=cc), rng.gen_range(0..=cm));
                let node = Node {
                    vm: vmm::VmId(0),
                    capacity: contd::ResourceRequest::new(cc, cm),
                    allocated,
                };
                index.insert(
                    Res::new(cc, cm),
                    Res::new(allocated.cpu_millis, allocated.memory_mib),
                );
                ns.push(node);
            }
            let p = pod(rng.gen_range(0..4_000), rng.gen_range(0..3_000));
            let legacy = MostRequestedScheduler.place(&p, &ns);
            let fast = MostRequestedScheduler.place_indexed(&p, &ns, &index);
            match (legacy, fast) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case}"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("case {case}: legacy {a:?} vs indexed {b:?}"),
            }
        }
    }

    #[test]
    fn placement_node_helpers() {
        let pl = Placement {
            assignments: vec![NodeId(2), NodeId(0), NodeId(2)],
        };
        assert_eq!(pl.nodes(), vec![NodeId(2), NodeId(0)]);
        assert!(!pl.is_single_node());
    }
}
