//! The Container Network Interface plugin boundary.
//!
//! "Extending the Kubernetes orchestrator to ask the VMM for a new NIC when
//! scheduling a pod is easily done with a CNI plugin. CNI plugins follow a
//! standard specification and are used to provide new networking models"
//! (§3.2). The `nestless` crate ships the BrFusion and Hostlo plugins; this
//! module defines the interface plus the default (bridge+NAT) plugin that
//! models vanilla Kubernetes-on-Docker networking.

use crate::pod::PodSpec;
use contd::{ContainerEngine, ContainerNet};
use std::collections::BTreeMap;
use std::fmt;
use vmm::{VmId, Vmm};

/// Everything a CNI plugin may touch while wiring a pod: the VMM (and
/// through it the network) and the per-VM container engines.
pub struct ClusterCtx<'a> {
    /// The datacenter's VMM.
    pub vmm: &'a mut Vmm,
    /// Container engines, one per VM.
    pub engines: &'a mut BTreeMap<VmId, ContainerEngine>,
}

/// Network attachment produced for one container of a pod.
#[derive(Debug, Clone)]
pub struct PodAttachment {
    /// Index into `pod.containers`.
    pub container_idx: usize,
    /// VM the container landed on.
    pub vm: VmId,
    /// Attachment point + interface configuration for the workload
    /// endpoint.
    pub net: ContainerNet,
}

/// CNI failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CniError {
    /// Human-readable cause.
    pub reason: String,
    /// True when the fault is transient (e.g. a dead management socket)
    /// and the control plane may retry the setup after a backoff.
    pub retryable: bool,
}

impl CniError {
    /// A permanent failure: retrying the same setup cannot succeed.
    pub fn fatal(reason: impl Into<String>) -> CniError {
        CniError {
            reason: reason.into(),
            retryable: false,
        }
    }

    /// A transient failure worth retrying after a backoff.
    pub fn retryable(reason: impl Into<String>) -> CniError {
        CniError {
            reason: reason.into(),
            retryable: true,
        }
    }
}

impl fmt::Display for CniError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CNI setup failed: {}", self.reason)
    }
}

impl std::error::Error for CniError {}

/// A CNI plugin: wires pod networking for a placement decided by the
/// scheduler.
pub trait CniPlugin {
    /// Plugin name (for logs and assertions).
    fn name(&self) -> &str;

    /// Sets up networking for `pod`; `placement[i]` is the VM of container
    /// `i`.
    fn setup(
        &mut self,
        ctx: &mut ClusterCtx<'_>,
        pod: &PodSpec,
        placement: &[VmId],
    ) -> Result<Vec<PodAttachment>, CniError>;

    /// Periodic repair pass: plugins that degraded a pod's networking
    /// during a fault (e.g. BrFusion falling back to the nested path) try
    /// to restore the preferred wiring here. Returns how many pods were
    /// repaired this pass. The default plugin has nothing to repair.
    fn maintain(&mut self, _ctx: &mut ClusterCtx<'_>) -> usize {
        0
    }
}

/// The default plugin: each container goes through the VM's bridge+NAT
/// dataplane (fig. 1's nested design — the `NAT` baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultCni;

impl CniPlugin for DefaultCni {
    fn name(&self) -> &str {
        "default-bridge-nat"
    }

    fn setup(
        &mut self,
        ctx: &mut ClusterCtx<'_>,
        pod: &PodSpec,
        placement: &[VmId],
    ) -> Result<Vec<PodAttachment>, CniError> {
        // VM-local network virtualization cannot span VMs (§2, issue 2).
        let first = placement
            .first()
            .ok_or_else(|| CniError::fatal("empty placement"))?;
        if placement.iter().any(|vm| vm != first) {
            return Err(CniError::fatal("default CNI cannot wire a cross-VM pod"));
        }
        let mut out = Vec::with_capacity(pod.containers.len());
        for (idx, c) in pod.containers.iter().enumerate() {
            let vm = placement[idx];
            let engine = ctx
                .engines
                .get_mut(&vm)
                .ok_or_else(|| CniError::fatal(format!("no container engine on {vm:?}")))?;
            let dp = engine
                .dataplane_mut()
                .ok_or_else(|| CniError::fatal(format!("no default dataplane on {vm:?}")))?;
            let net = dp.attach_container(ctx.vmm, &c.name, &c.ports);
            out.push(PodAttachment {
                container_idx: idx,
                vm,
                net,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contd::ContainerSpec;
    use simnet::{Ip4, Ip4Net};
    use vmm::VmSpec;

    fn cluster() -> (Vmm, BTreeMap<VmId, ContainerEngine>) {
        let mut vmm = Vmm::new(0);
        let br = vmm.create_bridge("br0", 16);
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let mut engines = BTreeMap::new();
        for i in 0..2 {
            let vm = vmm.create_vm(VmSpec::paper_eval(format!("vm{i}")));
            let eth0 = vmm.add_nic(vm, br, true, false);
            let eng = ContainerEngine::with_default_bridge(
                &mut vmm,
                vm,
                &eth0,
                subnet.host(10 + i),
                subnet,
                8,
            );
            engines.insert(vm, eng);
        }
        (vmm, engines)
    }

    #[test]
    fn default_cni_wires_single_vm_pod() {
        let (mut vmm, mut engines) = cluster();
        let pod = PodSpec::new(
            "p",
            vec![
                ContainerSpec::new("a", "i:1"),
                ContainerSpec::new("b", "i:1"),
            ],
        );
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let atts = DefaultCni
            .setup(&mut ctx, &pod, &[VmId(0), VmId(0)])
            .unwrap();
        assert_eq!(atts.len(), 2);
        assert_ne!(atts[0].net.ip, atts[1].net.ip);
        assert!(atts.iter().all(|a| a.vm == VmId(0)));
    }

    #[test]
    fn default_cni_rejects_cross_vm() {
        let (mut vmm, mut engines) = cluster();
        let pod = PodSpec::new(
            "p",
            vec![
                ContainerSpec::new("a", "i:1"),
                ContainerSpec::new("b", "i:1"),
            ],
        );
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let err = DefaultCni
            .setup(&mut ctx, &pod, &[VmId(0), VmId(1)])
            .unwrap_err();
        assert!(err.reason.contains("cross-VM"));
    }

    #[test]
    fn default_cni_requires_engine() {
        let (mut vmm, _) = cluster();
        let vm9 = vmm.create_vm(VmSpec::paper_eval("vm9"));
        let pod = PodSpec::new("p", vec![ContainerSpec::new("a", "i:1")]);
        let mut empty = BTreeMap::new();
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut empty,
        };
        let err = DefaultCni.setup(&mut ctx, &pod, &[vm9]).unwrap_err();
        assert!(err.reason.contains("no container engine"));
    }
}
