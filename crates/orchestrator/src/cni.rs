//! The Container Network Interface plugin boundary.
//!
//! "Extending the Kubernetes orchestrator to ask the VMM for a new NIC when
//! scheduling a pod is easily done with a CNI plugin. CNI plugins follow a
//! standard specification and are used to provide new networking models"
//! (§3.2). The `nestless` crate ships the BrFusion and Hostlo plugins; this
//! module defines the interface plus the default (bridge+NAT) plugin that
//! models vanilla Kubernetes-on-Docker networking.

use crate::pod::PodSpec;
use crate::policy::NetworkPolicy;
use contd::{ContainerEngine, ContainerNet};
use simnet::device::{DeviceId, PortId};
use simnet::filter::Chain;
use std::collections::BTreeMap;
use std::fmt;
use vmm::{VmId, Vmm};

/// Everything a CNI plugin may touch while wiring a pod: the VMM (and
/// through it the network) and the per-VM container engines.
pub struct ClusterCtx<'a> {
    /// The datacenter's VMM.
    pub vmm: &'a mut Vmm,
    /// Container engines, one per VM.
    pub engines: &'a mut BTreeMap<VmId, ContainerEngine>,
}

/// Network attachment produced for one container of a pod.
#[derive(Debug, Clone)]
pub struct PodAttachment {
    /// Index into `pod.containers`.
    pub container_idx: usize,
    /// VM the container landed on.
    pub vm: VmId,
    /// Attachment point + interface configuration for the workload
    /// endpoint.
    pub net: ContainerNet,
}

/// How a pod's wiring ended up relative to the plugin's preferred design.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PodNetHealth {
    /// The preferred wiring is in place (fused NIC, hostlo endpoint, ...).
    #[default]
    Nominal,
    /// Functional, but on a degraded fallback path pending repair (e.g.
    /// BrFusion parked the pod on the classic nested dataplane).
    Degraded {
        /// The fault that forced the downgrade.
        reason: String,
    },
}

impl PodNetHealth {
    /// True when the preferred wiring is in place.
    pub fn is_nominal(&self) -> bool {
        matches!(self, PodNetHealth::Nominal)
    }
}

/// One container's binding onto a shared loopback/TAP queue: the device and
/// queue port the pod fraction's localhost traffic rides on. Produced by
/// queue-multiplexing plugins (Hostlo); NIC-per-pod plugins bind none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueBinding {
    /// Index into `pod.containers`.
    pub container_idx: usize,
    /// VM the bound container runs on.
    pub vm: VmId,
    /// The shared loopback/TAP device.
    pub device: DeviceId,
    /// The queue (port) reserved for this container on that device.
    pub queue: PortId,
}

/// Structured result of a CNI setup: the per-container attachments plus
/// everything the control plane previously had to fish out of plugin-
/// specific side channels — wiring health and shared-queue bindings.
#[derive(Debug, Clone, Default)]
pub struct CniOutcome {
    /// Per-container network attachments, indexed like `pod.containers`.
    pub attachments: Vec<PodAttachment>,
    /// Whether the pod got the plugin's preferred wiring.
    pub health: PodNetHealth,
    /// Shared-queue bindings (one per container for queue-multiplexing
    /// plugins, empty otherwise).
    pub queues: Vec<QueueBinding>,
}

impl CniOutcome {
    /// An outcome on the preferred wiring with no queue bindings.
    pub fn nominal(attachments: Vec<PodAttachment>) -> CniOutcome {
        CniOutcome {
            attachments,
            health: PodNetHealth::Nominal,
            queues: Vec::new(),
        }
    }

    /// An outcome parked on a degraded fallback path.
    pub fn degraded(attachments: Vec<PodAttachment>, reason: impl Into<String>) -> CniOutcome {
        CniOutcome {
            attachments,
            health: PodNetHealth::Degraded {
                reason: reason.into(),
            },
            queues: Vec::new(),
        }
    }

    /// Attaches shared-queue bindings to the outcome.
    pub fn with_queues(mut self, queues: Vec<QueueBinding>) -> CniOutcome {
        self.queues = queues;
        self
    }
}

/// Point-in-time report of a plugin's fault-handling state machine,
/// queryable through [`CniPlugin::status`] for any plugin (plugins without
/// a degraded mode report the default all-zero status).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CniStatus {
    /// Pods currently parked on a degraded path.
    pub degraded_pods: usize,
    /// Pods that ever fell back to a degraded path.
    pub fallbacks: u64,
    /// Pods restored to the preferred wiring after a fallback.
    pub repromotions: u64,
    /// Pods abandoned on the degraded path (retry budget exhausted or a
    /// permanent refusal during repair).
    pub abandoned: u64,
    /// The fault that sent each fallen-back pod to the degraded path.
    pub fallback_reasons: Vec<String>,
    /// Time each restored pod spent degraded, in ns.
    pub repromotion_latency_ns: Vec<u64>,
}

/// A pod whose preferred wiring was restored by [`CniPlugin::maintain`];
/// drained via [`CniPlugin::drain_repaired`] so harnesses can re-bind
/// workloads onto the new attachments.
#[derive(Debug, Clone)]
pub struct RepairedPod {
    /// Pod name (as in its [`PodSpec`]).
    pub pod: String,
    /// The restored wiring.
    pub outcome: CniOutcome,
}

/// CNI failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CniError {
    /// Human-readable cause.
    pub reason: String,
    /// True when the fault is transient (e.g. a dead management socket)
    /// and the control plane may retry the setup after a backoff.
    pub retryable: bool,
}

impl CniError {
    /// A permanent failure: retrying the same setup cannot succeed.
    pub fn fatal(reason: impl Into<String>) -> CniError {
        CniError {
            reason: reason.into(),
            retryable: false,
        }
    }

    /// A transient failure worth retrying after a backoff.
    pub fn retryable(reason: impl Into<String>) -> CniError {
        CniError {
            reason: reason.into(),
            retryable: true,
        }
    }
}

impl fmt::Display for CniError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CNI setup failed: {}", self.reason)
    }
}

impl std::error::Error for CniError {}

/// A CNI plugin: wires pod networking for a placement decided by the
/// scheduler.
pub trait CniPlugin {
    /// Plugin name (for logs and assertions).
    fn name(&self) -> &str;

    /// Sets up networking for `pod`; `placement[i]` is the VM of container
    /// `i`.
    fn setup(
        &mut self,
        ctx: &mut ClusterCtx<'_>,
        pod: &PodSpec,
        placement: &[VmId],
    ) -> Result<CniOutcome, CniError>;

    /// Periodic repair pass: plugins that degraded a pod's networking
    /// during a fault (e.g. BrFusion falling back to the nested path) try
    /// to restore the preferred wiring here. Returns how many pods were
    /// repaired this pass. The default plugin has nothing to repair.
    fn maintain(&mut self, _ctx: &mut ClusterCtx<'_>) -> usize {
        0
    }

    /// The plugin's fault-handling state, for observability. Plugins
    /// without a degraded mode report the all-zero default.
    fn status(&self) -> CniStatus {
        CniStatus::default()
    }

    /// Drains the pods whose preferred wiring [`CniPlugin::maintain`]
    /// restored since the last call.
    fn drain_repaired(&mut self) -> Vec<RepairedPod> {
        Vec::new()
    }

    /// Compiles `policy` into filter chains at whichever device carries
    /// the pod's traffic for this plugin's wiring, and keeps them there
    /// across wiring changes (degrade / re-promotion). `attachments` is
    /// the pod's current wiring as returned by [`CniPlugin::setup`].
    /// Returns the number of filter rules installed. The default is a
    /// no-op: a plugin without an enforcement point isolates nothing.
    fn apply_policy(
        &mut self,
        _ctx: &mut ClusterCtx<'_>,
        _pod: &PodSpec,
        _attachments: &[PodAttachment],
        _policy: &NetworkPolicy,
    ) -> Result<usize, CniError> {
        Ok(0)
    }
}

/// The default plugin: each container goes through the VM's bridge+NAT
/// dataplane (fig. 1's nested design — the `NAT` baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultCni;

impl CniPlugin for DefaultCni {
    fn name(&self) -> &str {
        "default-bridge-nat"
    }

    fn setup(
        &mut self,
        ctx: &mut ClusterCtx<'_>,
        pod: &PodSpec,
        placement: &[VmId],
    ) -> Result<CniOutcome, CniError> {
        // VM-local network virtualization cannot span VMs (§2, issue 2).
        let first = placement
            .first()
            .ok_or_else(|| CniError::fatal("empty placement"))?;
        if placement.iter().any(|vm| vm != first) {
            return Err(CniError::fatal("default CNI cannot wire a cross-VM pod"));
        }
        let mut out = Vec::with_capacity(pod.containers.len());
        for (idx, c) in pod.containers.iter().enumerate() {
            let vm = placement[idx];
            let engine = ctx
                .engines
                .get_mut(&vm)
                .ok_or_else(|| CniError::fatal(format!("no container engine on {vm:?}")))?;
            let dp = engine
                .dataplane_mut()
                .ok_or_else(|| CniError::fatal(format!("no default dataplane on {vm:?}")))?;
            let net = dp.attach_container(ctx.vmm, &c.name, &c.ports);
            out.push(PodAttachment {
                container_idx: idx,
                vm,
                net,
            });
        }
        Ok(CniOutcome::nominal(out))
    }

    /// Enforcement point: the nested guest's NAT router. Its FORWARD hook
    /// runs post-DNAT, so compiled rules match the container's own socket
    /// (ip, container port) — exactly what the policy talks about.
    fn apply_policy(
        &mut self,
        ctx: &mut ClusterCtx<'_>,
        _pod: &PodSpec,
        attachments: &[PodAttachment],
        policy: &NetworkPolicy,
    ) -> Result<usize, CniError> {
        let now = ctx.vmm.network().now();
        let mut installed = 0;
        for att in attachments {
            let engine = ctx
                .engines
                .get(&att.vm)
                .ok_or_else(|| CniError::fatal(format!("no container engine on {:?}", att.vm)))?;
            let dp = engine
                .dataplane()
                .ok_or_else(|| CniError::fatal(format!("no default dataplane on {:?}", att.vm)))?;
            let (dev, ctl) = (dp.nat, dp.nat_filter.clone());
            for rule in policy.compile(Chain::Forward, att.net.ip) {
                ctx.vmm.network_mut().install_filter(dev, &ctl, rule, now);
                installed += 1;
            }
        }
        Ok(installed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contd::ContainerSpec;
    use simnet::{Ip4, Ip4Net};
    use vmm::VmSpec;

    fn cluster() -> (Vmm, BTreeMap<VmId, ContainerEngine>) {
        let mut vmm = Vmm::new(0);
        let br = vmm.create_bridge("br0", 16);
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let mut engines = BTreeMap::new();
        for i in 0..2 {
            let vm = vmm.create_vm(VmSpec::paper_eval(format!("vm{i}")));
            let eth0 = vmm.add_nic(vm, br, true, false);
            let eng = ContainerEngine::with_default_bridge(
                &mut vmm,
                vm,
                &eth0,
                subnet.host(10 + i),
                subnet,
                8,
            );
            engines.insert(vm, eng);
        }
        (vmm, engines)
    }

    #[test]
    fn default_cni_wires_single_vm_pod() {
        let (mut vmm, mut engines) = cluster();
        let pod = PodSpec::new(
            "p",
            vec![
                ContainerSpec::new("a", "i:1"),
                ContainerSpec::new("b", "i:1"),
            ],
        );
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let out = DefaultCni
            .setup(&mut ctx, &pod, &[VmId(0), VmId(0)])
            .unwrap();
        assert!(out.health.is_nominal());
        assert!(out.queues.is_empty());
        let atts = out.attachments;
        assert_eq!(atts.len(), 2);
        assert_ne!(atts[0].net.ip, atts[1].net.ip);
        assert!(atts.iter().all(|a| a.vm == VmId(0)));
    }

    #[test]
    fn default_cni_rejects_cross_vm() {
        let (mut vmm, mut engines) = cluster();
        let pod = PodSpec::new(
            "p",
            vec![
                ContainerSpec::new("a", "i:1"),
                ContainerSpec::new("b", "i:1"),
            ],
        );
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let err = DefaultCni
            .setup(&mut ctx, &pod, &[VmId(0), VmId(1)])
            .unwrap_err();
        assert!(err.reason.contains("cross-VM"));
    }

    #[test]
    fn default_cni_requires_engine() {
        let (mut vmm, _) = cluster();
        let vm9 = vmm.create_vm(VmSpec::paper_eval("vm9"));
        let pod = PodSpec::new("p", vec![ContainerSpec::new("a", "i:1")]);
        let mut empty = BTreeMap::new();
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut empty,
        };
        let err = DefaultCni.setup(&mut ctx, &pod, &[vm9]).unwrap_err();
        assert!(err.reason.contains("no container engine"));
    }
}
