//! Pods: the orchestrator's unit of deployment.
//!
//! "We use the term pod, from Kubernetes's jargon, to refer to a
//! micro-service" (§1): a group of logically coupled containers that share
//! a localhost interface, volumes, and (pre-Hostlo) a single VM.

use contd::{ContainerSpec, ResourceRequest};
use serde::{Deserialize, Serialize};

/// Pod identifier within a control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PodId(pub u32);

/// A pod specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodSpec {
    /// Pod name.
    pub name: String,
    /// Member containers.
    pub containers: Vec<ContainerSpec>,
}

impl PodSpec {
    /// Builds a pod.
    pub fn new(name: impl Into<String>, containers: Vec<ContainerSpec>) -> PodSpec {
        let spec = PodSpec {
            name: name.into(),
            containers,
        };
        assert!(
            !spec.containers.is_empty(),
            "a pod has at least one container"
        );
        spec
    }

    /// Sum of the member containers' requests — what whole-pod scheduling
    /// must fit into a single VM.
    pub fn total_resources(&self) -> ResourceRequest {
        self.containers
            .iter()
            .fold(ResourceRequest::default(), |acc, c| acc.plus(c.resources))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_members() {
        let pod = PodSpec::new(
            "p",
            vec![
                ContainerSpec::new("a", "img:1").with_resources(ResourceRequest::new(1000, 512)),
                ContainerSpec::new("b", "img:1").with_resources(ResourceRequest::new(500, 256)),
            ],
        );
        let t = pod.total_resources();
        assert_eq!(t.cpu_millis, 1500);
        assert_eq!(t.memory_mib, 768);
    }

    #[test]
    #[should_panic(expected = "at least one container")]
    fn empty_pod_rejected() {
        PodSpec::new("empty", vec![]);
    }
}
