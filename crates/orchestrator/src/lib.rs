//! # nestless-orchestrator
//!
//! A Kubernetes-like pod orchestrator over the simulated VMM/container
//! stack: pods and nodes, the "most requested" whole-pod scheduler the
//! paper simulates against (§5.3.1), a CNI plugin boundary (the integration
//! point for BrFusion and Hostlo, §3.2/§4.2), in-VM agents that configure
//! hot-plugged NICs by the MAC the VMM reports, and a control plane tying
//! it together.

#![warn(missing_docs)]

pub mod agent;
pub mod api;
pub mod cni;
pub mod node;
pub mod pod;
pub mod policy;
pub mod replicaset;
pub mod scheduler;
pub mod service;

pub use agent::{ConfiguredNic, VmAgent};
pub use api::{ControlPlane, DeployError, PodRecord};
pub use cni::{
    ClusterCtx, CniError, CniOutcome, CniPlugin, CniStatus, DefaultCni, PodAttachment,
    PodNetHealth, QueueBinding, RepairedPod,
};
pub use node::{Node, NodeId};
pub use pod::{PodId, PodSpec};
pub use policy::{IngressRule, NetworkPolicy};
pub use replicaset::{ReconcileReport, ReplicaSet, ReplicaSetController, ReplicaSetId};
pub use scheduler::{MostRequestedScheduler, Placement, SchedError, Scheduler};
pub use service::Service;
