//! Nodes: the VMs the orchestrator schedules onto.

use contd::ResourceRequest;
use serde::{Deserialize, Serialize};
use vmm::{VmId, VmSpec};

/// Node index in the control plane's registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A schedulable node (a VM registered with the control plane).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The backing VM.
    pub vm: VmId,
    /// Allocatable capacity.
    pub capacity: ResourceRequest,
    /// Currently allocated requests.
    pub allocated: ResourceRequest,
}

impl Node {
    /// Builds a node from a VM's spec (1 vCPU = 1000 millicores).
    pub fn from_vm(vm: VmId, spec: &VmSpec) -> Node {
        Node {
            vm,
            capacity: ResourceRequest::new(u64::from(spec.vcpus) * 1000, spec.memory_mib),
            allocated: ResourceRequest::default(),
        }
    }

    /// Resources still free.
    pub fn free(&self) -> ResourceRequest {
        ResourceRequest::new(
            self.capacity
                .cpu_millis
                .saturating_sub(self.allocated.cpu_millis),
            self.capacity
                .memory_mib
                .saturating_sub(self.allocated.memory_mib),
        )
    }

    /// True when `req` fits in the remaining capacity.
    pub fn fits(&self, req: ResourceRequest) -> bool {
        req.fits_in(self.free())
    }

    /// Commits an allocation.
    ///
    /// # Panics
    /// Panics if the request does not fit (callers must check first).
    pub fn allocate(&mut self, req: ResourceRequest) {
        assert!(
            self.fits(req),
            "allocation does not fit on node {:?}",
            self.vm
        );
        self.allocated = self.allocated.plus(req);
    }

    /// The "requested fraction" the most-requested policy maximizes:
    /// mean of CPU and memory utilization after hypothetically placing
    /// `req` (Kubernetes `MostRequestedPriority`).
    pub fn requested_fraction_with(&self, req: ResourceRequest) -> f64 {
        let cpu = (self.allocated.cpu_millis + req.cpu_millis) as f64
            / self.capacity.cpu_millis.max(1) as f64;
        let mem = (self.allocated.memory_mib + req.memory_mib) as f64
            / self.capacity.memory_mib.max(1) as f64;
        (cpu + mem) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::from_vm(VmId(0), &VmSpec::paper_eval("vm0"))
    }

    #[test]
    fn capacity_from_vm_spec() {
        let n = node();
        assert_eq!(n.capacity.cpu_millis, 5000);
        assert_eq!(n.capacity.memory_mib, 4096);
    }

    #[test]
    fn allocate_and_free() {
        let mut n = node();
        let req = ResourceRequest::new(2000, 1024);
        assert!(n.fits(req));
        n.allocate(req);
        assert_eq!(n.free().cpu_millis, 3000);
        assert_eq!(n.free().memory_mib, 3072);
        assert!(!n.fits(ResourceRequest::new(4000, 1)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn over_allocate_panics() {
        let mut n = node();
        n.allocate(ResourceRequest::new(6000, 1));
    }

    #[test]
    fn requested_fraction_grows_with_load() {
        let mut n = node();
        let req = ResourceRequest::new(1000, 1024);
        let before = n.requested_fraction_with(req);
        n.allocate(ResourceRequest::new(2000, 1024));
        let after = n.requested_fraction_with(req);
        assert!(after > before);
    }
}
