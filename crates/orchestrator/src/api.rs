//! The control plane: node registry, pod deployment, CNI dispatch.

use crate::cni::{
    ClusterCtx, CniError, CniPlugin, CniStatus, PodAttachment, PodNetHealth, QueueBinding,
    RepairedPod,
};
use crate::node::{Node, NodeId};
use crate::pod::{PodId, PodSpec};
use crate::policy::NetworkPolicy;
use crate::scheduler::{Placement, SchedError, Scheduler};
use cloudsim::{FreeCapIndex, Res};
use contd::{Image, NetworkMode};
use simnet::StopCondition;
use std::fmt;
use vmm::{VmId, Vmm};

/// A deployed pod as the control plane tracks it.
#[derive(Debug)]
pub struct PodRecord {
    /// Identity.
    pub id: PodId,
    /// Spec as deployed.
    pub spec: PodSpec,
    /// Where each container landed.
    pub placement: Placement,
    /// Per-container network attachments from the CNI plugin.
    pub attachments: Vec<PodAttachment>,
    /// Whether the pod got the plugin's preferred wiring or a degraded
    /// fallback (as of deployment; repairs are reported by the plugin).
    pub net_health: PodNetHealth,
    /// Shared-queue bindings (queue-multiplexing plugins only).
    pub queues: Vec<QueueBinding>,
    /// False once deleted (ids stay stable; records are tombstoned).
    pub live: bool,
}

/// Deployment failure.
#[derive(Debug)]
pub enum DeployError {
    /// The scheduler found no placement.
    Unschedulable(SchedError),
    /// The CNI plugin failed.
    Network(crate::cni::CniError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Unschedulable(e) => write!(f, "{e}"),
            DeployError::Network(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// The orchestrator control plane.
pub struct ControlPlane {
    nodes: Vec<Node>,
    pods: Vec<PodRecord>,
    scheduler: Box<dyn Scheduler>,
    cni: Box<dyn CniPlugin>,
    /// Incremental free-capacity index mirroring `nodes` (node `i` is
    /// index id `i`), kept in sync at every allocation change so
    /// schedulers can skip the full-node rescan.
    index: FreeCapIndex,
    /// Stored NetworkPolicy objects; enforced on matching live pods and
    /// auto-applied to matching pods deployed later.
    policies: Vec<NetworkPolicy>,
}

impl ControlPlane {
    /// How many times a transient CNI failure is retried per deployment
    /// (the initial attempt plus `CNI_RETRIES` more).
    pub const CNI_RETRIES: u32 = 3;

    /// Backoff before the first CNI retry; doubles per further attempt.
    pub const CNI_BACKOFF: simnet::SimDuration = simnet::SimDuration::millis(10);

    /// Creates a control plane with a scheduler and a CNI plugin.
    pub fn new(scheduler: Box<dyn Scheduler>, cni: Box<dyn CniPlugin>) -> ControlPlane {
        ControlPlane {
            nodes: Vec::new(),
            pods: Vec::new(),
            scheduler,
            cni,
            index: FreeCapIndex::new(),
            policies: Vec::new(),
        }
    }

    /// Registers a VM as a schedulable node.
    pub fn register_node(&mut self, vmm: &Vmm, vm: VmId) -> NodeId {
        let node = Node::from_vm(vm, &vmm.vm(vm).spec);
        let cap = Res::new(node.capacity.cpu_millis, node.capacity.memory_mib);
        self.nodes.push(node);
        let id = self.index.insert(cap, Res::ZERO);
        debug_assert_eq!(id as usize, self.nodes.len() - 1, "index mirrors registry");
        NodeId(self.nodes.len() - 1)
    }

    /// The free-capacity index over the registry (node `i` is id `i`).
    pub fn index(&self) -> &FreeCapIndex {
        &self.index
    }

    /// Re-syncs one node's allocation total into the index.
    fn sync_index(&mut self, node: NodeId) {
        let n = &self.nodes[node.0];
        self.index.update_used(
            node.0 as u32,
            Res::new(n.allocated.cpu_millis, n.allocated.memory_mib),
        );
    }

    /// Registered nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Deployed pods.
    pub fn pods(&self) -> &[PodRecord] {
        &self.pods
    }

    /// Looks up a pod.
    pub fn pod(&self, id: PodId) -> &PodRecord {
        &self.pods[id.0 as usize]
    }

    /// Deletes a pod: frees its node allocations and tombstones the
    /// record. Simulated network devices stay in the graph (they just go
    /// quiet), like a real pod's veths pending GC.
    ///
    /// # Panics
    /// Panics if the pod is already deleted.
    pub fn delete_pod(&mut self, id: PodId) {
        let rec = &mut self.pods[id.0 as usize];
        assert!(rec.live, "pod {id:?} already deleted");
        rec.live = false;
        for (c, &node) in rec.spec.containers.iter().zip(&rec.placement.assignments) {
            let n = &mut self.nodes[node.0];
            n.allocated = contd::ResourceRequest::new(
                n.allocated
                    .cpu_millis
                    .saturating_sub(c.resources.cpu_millis),
                n.allocated
                    .memory_mib
                    .saturating_sub(c.resources.memory_mib),
            );
        }
        let touched = self.pods[id.0 as usize].placement.assignments.clone();
        for node in touched {
            self.sync_index(node);
        }
    }

    /// Live (non-deleted) pods.
    pub fn live_pods(&self) -> impl Iterator<Item = &PodRecord> {
        self.pods.iter().filter(|p| p.live)
    }

    /// Cordons and drains a node: marks it unschedulable and re-deploys
    /// every pod that had containers there. Returns the re-deployed pod
    /// ids (paired old -> new). Pods that no longer fit anywhere are
    /// reported in the error side.
    ///
    /// The network attachments of evicted pods are re-wired by the CNI
    /// plugin for the new placement; the old simulated devices stay in the
    /// graph (as a real drain leaves garbage until GC).
    pub fn drain_node(
        &mut self,
        ctx: &mut ClusterCtx<'_>,
        node: NodeId,
    ) -> (Vec<(PodId, PodId)>, Vec<PodId>) {
        // Cordon: zero allocatable capacity.
        let drained_vm = self.nodes[node.0].vm;
        self.nodes[node.0].capacity = contd::ResourceRequest::default();
        self.nodes[node.0].allocated = contd::ResourceRequest::default();
        self.index.reset(node.0 as u32, Res::ZERO, Res::ZERO);

        let victims: Vec<PodId> = self
            .pods
            .iter()
            .filter(|p| p.live && p.placement.assignments.contains(&node))
            .map(|p| p.id)
            .collect();
        let mut moved = Vec::new();
        let mut failed = Vec::new();
        for pod in victims {
            let spec = self.pods[pod.0 as usize].spec.clone();
            match self.deploy_pod(ctx, spec) {
                Ok(new_id) => {
                    debug_assert!(self
                        .pods
                        .last()
                        .expect("just deployed")
                        .placement
                        .assignments
                        .iter()
                        .all(|n| self.nodes[n.0].vm != drained_vm));
                    self.pods[pod.0 as usize].live = false;
                    moved.push((pod, new_id));
                }
                Err(_) => failed.push(pod),
            }
        }
        ctx.vmm.network_mut().journal_external(
            simnet::JournalKind::SchedDrain,
            node.0 as u64,
            moved.len() as u64,
            failed.len() as u64,
        );
        (moved, failed)
    }

    /// Deploys a pod: schedule, commit allocations, wire the network via
    /// the CNI plugin, create the containers.
    pub fn deploy_pod(
        &mut self,
        ctx: &mut ClusterCtx<'_>,
        spec: PodSpec,
    ) -> Result<PodId, DeployError> {
        let placement = self
            .scheduler
            .place_indexed(&spec, &self.nodes, &self.index)
            .map_err(DeployError::Unschedulable)?;
        assert_eq!(
            placement.assignments.len(),
            spec.containers.len(),
            "scheduler must assign every container"
        );

        // Commit resource allocations.
        for (c, &node) in spec.containers.iter().zip(&placement.assignments) {
            self.nodes[node.0].allocate(c.resources);
        }
        for &node in &placement.assignments {
            self.sync_index(node);
        }

        // Resolve node -> VM for the CNI plugin.
        let vm_placement: Vec<VmId> = placement
            .assignments
            .iter()
            .map(|n| self.nodes[n.0].vm)
            .collect();
        // Transient CNI failures (a wedged management socket, a crashed
        // VM mid-restart) are retried with exponential backoff; the wait
        // advances simulated time so outage windows actually pass. A
        // final failure rolls the committed allocations back.
        let mut backoff = Self::CNI_BACKOFF;
        let mut attempt = 0;
        let outcome = loop {
            match self.cni.setup(ctx, &spec, &vm_placement) {
                Ok(outcome) => break outcome,
                Err(e) if e.retryable && attempt < Self::CNI_RETRIES => {
                    attempt += 1;
                    ctx.vmm.network_mut().run(StopCondition::For(backoff));
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => {
                    for (c, &node) in spec.containers.iter().zip(&placement.assignments) {
                        let n = &mut self.nodes[node.0];
                        n.allocated = contd::ResourceRequest::new(
                            n.allocated
                                .cpu_millis
                                .saturating_sub(c.resources.cpu_millis),
                            n.allocated
                                .memory_mib
                                .saturating_sub(c.resources.memory_mib),
                        );
                    }
                    for &node in &placement.assignments {
                        self.sync_index(node);
                    }
                    return Err(DeployError::Network(e));
                }
            }
        };

        // Create the containers (network handled above).
        for (c, &vm) in spec.containers.iter().zip(&vm_placement) {
            let engine = ctx
                .engines
                .get_mut(&vm)
                .unwrap_or_else(|| panic!("no engine on {vm:?} after CNI success"));
            ensure_image(engine, &c.image);
            engine.create_container(ctx.vmm, c.clone(), NetworkMode::External);
        }

        let id = PodId(self.pods.len() as u32);
        ctx.vmm.network_mut().journal_external(
            simnet::JournalKind::SchedPlace,
            u64::from(id.0),
            placement.assignments[0].0 as u64,
            placement.assignments.len() as u64,
        );
        self.pods.push(PodRecord {
            id,
            spec,
            placement,
            attachments: outcome.attachments,
            net_health: outcome.health,
            queues: outcome.queues,
            live: true,
        });

        // NetworkPolicy objects are cluster state: a pod deployed after
        // the policy was applied still gets its chains (K8s semantics).
        let matching: Vec<NetworkPolicy> = self
            .policies
            .iter()
            .filter(|p| p.selects(&self.pods[id.0 as usize].spec))
            .cloned()
            .collect();
        for pol in &matching {
            let rec = &self.pods[id.0 as usize];
            let (spec, atts) = (rec.spec.clone(), rec.attachments.clone());
            self.cni
                .apply_policy(ctx, &spec, &atts, pol)
                .map_err(DeployError::Network)?;
        }
        Ok(id)
    }

    /// Applies a NetworkPolicy: compiles it onto every matching live
    /// pod's enforcement point (the CNI plugin decides where) and stores
    /// it so matching pods deployed later are covered too. Returns the
    /// number of filter rules installed now.
    pub fn apply_policy(
        &mut self,
        ctx: &mut ClusterCtx<'_>,
        policy: NetworkPolicy,
    ) -> Result<usize, CniError> {
        let targets: Vec<usize> = self
            .pods
            .iter()
            .enumerate()
            .filter(|(_, p)| p.live && policy.selects(&p.spec))
            .map(|(i, _)| i)
            .collect();
        let mut installed = 0;
        for i in targets {
            let (spec, atts) = {
                let rec = &self.pods[i];
                (rec.spec.clone(), rec.attachments.clone())
            };
            installed += self.cni.apply_policy(ctx, &spec, &atts, &policy)?;
        }
        self.policies.push(policy);
        Ok(installed)
    }

    /// Stored NetworkPolicy objects, in application order.
    pub fn policies(&self) -> &[NetworkPolicy] {
        &self.policies
    }

    /// One repair pass over degraded pod networking: asks the CNI plugin
    /// to restore any pods it downgraded during a fault (BrFusion pods on
    /// the fallback nested path re-promote here). Returns how many pods
    /// were repaired. Call it periodically, like a kubelet sync loop.
    pub fn repair_network(&mut self, ctx: &mut ClusterCtx<'_>) -> usize {
        self.cni.maintain(ctx)
    }

    /// The CNI plugin's fault-handling state (all-zero for plugins without
    /// a degraded mode).
    pub fn cni_status(&self) -> CniStatus {
        self.cni.status()
    }

    /// Drains the pods whose preferred wiring the plugin restored since
    /// the last call, updating their records to the repaired attachments.
    pub fn drain_repaired(&mut self) -> Vec<RepairedPod> {
        let repaired = self.cni.drain_repaired();
        for r in &repaired {
            if let Some(rec) = self
                .pods
                .iter_mut()
                .rev()
                .find(|p| p.live && p.spec.name == r.pod)
            {
                rec.attachments = r.outcome.attachments.clone();
                rec.net_health = r.outcome.health.clone();
                rec.queues = r.outcome.queues.clone();
            }
        }
        repaired
    }
}

/// Pulls a synthetic image for `reference` if the engine does not have it
/// (the orchestrator's imagePull behaviour).
fn ensure_image(engine: &mut contd::ContainerEngine, reference: &str) {
    let (name, tag) = reference.split_once(':').unwrap_or((reference, "latest"));
    engine.pull(&Image::new(name, tag, &[64, 16, 4]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cni::DefaultCni;
    use crate::scheduler::MostRequestedScheduler;
    use contd::{ContainerEngine, ContainerSpec, ResourceRequest};
    use simnet::{Ip4, Ip4Net};
    use std::collections::BTreeMap;
    use vmm::VmSpec;

    fn cluster(n: usize) -> (Vmm, BTreeMap<VmId, ContainerEngine>, ControlPlane) {
        let mut vmm = Vmm::new(0);
        let br = vmm.create_bridge("br0", 32);
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let mut engines = BTreeMap::new();
        let mut cp = ControlPlane::new(Box::new(MostRequestedScheduler), Box::new(DefaultCni));
        for i in 0..n {
            let vm = vmm.create_vm(VmSpec::paper_eval(format!("vm{i}")));
            let eth0 = vmm.add_nic(vm, br, true, false);
            let eng = ContainerEngine::with_default_bridge(
                &mut vmm,
                vm,
                &eth0,
                subnet.host(10 + i as u32),
                subnet,
                16,
            );
            engines.insert(vm, eng);
            cp.register_node(&vmm, vm);
        }
        (vmm, engines, cp)
    }

    fn pod(name: &str, cpu: u64) -> PodSpec {
        PodSpec::new(
            name,
            vec![
                ContainerSpec::new(format!("{name}-a"), "app:1")
                    .with_resources(ResourceRequest::new(cpu, 256)),
                ContainerSpec::new(format!("{name}-b"), "app:1")
                    .with_resources(ResourceRequest::new(cpu, 256)),
            ],
        )
    }

    #[test]
    fn deploy_places_wires_and_creates() {
        let (mut vmm, mut engines, mut cp) = cluster(2);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let id = cp.deploy_pod(&mut ctx, pod("p0", 1000)).unwrap();
        let rec = cp.pod(id);
        assert!(rec.placement.is_single_node());
        assert_eq!(rec.attachments.len(), 2);
        let vm = cp.nodes()[rec.placement.assignments[0].0].vm;
        assert_eq!(engines[&vm].containers().len(), 2);
    }

    #[test]
    fn allocations_accumulate_and_gate() {
        let (mut vmm, mut engines, mut cp) = cluster(1);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        // 2 x 2000 mCPU fits a 5000 node...
        cp.deploy_pod(&mut ctx, pod("p0", 2000)).unwrap();
        // ...but a second such pod does not (4000 + 4000 > 5000).
        let err = cp.deploy_pod(&mut ctx, pod("p1", 2000)).unwrap_err();
        assert!(matches!(err, DeployError::Unschedulable(_)));
        assert_eq!(cp.pods().len(), 1);
    }

    #[test]
    fn delete_pod_frees_allocations() {
        let (mut vmm, mut engines, mut cp) = cluster(1);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let id = cp.deploy_pod(&mut ctx, pod("p0", 2000)).unwrap();
        // The node is full: a second pod is refused...
        assert!(cp.deploy_pod(&mut ctx, pod("p1", 2000)).is_err());
        // ...until the first is deleted.
        cp.delete_pod(id);
        assert_eq!(cp.live_pods().count(), 0);
        let id2 = cp.deploy_pod(&mut ctx, pod("p1", 2000)).unwrap();
        assert_ne!(id, id2);
        assert_eq!(cp.live_pods().count(), 1);
    }

    #[test]
    #[should_panic(expected = "already deleted")]
    fn double_delete_panics() {
        let (mut vmm, mut engines, mut cp) = cluster(1);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let id = cp.deploy_pod(&mut ctx, pod("p0", 100)).unwrap();
        cp.delete_pod(id);
        cp.delete_pod(id);
    }

    #[test]
    fn drain_reschedules_pods_elsewhere() {
        let (mut vmm, mut engines, mut cp) = cluster(2);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let id = cp.deploy_pod(&mut ctx, pod("p0", 500)).unwrap();
        let old_node = cp.pod(id).placement.assignments[0];
        let (moved, failed) = cp.drain_node(&mut ctx, old_node);
        assert_eq!(moved.len(), 1);
        assert!(failed.is_empty());
        let (_, new_id) = moved[0];
        assert_ne!(cp.pod(new_id).placement.assignments[0], old_node);
        // Drained node takes no further pods.
        let id2 = cp.deploy_pod(&mut ctx, pod("p1", 500)).unwrap();
        assert_ne!(cp.pod(id2).placement.assignments[0], old_node);
    }

    #[test]
    fn drain_reports_unschedulable_victims() {
        let (mut vmm, mut engines, mut cp) = cluster(1);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let id = cp.deploy_pod(&mut ctx, pod("p0", 2000)).unwrap();
        let node = cp.pod(id).placement.assignments[0];
        // Only node drained: nowhere to go.
        let (moved, failed) = cp.drain_node(&mut ctx, node);
        assert!(moved.is_empty());
        assert_eq!(failed, vec![id]);
    }

    /// A plugin that fails the first `fail` setups, then delegates to the
    /// default plugin. `retryable` selects the failure class.
    struct FlakyCni {
        fail: u32,
        retryable: bool,
        calls: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl CniPlugin for FlakyCni {
        fn name(&self) -> &str {
            "flaky"
        }
        fn setup(
            &mut self,
            ctx: &mut ClusterCtx<'_>,
            pod: &PodSpec,
            placement: &[VmId],
        ) -> Result<crate::cni::CniOutcome, crate::cni::CniError> {
            self.calls.set(self.calls.get() + 1);
            if self.calls.get() <= self.fail {
                return Err(if self.retryable {
                    crate::cni::CniError::retryable("injected transient fault")
                } else {
                    crate::cni::CniError::fatal("injected permanent fault")
                });
            }
            DefaultCni.setup(ctx, pod, placement)
        }
    }

    fn flaky_cluster(
        fail: u32,
        retryable: bool,
    ) -> (
        Vmm,
        BTreeMap<VmId, ContainerEngine>,
        ControlPlane,
        std::rc::Rc<std::cell::Cell<u32>>,
    ) {
        let (vmm, engines, _) = cluster(1);
        let calls = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut cp = ControlPlane::new(
            Box::new(MostRequestedScheduler),
            Box::new(FlakyCni {
                fail,
                retryable,
                calls: calls.clone(),
            }),
        );
        for node_vm in engines.keys() {
            cp.register_node(&vmm, *node_vm);
        }
        (vmm, engines, cp, calls)
    }

    #[test]
    fn transient_cni_failure_is_retried_with_backoff() {
        let (mut vmm, mut engines, mut cp, calls) = flaky_cluster(2, true);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let id = cp.deploy_pod(&mut ctx, pod("p0", 100)).unwrap();
        assert_eq!(calls.get(), 3, "two failures then success");
        assert_eq!(cp.pod(id).attachments.len(), 2);
        // The two backoffs (10ms + 20ms) advanced simulated time.
        let now = vmm.network().now();
        assert!(
            now.since(simnet::SimTime::ZERO) >= simnet::SimDuration::millis(30),
            "backoff must advance sim time, now={now:?}"
        );
    }

    #[test]
    fn fatal_cni_failure_rolls_back_allocations() {
        let (mut vmm, mut engines, mut cp, calls) = flaky_cluster(1, false);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        // 2 x 2000 mCPU fills the 5000 node; a fatal CNI error must not
        // leave that committed.
        let err = cp.deploy_pod(&mut ctx, pod("p0", 2000)).unwrap_err();
        assert!(matches!(err, DeployError::Network(ref e) if !e.retryable));
        assert_eq!(calls.get(), 1, "fatal errors are not retried");
        assert_eq!(cp.nodes()[0].allocated, ResourceRequest::default());
        // The freed capacity is immediately usable.
        cp.deploy_pod(&mut ctx, pod("p1", 2000)).unwrap();
    }

    #[test]
    fn retry_budget_is_bounded() {
        let (mut vmm, mut engines, mut cp, calls) = flaky_cluster(u32::MAX, true);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let err = cp.deploy_pod(&mut ctx, pod("p0", 2000)).unwrap_err();
        assert!(matches!(err, DeployError::Network(_)));
        assert_eq!(calls.get(), 1 + ControlPlane::CNI_RETRIES);
        // Allocations rolled back even on retryable exhaustion.
        assert_eq!(cp.nodes()[0].allocated, ResourceRequest::default());
    }

    /// Regression for the index-backed control plane: on the seed
    /// topology, every placement across deploy/delete/drain churn is
    /// exactly what the legacy full-node scan would have chosen.
    #[test]
    fn indexed_placements_unchanged_on_seed_topology() {
        let (mut vmm, mut engines, mut cp) = cluster(3);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let mut ids = Vec::new();
        for (name, cpu) in [("a", 500), ("b", 1200), ("c", 700), ("d", 300), ("e", 900)] {
            let spec = pod(name, cpu);
            let expect = MostRequestedScheduler.place(&spec, cp.nodes()).unwrap();
            let id = cp.deploy_pod(&mut ctx, spec).unwrap();
            assert_eq!(cp.pod(id).placement, expect, "pod {name}");
            ids.push(id);
        }
        // Free capacity and verify the next decision still matches.
        cp.delete_pod(ids[1]);
        let spec = pod("f", 800);
        let expect = MostRequestedScheduler.place(&spec, cp.nodes()).unwrap();
        let id = cp.deploy_pod(&mut ctx, spec).unwrap();
        assert_eq!(cp.pod(id).placement, expect, "pod f after delete");
        // Drain (capacity drops to zero) and verify again.
        let drained = cp.pod(ids[0]).placement.assignments[0];
        cp.drain_node(&mut ctx, drained);
        let spec = pod("g", 400);
        let expect = MostRequestedScheduler.place(&spec, cp.nodes()).unwrap();
        let id = cp.deploy_pod(&mut ctx, spec).unwrap();
        assert_eq!(cp.pod(id).placement, expect, "pod g after drain");
        assert_ne!(cp.pod(id).placement.assignments[0], drained);
    }

    #[test]
    fn most_requested_groups_pods() {
        let (mut vmm, mut engines, mut cp) = cluster(3);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let a = cp.deploy_pod(&mut ctx, pod("p0", 500)).unwrap();
        let b = cp.deploy_pod(&mut ctx, pod("p1", 500)).unwrap();
        // Second pod lands on the same (now fullest) node.
        assert_eq!(
            cp.pod(a).placement.assignments[0],
            cp.pod(b).placement.assignments[0]
        );
    }
}
