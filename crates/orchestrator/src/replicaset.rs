//! ReplicaSet-style controllers: maintain N replicas of a pod template.
//!
//! The paper's motivating cloud (ESA's imagery platform, §1) deploys
//! micro-services as replicated pods; this controller is the orchestration
//! loop that keeps the declared replica count running, re-deploying through
//! whatever CNI plugin the control plane carries (default, BrFusion or
//! Hostlo).

use crate::api::{ControlPlane, DeployError};
use crate::cni::ClusterCtx;
use crate::pod::{PodId, PodSpec};
use serde::{Deserialize, Serialize};

/// Identifier of a replica set within a [`ReplicaSetController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaSetId(pub u32);

/// Declared state of one replica set.
#[derive(Debug, Clone)]
pub struct ReplicaSet {
    /// Identity.
    pub id: ReplicaSetId,
    /// Pod template; replica pods are named `{template}-{ordinal}`.
    pub template: PodSpec,
    /// Desired replica count.
    pub replicas: u32,
    /// Deployed pods, by ordinal.
    pub pods: Vec<PodId>,
    next_ordinal: u32,
}

impl ReplicaSet {
    /// Replicas currently deployed.
    pub fn ready(&self) -> u32 {
        self.pods.len() as u32
    }
}

/// Outcome of one reconciliation pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconcileReport {
    /// Pods created this pass.
    pub created: u32,
    /// Creations that failed (kept pending for the next pass).
    pub failed: u32,
}

/// The controller: owns replica sets, reconciles them against a control
/// plane.
#[derive(Debug, Default)]
pub struct ReplicaSetController {
    sets: Vec<ReplicaSet>,
}

impl ReplicaSetController {
    /// Creates an empty controller.
    pub fn new() -> ReplicaSetController {
        ReplicaSetController::default()
    }

    /// Declares a replica set.
    pub fn create(&mut self, template: PodSpec, replicas: u32) -> ReplicaSetId {
        let id = ReplicaSetId(self.sets.len() as u32);
        self.sets.push(ReplicaSet {
            id,
            template,
            replicas,
            pods: Vec::new(),
            next_ordinal: 0,
        });
        id
    }

    /// Reads a replica set.
    pub fn get(&self, id: ReplicaSetId) -> &ReplicaSet {
        &self.sets[id.0 as usize]
    }

    /// Rescales a replica set (scale-down only stops tracking the excess
    /// pods; the simulated containers keep their devices, as with real
    /// graceful termination grace periods).
    pub fn scale(&mut self, id: ReplicaSetId, replicas: u32) {
        let set = &mut self.sets[id.0 as usize];
        set.replicas = replicas;
        set.pods.truncate(replicas as usize);
    }

    /// One reconciliation pass: deploy any missing replicas of every set.
    /// Unschedulable replicas are reported and retried on the next pass.
    pub fn reconcile(
        &mut self,
        cp: &mut ControlPlane,
        ctx: &mut ClusterCtx<'_>,
    ) -> ReconcileReport {
        let mut report = ReconcileReport {
            created: 0,
            failed: 0,
        };
        for set in &mut self.sets {
            while set.ready() < set.replicas {
                let mut spec = set.template.clone();
                spec.name = format!("{}-{}", set.template.name, set.next_ordinal);
                match cp.deploy_pod(ctx, spec) {
                    Ok(pod) => {
                        set.pods.push(pod);
                        set.next_ordinal += 1;
                        report.created += 1;
                    }
                    Err(DeployError::Unschedulable(_)) => {
                        report.failed += 1;
                        break; // no capacity now; retry next pass
                    }
                    Err(e) => panic!("CNI failure during reconcile: {e}"),
                }
            }
        }
        report
    }

    /// Total pods across all sets.
    pub fn total_ready(&self) -> u32 {
        self.sets.iter().map(ReplicaSet::ready).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cni::DefaultCni;
    use crate::scheduler::MostRequestedScheduler;
    use contd::{ContainerEngine, ContainerSpec, ResourceRequest};
    use simnet::{Ip4, Ip4Net};
    use std::collections::BTreeMap;
    use vmm::{VmId, VmSpec, Vmm};

    fn cluster(nodes: usize) -> (Vmm, BTreeMap<VmId, ContainerEngine>, ControlPlane) {
        let mut vmm = Vmm::new(0);
        let br = vmm.create_bridge("br0", 64);
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let mut engines = BTreeMap::new();
        let mut cp = ControlPlane::new(Box::new(MostRequestedScheduler), Box::new(DefaultCni));
        for i in 0..nodes {
            let vm = vmm.create_vm(VmSpec::paper_eval(format!("vm{i}")));
            let eth0 = vmm.add_nic(vm, br, true, false);
            engines.insert(
                vm,
                ContainerEngine::with_default_bridge(
                    &mut vmm,
                    vm,
                    &eth0,
                    subnet.host(10 + i as u32),
                    subnet,
                    16,
                ),
            );
            cp.register_node(&vmm, vm);
        }
        (vmm, engines, cp)
    }

    fn template(cpu: u64) -> PodSpec {
        PodSpec::new(
            "web",
            vec![ContainerSpec::new("srv", "app:1").with_resources(ResourceRequest::new(cpu, 128))],
        )
    }

    #[test]
    fn reconcile_deploys_declared_replicas() {
        let (mut vmm, mut engines, mut cp) = cluster(2);
        let mut rsc = ReplicaSetController::new();
        let rs = rsc.create(template(500), 4);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let report = rsc.reconcile(&mut cp, &mut ctx);
        assert_eq!(
            report,
            ReconcileReport {
                created: 4,
                failed: 0
            }
        );
        assert_eq!(rsc.get(rs).ready(), 4);
        // Replica pods are named with ordinals.
        assert_eq!(cp.pods()[0].spec.name, "web-0");
        assert_eq!(cp.pods()[3].spec.name, "web-3");
        // Reconcile is idempotent at the fixed point.
        let again = rsc.reconcile(&mut cp, &mut ctx);
        assert_eq!(again.created, 0);
    }

    #[test]
    fn scale_up_adds_only_the_difference() {
        let (mut vmm, mut engines, mut cp) = cluster(2);
        let mut rsc = ReplicaSetController::new();
        let rs = rsc.create(template(500), 2);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        rsc.reconcile(&mut cp, &mut ctx);
        rsc.scale(rs, 5);
        let report = rsc.reconcile(&mut cp, &mut ctx);
        assert_eq!(report.created, 3);
        assert_eq!(rsc.get(rs).ready(), 5);
    }

    #[test]
    fn capacity_exhaustion_reports_failures_and_retries() {
        // One 5-vCPU node; 2000 mCPU replicas: only 2 fit.
        let (mut vmm, mut engines, mut cp) = cluster(1);
        let mut rsc = ReplicaSetController::new();
        let rs = rsc.create(template(2000), 5);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let report = rsc.reconcile(&mut cp, &mut ctx);
        assert_eq!(report.created, 2);
        assert_eq!(report.failed, 1);
        assert_eq!(rsc.get(rs).ready(), 2);
        // More capacity appears -> the next pass finishes the job.
        let vm = ctx.vmm.create_vm(VmSpec {
            name: "big".into(),
            vcpus: 8,
            memory_mib: 8192,
        });
        let br = ctx.vmm.bridge_by_name("br0").unwrap();
        let eth = ctx.vmm.add_nic(vm, br, true, false);
        let subnet = Ip4Net::new(Ip4::new(192, 168, 0, 0), 24);
        let eng =
            ContainerEngine::with_default_bridge(ctx.vmm, vm, &eth, subnet.host(90), subnet, 16);
        ctx.engines.insert(vm, eng);
        cp.register_node(ctx.vmm, vm);
        let report = rsc.reconcile(&mut cp, &mut ctx);
        assert_eq!(report.created, 3);
        assert_eq!(rsc.total_ready(), 5);
    }

    #[test]
    fn multiple_sets_reconcile_together() {
        let (mut vmm, mut engines, mut cp) = cluster(3);
        let mut rsc = ReplicaSetController::new();
        let a = rsc.create(template(300), 2);
        let b = rsc.create(template(400), 3);
        let mut ctx = ClusterCtx {
            vmm: &mut vmm,
            engines: &mut engines,
        };
        let report = rsc.reconcile(&mut cp, &mut ctx);
        assert_eq!(report.created, 5);
        assert_eq!(rsc.get(a).ready(), 2);
        assert_eq!(rsc.get(b).ready(), 3);
    }
}
