//! Figure output: JSON artifacts plus paper-style console tables.
//!
//! Every `fig*` binary produces one [`Figure`]: a set of named series or
//! rows, headline comparisons, and notes. Results are printed as aligned
//! tables and written to `results/<id>.json` so EXPERIMENTS.md can quote
//! them verbatim.

use metrics::Series;
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// One reproduced figure or table.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Identifier, e.g. "fig04".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Swept series (message-size figures).
    pub series: Vec<Series>,
    /// Free-form table rows: `(label, value, unit)`.
    pub rows: Vec<(String, f64, String)>,
    /// Headline claims checked against the paper.
    pub claims: Vec<Claim>,
}

/// A headline comparison: paper value vs measured.
#[derive(Debug, Clone, Serialize)]
pub struct Claim {
    /// What is being compared (e.g. "NAT throughput degradation @1280B").
    pub what: String,
    /// The paper's reported value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit or scale ("%", "x", "$/h", "us").
    pub unit: String,
}

impl Claim {
    /// Builds a claim.
    pub fn new(
        what: impl Into<String>,
        paper: f64,
        measured: f64,
        unit: impl Into<String>,
    ) -> Claim {
        Claim {
            what: what.into(),
            paper,
            measured,
            unit: unit.into(),
        }
    }
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Figure {
        Figure {
            id: id.into(),
            title: title.into(),
            series: Vec::new(),
            rows: Vec::new(),
            claims: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Adds a table row.
    pub fn push_row(&mut self, label: impl Into<String>, value: f64, unit: impl Into<String>) {
        self.rows.push((label.into(), value, unit.into()));
    }

    /// Adds a paper-vs-measured claim.
    pub fn push_claim(&mut self, c: Claim) {
        self.claims.push(c);
    }

    /// Prints the figure as console tables.
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.title);
        if !self.series.is_empty() {
            // Header: x then one column per series.
            print!("{:>10}", "x");
            for s in &self.series {
                print!("  {:>14}", format!("{} [{}]", s.name, s.unit));
            }
            println!();
            let xs: Vec<f64> = self.series[0].points.iter().map(|p| p.x).collect();
            for (i, x) in xs.iter().enumerate() {
                print!("{x:>10.0}");
                for s in &self.series {
                    match s.points.get(i) {
                        Some(p) => print!("  {:>8.1}±{:<5.1}", p.y.mean, p.y.stddev),
                        None => print!("  {:>14}", "-"),
                    }
                }
                println!();
            }
        }
        for (label, value, unit) in &self.rows {
            println!("  {label:<52} {value:>12.3} {unit}");
        }
        if !self.claims.is_empty() {
            println!("  -- paper vs measured --");
            for c in &self.claims {
                println!(
                    "  {:<52} paper {:>8.2}{u}  measured {:>8.2}{u}",
                    c.what,
                    c.paper,
                    c.measured,
                    u = c.unit
                );
            }
        }
        println!();
    }

    /// Writes `results/<id>.json` under `dir` (created if missing).
    pub fn write_json(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(
            &path,
            serde_json::to_string_pretty(self).expect("figure serializes"),
        )?;
        Ok(path)
    }

    /// Prints and writes to the default `results/` directory.
    pub fn finish(&self) {
        self.print();
        match self.write_json("results") {
            Ok(p) => println!("[written {}]", p.display()),
            Err(e) => eprintln!("[warn: could not write results: {e}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::Summary;

    #[test]
    fn figure_serializes_and_writes() {
        let mut f = Figure::new("figtest", "test figure");
        let mut s = Series::new("NAT", "Mbit/s");
        s.push(
            64.0,
            Summary {
                count: 1,
                mean: 10.0,
                stddev: 1.0,
                min: 9.0,
                max: 11.0,
            },
        );
        f.push_series(s);
        f.push_row("degradation", 68.0, "%");
        f.push_claim(Claim::new("tput ratio", 2.1, 2.3, "x"));
        let dir = std::env::temp_dir().join("nestless-figtest");
        let p = f.write_json(&dir).unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        assert!(text.contains("figtest"));
        assert!(text.contains("NAT"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
