//! Message-size sweeps for the Netperf figures.
//!
//! Each (configuration, message size, mode) cell is an independent
//! deterministic simulation, so the sweep parallelizes over rayon with
//! per-cell seeds derived from the base seed.

use metrics::Series;
use nestless::topology::Config;
use rayon::prelude::*;
use simnet::SimDuration;
use workloads::netperf::{Netperf, MESSAGE_SIZES};

/// Which Netperf mode a sweep measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// UDP_RR latency (microseconds).
    Latency,
    /// TCP_STREAM throughput (Mbit/s).
    Throughput,
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    /// Simulated measurement duration per cell.
    pub duration: SimDuration,
    /// Warm-up per cell.
    pub warmup: SimDuration,
    /// Base seed; cell seeds derive from it.
    pub seed: u64,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep {
            duration: SimDuration::millis(400),
            warmup: SimDuration::millis(50),
            seed: 42,
        }
    }
}

impl Sweep {
    /// Runs one series: `config` across all message sizes.
    pub fn run(&self, config: Config, mode: Mode) -> Series {
        let unit = match mode {
            Mode::Latency => "us",
            Mode::Throughput => "Mbit/s",
        };
        let mut series = Series::new(config.label(), unit);
        let points: Vec<_> = MESSAGE_SIZES
            .par_iter()
            .map(|&size| {
                let np = Netperf {
                    msg_size: size,
                    duration: self.duration,
                    warmup: self.warmup,
                    window: 64,
                };
                // Derive a distinct, deterministic seed per cell.
                let seed = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(size) * 7 + mode as u64);
                let summary = match mode {
                    Mode::Latency => np.udp_rr(config, seed).latency_us.expect("latency run"),
                    Mode::Throughput => np
                        .tcp_stream(config, seed)
                        .throughput_mbps
                        .expect("throughput run"),
                };
                (size, summary)
            })
            .collect();
        for (size, summary) in points {
            series.push(f64::from(size), summary);
        }
        series
    }

    /// Runs several configs for one mode (each config in parallel too).
    pub fn run_all(&self, configs: &[Config], mode: Mode) -> Vec<Series> {
        configs.par_iter().map(|&c| self.run(c, mode)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Sweep {
        Sweep {
            duration: SimDuration::millis(60),
            warmup: SimDuration::millis(20),
            seed: 3,
        }
    }

    #[test]
    fn sweep_produces_full_series() {
        let s = tiny().run(Config::NoCont, Mode::Throughput);
        assert_eq!(s.points.len(), MESSAGE_SIZES.len());
        assert!(s.is_monotone_nondecreasing(), "throughput grows with size");
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = tiny().run(Config::Nat, Mode::Latency);
        let b = tiny().run(Config::Nat, Mode::Latency);
        assert_eq!(a, b);
    }

    #[test]
    fn run_all_returns_one_series_per_config() {
        let all = tiny().run_all(&[Config::Nat, Config::NoCont], Mode::Latency);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "NAT");
        assert_eq!(all[1].name, "NoCont");
    }
}
