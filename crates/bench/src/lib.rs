//! # nestless-bench
//!
//! The figure/table regeneration harness: one binary per figure of the
//! paper (`fig02` … `fig15`), ablation binaries for the design choices
//! called out in DESIGN.md, shared sweep machinery, and Criterion benches.
//!
//! Run everything with `cargo run -p nestless-bench --release --bin run_all`;
//! results land in `results/*.json` and are summarized in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod figure;
pub mod sweep;

pub use figure::{Claim, Figure};
pub use sweep::{Mode, Sweep};
