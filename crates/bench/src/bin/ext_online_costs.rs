//! Extension beyond the paper: *online* cost comparison with pod churn.
//!
//! The paper's fig. 9 is an offline packing; real tenants arrive and
//! depart. This binary runs the event-driven variant (`cloudsim::online`)
//! and reports how much fine-grained (Hostlo-style) placement saves when
//! the bill integrates price over VM uptime.

use cloudsim::{run_online, synthetic_online_trace, OnlineMode};
use nestless_bench::Figure;

fn main() {
    let mut fig = Figure::new(
        "ext_online_costs",
        "Online cost comparison under churn (extension; not a paper figure)",
    );
    let mut whole_total = 0.0;
    let mut fine_total = 0.0;
    for seed in 0..8u64 {
        let trace = synthetic_online_trace(200, 48.0, seed);
        let whole = run_online(&trace, OnlineMode::WholePod);
        let fine = run_online(&trace, OnlineMode::PerContainer);
        whole_total += whole.total_cost;
        fine_total += fine.total_cost;
        fig.push_row(
            format!("seed {seed}: whole-pod bill"),
            whole.total_cost,
            "$",
        );
        fig.push_row(
            format!("seed {seed}: per-container bill"),
            fine.total_cost,
            "$",
        );
        fig.push_row(
            format!("seed {seed}: whole-pod peak VMs"),
            whole.peak_vms as f64,
            "VMs",
        );
        fig.push_row(
            format!("seed {seed}: per-container peak VMs"),
            fine.peak_vms as f64,
            "VMs",
        );
    }
    fig.push_row(
        "aggregate saving under churn",
        (1.0 - fine_total / whole_total) * 100.0,
        "%",
    );
    fig.finish();
}
