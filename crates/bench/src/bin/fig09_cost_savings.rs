//! Figure 9 (+ Table 2): Hostlo cost savings over the user population.
//!
//! "Hostlo reduces costs for about 11.4% of the clients, among which 66.7%
//! show a costs reduction of more than 5%. The maximum relative cost
//! savings are about 40%; the maximum cost save is about 237$/h, which
//! represents a 35% reduction."

use cloudsim::{simulate, synthetic_trace, M5_CATALOG, PAPER_USER_COUNT};
use nestless_bench::{Claim, Figure};

fn main() {
    // Table 2 echo.
    println!("Table 2: AWS EC2 m5 on-demand models");
    println!(
        "{:<14} {:>5} {:>8} {:>10} {:>10} {:>9}",
        "model", "vCPU", "mem GiB", "vCPU rel", "mem rel", "$/h"
    );
    for m in &M5_CATALOG {
        println!(
            "{:<14} {:>5} {:>8} {:>10.4} {:>10.4} {:>9.3}",
            m.name,
            m.vcpus,
            m.memory_gib,
            m.vcpu_rel(),
            m.memory_rel(),
            m.price_per_h
        );
    }
    println!();

    let trace = synthetic_trace(PAPER_USER_COUNT, 2019);
    let report = simulate(&trace);
    let mut fig = Figure::new(
        "fig09",
        "Hostlo cost savings distribution (synthetic Google-like trace)",
    );

    let hist = report.histogram(10);
    for (lo, hi, count) in hist.iter_bins() {
        fig.push_row(format!("savings {lo:.0}-{hi:.0}%"), count as f64, "users");
    }

    let (max_abs, rel_of_max) = report.max_abs_saving();
    fig.push_claim(Claim::new(
        "fraction of users saving",
        11.4,
        report.frac_users_saving() * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "savers above 5%",
        66.7,
        report.frac_savers_above(0.05) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "max relative saving",
        40.0,
        report.max_rel_saving() * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new("max absolute saving", 237.0, max_abs, "$/h"));
    fig.push_claim(Claim::new(
        "relative saving of max-abs user",
        35.0,
        rel_of_max * 100.0,
        "%",
    ));

    // Dispersion across ten trace seeds (beyond the paper's single trace).
    let bands = cloudsim::simulate_bands(PAPER_USER_COUNT, &(0..10).collect::<Vec<u64>>());
    fig.push_row(
        "frac saving, 10-seed mean",
        bands.frac_saving.0 * 100.0,
        "%",
    );
    fig.push_row(
        "frac saving, 10-seed stddev",
        bands.frac_saving.1 * 100.0,
        "%",
    );
    fig.push_row(
        "max rel saving, 10-seed mean",
        bands.max_rel_saving.0 * 100.0,
        "%",
    );
    fig.push_row(
        "max rel saving, 10-seed stddev",
        bands.max_rel_saving.1 * 100.0,
        "%",
    );
    fig.finish();
}
