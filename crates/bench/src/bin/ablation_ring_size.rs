//! Ablation 6: virtqueue depth.
//!
//! The virtio ring bounds how many descriptors may be in flight; a shallow
//! ring drops frames under bursts (visible as `vhost.ring_full`), a deep
//! one only adds memory. This sweeps the depth against a TCP window larger
//! than the smallest rings.

use metrics::CpuLocation;
use nestless_bench::Figure;
use simnet::costs::StageCost;
use simnet::device::PortId;
use simnet::engine::{LinkParams, Network};
use simnet::nic::Vhost;
use simnet::shared::SharedStation;
use simnet::testutil::{frame_between, CaptureSink};
use simnet::StopCondition;
use simnet::{MacAddr, SimDuration};

fn run(ring: usize, burst: u64) -> (f64, f64) {
    let mut net = Network::new(1);
    let vhost = net.add_device(
        "vhost",
        CpuLocation::Host,
        Box::new(
            Vhost::new(
                StageCost::fixed(500, 1.0, metrics::CpuCategory::Sys),
                StageCost::fixed(3_800, 0.0, metrics::CpuCategory::Sys),
                true,
                SharedStation::new(),
            )
            .with_ring_size(ring),
        ),
    );
    let sink = net.add_device(
        "sink",
        CpuLocation::Host,
        Box::new(CaptureSink::new("sink")),
    );
    net.connect(vhost, PortId::P1, sink, PortId::P0, LinkParams::default());
    for _ in 0..burst {
        net.inject_frame(
            SimDuration::ZERO,
            vhost,
            PortId::P0,
            frame_between(MacAddr::local(1), MacAddr::local(2), 1024),
        );
    }
    net.run(StopCondition::Idle);
    (
        net.store().counter("sink.received"),
        net.store().counter("vhost.ring_full"),
    )
}

fn main() {
    let mut fig = Figure::new("ablation_ring_size", "Virtqueue depth vs burst absorption");
    let burst = 512;
    for ring in [16usize, 64, 128, 256, 512, 1024] {
        let (delivered, dropped) = run(ring, burst);
        fig.push_row(
            format!("ring {ring}: delivered of {burst}"),
            delivered,
            "frames",
        );
        fig.push_row(format!("ring {ring}: ring-full drops"), dropped, "frames");
    }
    fig.finish();
}
