//! Figure 8: container start-up time, Docker NAT vs BrFusion, 100 runs.
//!
//! "75% of the measured start up times are slightly better with BrFusion
//! than with Docker NAT."

use contd::fig8_experiment;
use nestless_bench::{Claim, Figure};

fn main() {
    let runs = 100;
    let (nat, brf) = fig8_experiment(runs, 0xF168_u64);
    let mut fig = Figure::new("fig08", "Container start-up time: Docker NAT vs BrFusion");

    // CDF rows at the paper's quartile landmarks.
    for q in [0.25, 0.5, 0.75, 0.9, 0.99] {
        fig.push_row(
            format!("NAT p{:.0}", q * 100.0),
            nat.quantile(q).unwrap(),
            "ms",
        );
        fig.push_row(
            format!("BrFusion p{:.0}", q * 100.0),
            brf.quantile(q).unwrap(),
            "ms",
        );
    }
    fig.push_row("NAT median", nat.median().unwrap(), "ms");
    fig.push_row("BrFusion median", brf.median().unwrap(), "ms");

    let frac = brf.frac_below(&nat).expect("equal run counts");
    fig.push_claim(Claim::new(
        "fraction of runs where BrFusion boots faster",
        75.0,
        frac * 100.0,
        "%",
    ));
    fig.finish();
}
