//! Extension: egress shaping on a pod link (`tc tbf`).
//!
//! Cloud providers cap per-pod egress; this experiment sweeps the cap and
//! shows the stream throughput clamping to it while closed-loop RR latency
//! stays unaffected until the cap binds — evidence the token-bucket device
//! composes with the rest of the stack.

use metrics::CpuLocation;
use nestless_bench::Figure;
use simnet::costs::StageCost;
use simnet::device::PortId;
use simnet::endpoint::{AppApi, Application, Endpoint, IfaceConf, Incoming, START_TOKEN};
use simnet::engine::{LinkParams, Network};
use simnet::rate::RateLimiter;
use simnet::shared::SharedStation;
use simnet::StopCondition;
use simnet::{Ip4, Ip4Net, MacAddr, Payload, SimDuration, SockAddr, TcpKind};

struct Srv;
impl Application for Srv {
    fn on_start(&mut self, _: &mut AppApi<'_, '_>) {}
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
        match msg.tcp {
            Some((seq, TcpKind::Data)) => {
                api.count("rx_bytes", msg.payload.len as f64);
                api.send_tcp(2000, msg.src, seq, TcpKind::Ack, Payload::sized(0));
            }
            _ => {
                // UDP RR probe.
                let mut p = Payload::sized(msg.payload.len);
                p.tag = msg.payload.tag;
                p.sent_at = msg.payload.sent_at;
                api.send_udp(2000, msg.src, p);
            }
        }
    }
}

struct Cli {
    dst: SockAddr,
    seq: u64,
    probes: u64,
}
impl Cli {
    fn stream_one(&mut self, api: &mut AppApi<'_, '_>) {
        self.seq += 1;
        api.send_tcp(
            1000,
            self.dst,
            self.seq,
            TcpKind::Data,
            Payload::sized(1400),
        );
    }
}
impl Application for Cli {
    fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
        for _ in 0..32 {
            self.stream_one(api);
        }
        // Interleave RR probes via timers.
        api.set_timer(SimDuration::millis(1), 1);
    }
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
        match msg.tcp {
            Some((_, TcpKind::Ack)) => self.stream_one(api),
            _ => {
                api.record(
                    "probe_rtt_us",
                    api.now().since(msg.payload.sent_at).as_micros_f64(),
                );
            }
        }
    }
    fn on_timer(&mut self, _: u64, api: &mut AppApi<'_, '_>) {
        self.probes += 1;
        let mut p = Payload::sized(64);
        p.tag = self.probes;
        api.send_udp(1000, self.dst, p);
        api.set_timer(SimDuration::millis(1), 1);
    }
}

fn run(rate_mbps: u64) -> (f64, f64) {
    let subnet = Ip4Net::new(Ip4::new(10, 0, 0, 0), 24);
    let a_mac = MacAddr::local(1);
    let b_mac = MacAddr::local(2);
    let mut net = Network::new(3);
    let sock = StageCost::fixed(1_200, 0.08, metrics::CpuCategory::Usr);
    let cli = Endpoint::new(
        "cli",
        vec![IfaceConf::new(a_mac, subnet.host(1), subnet).with_neigh(subnet.host(2), b_mac)],
        [1000],
        sock,
        SharedStation::new(),
        Box::new(Cli {
            dst: SockAddr::new(subnet.host(2), 2000),
            seq: 0,
            probes: 0,
        }),
    );
    let srv = Endpoint::new(
        "srv",
        vec![IfaceConf::new(b_mac, subnet.host(2), subnet).with_neigh(subnet.host(1), a_mac)],
        [2000],
        sock,
        SharedStation::new(),
        Box::new(Srv),
    );
    let cli_d = net.add_device("cli", CpuLocation::Host, Box::new(cli));
    let srv_d = net.add_device("srv", CpuLocation::Host, Box::new(srv));
    let shaper = net.add_device(
        "tbf",
        CpuLocation::Host,
        Box::new(RateLimiter::new(
            rate_mbps * 1_000_000,
            32 * 1024,
            StageCost::fixed(300, 0.05, metrics::CpuCategory::Sys),
            SharedStation::new(),
        )),
    );
    net.connect(cli_d, PortId::P0, shaper, PortId::P0, LinkParams::default());
    net.connect(shaper, PortId::P1, srv_d, PortId::P0, LinkParams::default());
    net.schedule_timer(SimDuration::ZERO, srv_d, START_TOKEN);
    net.schedule_timer(SimDuration::ZERO, cli_d, START_TOKEN);
    let dur = SimDuration::millis(400);
    net.run(StopCondition::For(dur));
    let tput = net.store().counter("rx_bytes") * 8.0 / dur.as_secs_f64() / 1e6;
    let rtts = net.store().samples("probe_rtt_us");
    let lat = rtts.iter().sum::<f64>() / rtts.len().max(1) as f64;
    (tput, lat)
}

fn main() {
    let mut fig = Figure::new(
        "ext_shaped_pod",
        "Egress cap sweep on a pod link (extension)",
    );
    for rate in [50u64, 100, 250, 500, 1000, 4000] {
        let (tput, lat) = run(rate);
        fig.push_row(
            format!("cap {rate} Mbit/s: stream throughput"),
            tput,
            "Mbit/s",
        );
        fig.push_row(format!("cap {rate} Mbit/s: probe latency"), lat, "us");
    }
    fig.finish();
}
