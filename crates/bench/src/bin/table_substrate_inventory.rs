//! Prints the system inventory: every substrate built for this
//! reproduction and its headline statistics on a demo topology — a quick
//! sanity map of what exists (mirrors DESIGN.md §2).

use nestless::topology::{build, Config};
use nestless_bench::Figure;

fn main() {
    let mut fig = Figure::new("inventory", "Substrate inventory (devices on each testbed)");
    for c in Config::ALL {
        let tb = build(c, 1);
        fig.push_row(
            format!("{c:?} devices"),
            tb.vmm.network().device_count() as f64,
            "devices",
        );
        fig.push_row(format!("{c:?} VMs"), tb.vmm.vms().len() as f64, "VMs");
    }
    fig.finish();
}
