//! Hybrid fast-path throughput harness: how much wall-clock does the
//! flow-level fast path buy on deep forwarding paths?
//!
//! The scenario is built to be the fast path's home turf while staying an
//! honest packet-level workload: `CHAINS` disconnected relay chains, each
//! a ping-pong bouncer pair separated by `RELAYS` two-port learning
//! bridges. Packet level pays one event per bridge hop per frame; hybrid
//! collapses a steady chain crossing into a single synthesized delivery,
//! so the event (and wall-clock) gap is roughly the relay depth, less
//! probe/learning overhead.
//!
//! Reps are paired: each rep runs packet fidelity then hybrid back to
//! back and the speedup is that rep's ratio, so machine noise lands on
//! both sides. Three checks are asserted and recorded in the JSON
//! (consumed by `tools/perfgate.rs check_hybrid`):
//!
//! * **speedup** — hybrid effective frames/s over packet (target ≥ 10×
//!   here; the CI gate floors at 5× for noisy runners),
//! * **fidelity tolerance** — hybrid must deliver within ±15% of the
//!   packet run's frames and total CPU over the same simulated horizon
//!   (synthesized deliveries replay learned per-hop CPU, so the accounts
//!   stay figure-comparable),
//! * **determinism** — the hybrid run's merged outcome digest is
//!   bit-identical at 1/2/8 shards (`SimConfig`-selected, not env).
//!
//! ```text
//! cargo run --release -p nestless-bench --bin engine_hybrid [reps]
//! ```

use metrics::CpuAccount;
use metrics::{CpuCategory, CpuLocation};
use simnet::bridge::Bridge;
use simnet::costs::StageCost;
use simnet::device::PortId;
use simnet::engine::{LinkParams, Network, SampleStore};
use simnet::shared::SharedStation;
use simnet::testutil::{frame_between, MacBouncer};
use simnet::time::{SimDuration, SimTime};
use simnet::{Fidelity, MacAddr, SimConfig, StopCondition};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Parallel relay chains; each is its own partition island, so 1/2/8
/// shard requests all materialize exactly.
const CHAINS: usize = 8;

/// Two-port learning bridges between the bouncer pair of each chain —
/// the per-frame event depth hybrid gets to skip.
const RELAYS: usize = 48;

/// Simulated horizon; long enough that learning (≤ ~3 round trips per
/// direction) is noise against the steady phase.
const HORIZON: SimTime = SimTime(10_000_000);

const PAYLOAD: u32 = 200;

fn build() -> Network {
    let mut net = Network::new(0x48CB);
    let bouncer_cost = StageCost::fixed(600, 0.2, CpuCategory::Usr).with_jitter(0.05);
    let relay_cost = StageCost::fixed(400, 0.1, CpuCategory::Sys).with_jitter(0.05);
    for c in 0..CHAINS {
        let ma = MacAddr::local((2 * c + 1) as u32);
        let mb = MacAddr::local((2 * c + 2) as u32);
        let a = net.add_device(
            format!("c{c}.a"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(
                format!("c{c}.a"),
                ma,
                PAYLOAD,
                bouncer_cost,
                false,
            )),
        );
        let b = net.add_device(
            format!("c{c}.b"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(
                format!("c{c}.b"),
                mb,
                PAYLOAD,
                bouncer_cost,
                false,
            )),
        );
        let mut prev = (a, PortId::P0);
        for r in 0..RELAYS {
            let br = net.add_device(
                format!("c{c}.r{r}"),
                CpuLocation::Host,
                Box::new(Bridge::new(2, relay_cost, SharedStation::new())),
            );
            net.connect(prev.0, prev.1, br, PortId(0), LinkParams::default());
            prev = (br, PortId(1));
        }
        net.connect(prev.0, prev.1, b, PortId::P0, LinkParams::default());
        // Kick the pair off; staggered starts decorrelate the chains.
        net.inject_frame(
            SimDuration::nanos((c as u64) * 137),
            b,
            PortId::P0,
            frame_between(ma, mb, PAYLOAD),
        );
    }
    net
}

/// Frames actually delivered to a bouncer (the goodput both fidelities
/// are compared on).
fn frames_delivered(store: &SampleStore) -> f64 {
    store
        .counter_names()
        .filter(|n| n.ends_with(".bounced"))
        .map(|n| store.counter(n))
        .sum()
}

fn cpu_total(cpu: &CpuAccount) -> u64 {
    cpu.total()
}

/// Order-independent digest of a run's observable outcome.
fn outcome_digest(store: &SampleStore, events: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    events.hash(&mut h);
    let mut names: Vec<&str> = store.sample_names().collect();
    names.sort_unstable();
    for n in names {
        n.hash(&mut h);
        for v in store.samples(n) {
            v.to_bits().hash(&mut h);
        }
    }
    let mut names: Vec<&str> = store.counter_names().collect();
    names.sort_unstable();
    for n in names {
        n.hash(&mut h);
        store.counter(n).to_bits().hash(&mut h);
    }
    h.finish()
}

struct RunOut {
    frames: f64,
    cpu_ns: u64,
    events: u64,
    elapsed: f64,
    fastpath_frames: f64,
    escalations: f64,
}

fn run_once(fidelity: Fidelity) -> RunOut {
    let mut net = build();
    net.set_fidelity(fidelity);
    let start = Instant::now();
    net.run(StopCondition::Until(HORIZON));
    let elapsed = start.elapsed().as_secs_f64();
    RunOut {
        frames: frames_delivered(net.store()),
        cpu_ns: cpu_total(net.cpu()),
        events: net.events_processed(),
        elapsed,
        fastpath_frames: net.store().counter("flow.fastpath_frames"),
        escalations: net.store().counter("flow.escalations"),
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// ±15%: the paper-figure comparability budget hybrid must stay inside.
const TOLERANCE: f64 = 0.15;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("reps must be a positive integer"))
        .unwrap_or(5)
        .max(1);

    // Warm-up (page in code, size allocator pools).
    run_once(Fidelity::Packet);
    run_once(Fidelity::Hybrid);

    let mut speedups = Vec::with_capacity(reps);
    let mut packet_rates = Vec::with_capacity(reps);
    let mut hybrid_rates = Vec::with_capacity(reps);
    let mut packet = None;
    let mut hybrid = None;
    for _ in 0..reps {
        let p = run_once(Fidelity::Packet);
        let h = run_once(Fidelity::Hybrid);
        let (pr, hr) = (p.frames / p.elapsed, h.frames / h.elapsed);
        packet_rates.push(pr);
        hybrid_rates.push(hr);
        speedups.push(hr / pr);
        packet = Some(p);
        hybrid = Some(h);
    }
    let (packet, hybrid) = (packet.unwrap(), hybrid.unwrap());
    let speedup_median = median(speedups);

    // Fidelity tolerance: same horizon, comparable goodput and CPU.
    let frames_ratio = hybrid.frames / packet.frames;
    let cpu_ratio = hybrid.cpu_ns as f64 / packet.cpu_ns as f64;
    assert!(
        (frames_ratio - 1.0).abs() <= TOLERANCE,
        "hybrid goodput diverged from packet level: {:.0} vs {:.0} frames ({frames_ratio:.3})",
        hybrid.frames,
        packet.frames
    );
    assert!(
        (cpu_ratio - 1.0).abs() <= TOLERANCE,
        "hybrid CPU account diverged from packet level: ratio {cpu_ratio:.3}"
    );
    assert!(
        hybrid.fastpath_frames > 0.0,
        "hybrid run never took the fast path — scenario is broken"
    );

    // Determinism: hybrid merged outcome bit-identical at 1/2/8 shards.
    let mut shard_rows = Vec::new();
    let mut ref_digest = None;
    let mut bit_identical = true;
    for want in [1usize, 2, 8] {
        let mut sn = SimConfig::new()
            .shards(want)
            .fidelity(Fidelity::Hybrid)
            .build(build());
        let got = sn.nshards();
        sn.run(StopCondition::Until(HORIZON));
        let report = sn.into_report();
        let digest = outcome_digest(&report.store, report.events_processed);
        let identical = *ref_digest.get_or_insert(digest) == digest;
        bit_identical &= identical;
        shard_rows.push(format!(
            "{{\"shards_wanted\":{want},\"shards_got\":{got},\"bit_identical\":{identical}}}"
        ));
        assert!(
            identical,
            "hybrid run at {want} shards diverged from the 1-shard outcome"
        );
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"engine_hybrid (crates/bench/src/bin/engine_hybrid.rs)\",\n  \
         \"scenario\": \"relay_chains\",\n  \
         \"topology\": {{\"chains\": {CHAINS}, \"relays_per_chain\": {RELAYS}, \"payload\": {PAYLOAD}}},\n  \
         \"sim_horizon_ns\": {},\n  \"reps\": {reps},\n  \"host_cores\": {host_cores},\n  \
         \"packet\": {{\"frames\": {:.0}, \"events\": {}, \"frames_per_sec_median\": {:.0}, \"cpu_ns\": {}}},\n  \
         \"hybrid\": {{\"frames\": {:.0}, \"events\": {}, \"frames_per_sec_median\": {:.0}, \"cpu_ns\": {}, \
         \"fastpath_frames\": {:.0}, \"escalations\": {:.0}}},\n  \
         \"speedup_median\": {speedup_median:.3},\n  \
         \"event_ratio\": {:.3},\n  \
         \"frames_ratio\": {frames_ratio:.3},\n  \"cpu_ratio\": {cpu_ratio:.3},\n  \
         \"tolerance\": {TOLERANCE},\n  \"bit_identical\": {bit_identical},\n  \
         \"sharded\": [\n    {}\n  ],\n  \
         \"note\": \"speedup_median is the median of paired per-rep ratios of effective frames/s (frames delivered over wall-clock) between hybrid and packet fidelity on the same topology and horizon. frames_ratio/cpu_ratio must stay within tolerance of 1.0: the fast path synthesizes deliveries and replays learned per-hop CPU, so figure-level outputs remain comparable. bit_identical asserts the merged hybrid outcome digest is equal at 1/2/8 shards.\"\n}}\n",
        HORIZON.0,
        packet.frames,
        packet.events,
        median(packet_rates),
        packet.cpu_ns,
        hybrid.frames,
        hybrid.events,
        median(hybrid_rates),
        hybrid.cpu_ns,
        hybrid.fastpath_frames,
        hybrid.escalations,
        packet.events as f64 / hybrid.events as f64,
        shard_rows.join(",\n    ")
    );
    print!("{json}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/engine_hybrid.json", &json))
    {
        eprintln!("warning: could not write results/engine_hybrid.json: {e}");
    }

    assert!(
        speedup_median >= 10.0,
        "hybrid fast path under target: {speedup_median:.2}x < 10x effective frames/s"
    );
}
