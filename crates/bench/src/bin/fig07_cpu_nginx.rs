//! Figure 7: CPU usage breakdown running NGINX.
//!
//! "Similar observations of higher magnitude can be done for NGINX" —
//! BrFusion removes the guest softirq work of the Netfilter hooks.

use nestless::topology::Config;
use nestless_bench::{Claim, Figure};
use workloads::{run_nginx, Wrk2Params};

fn main() {
    let mut fig = Figure::new("fig07", "CPU usage breakdown, NGINX (usr/sys/soft/guest)");
    let mut soft = Vec::new();
    for (i, c) in [Config::Nat, Config::BrFusion, Config::NoCont]
        .into_iter()
        .enumerate()
    {
        let r = run_nginx(Wrk2Params::paper(), c, 70 + i as u64);
        let vm = r.cpu_server_vm.expect("server in VM");
        fig.push_row(format!("{c:?} VM usr"), vm.usr, "cores");
        fig.push_row(format!("{c:?} VM sys"), vm.sys, "cores");
        fig.push_row(format!("{c:?} VM soft"), vm.soft, "cores");
        fig.push_row(format!("{c:?} VM total"), vm.total(), "cores");
        fig.push_row(format!("{c:?} host guest"), r.cpu_host.guest, "cores");
        soft.push(vm.soft);
    }
    fig.push_claim(Claim::new(
        "BrFusion softirq CPU reduction vs NAT (in VM)",
        67.0,
        (1.0 - soft[1] / soft[0]) * 100.0,
        "%",
    ));
    fig.finish();
}
