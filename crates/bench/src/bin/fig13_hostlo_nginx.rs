//! Figure 13: NGINX latency under Hostlo / NAT / Overlay / SameNode.
//!
//! "Hostlo shows 49.4% higher latency than SameNode, but performs much
//! better than NAT and Overlay." (Hostlo vs Overlay: "up to 30% higher
//! throughput and 92% lower latency.")

use nestless::topology::Config;
use nestless_bench::{Claim, Figure};
use workloads::{run_nginx, Wrk2Params};

fn main() {
    let configs = [
        Config::Hostlo,
        Config::NatCross,
        Config::Overlay,
        Config::SameNode,
    ];
    let mut fig = Figure::new("fig13", "NGINX under Hostlo / NAT / Overlay / SameNode");
    let mut lat = Vec::new();
    for (i, &c) in configs.iter().enumerate() {
        let r = run_nginx(Wrk2Params::paper(), c, 130 + i as u64);
        fig.push_row(format!("{c:?} latency"), r.latency_us.mean, "us");
        fig.push_row(format!("{c:?} latency stddev"), r.latency_us.stddev, "us");
        let (p50, p95, p99) = r.latency_percentiles_us;
        fig.push_row(format!("{c:?} latency p50"), p50, "us");
        fig.push_row(format!("{c:?} latency p95"), p95, "us");
        fig.push_row(format!("{c:?} latency p99"), p99, "us");
        fig.push_row(format!("{c:?} responses/s"), r.throughput_per_s, "/s");
        lat.push(r.latency_us.mean);
    }
    fig.push_claim(Claim::new(
        "Hostlo above SameNode",
        49.4,
        (lat[0] / lat[3] - 1.0) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "Hostlo latency below Overlay",
        92.0,
        (1.0 - lat[0] / lat[2]) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "Hostlo latency below NAT",
        80.0,
        (1.0 - lat[0] / lat[1]) * 100.0,
        "%",
    ));
    fig.finish();
}
