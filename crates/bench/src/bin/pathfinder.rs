//! Walk a single request/response through each topology with event tracing
//! on, printing the hop-by-hop path — the de-duplication BrFusion performs
//! made visible, device by device.
//!
//! ```sh
//! cargo run -p nestless-bench --release --bin pathfinder
//! ```

use nestless::topology::{build, Config, CLIENT_PORT, SERVER_PORT};
use simnet::endpoint::{AppApi, Application, Incoming};
use simnet::StopCondition;
use simnet::{Payload, SimDuration, SockAddr};

struct Echo;
impl Application for Echo {
    fn on_start(&mut self, _: &mut AppApi<'_, '_>) {}
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
        let mut p = Payload::sized(msg.payload.len);
        p.tag = msg.payload.tag;
        api.send_udp(SERVER_PORT, msg.src, p);
    }
}

struct Once {
    dst: SockAddr,
}
impl Application for Once {
    fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
        let mut p = Payload::sized(256);
        p.tag = 7;
        api.send_udp(CLIENT_PORT, self.dst, p);
    }
    fn on_message(&mut self, _: Incoming, api: &mut AppApi<'_, '_>) {
        api.count("done", 1.0);
    }
}

fn main() {
    for config in Config::ALL {
        let mut tb = build(config, 1);
        tb.vmm.network_mut().set_tracing(true);
        let target = tb.target;
        let s = tb.install("server", &tb.server.clone(), [SERVER_PORT], Box::new(Echo));
        let c = tb.install(
            "client",
            &tb.client.clone(),
            [CLIENT_PORT],
            Box::new(Once { dst: target }),
        );
        tb.start(&[s, c]);
        tb.vmm
            .network_mut()
            .run(StopCondition::For(SimDuration::millis(50)));

        println!(
            "== {:?} ({} hops) ==",
            config,
            tb.vmm.network().trace().len()
        );
        for e in tb.vmm.network().trace() {
            println!("  {:>10}  {:<22} {}", e.at.to_string(), e.device, e.what);
        }
        println!();
    }
}
