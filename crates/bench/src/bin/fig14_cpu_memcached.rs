//! Figure 14: CPU usage running Memcached across the fig. 10 setups.
//!
//! "The main increase due to Hostlo is the kernel CPU usage of the client
//! and the server [...] From the host, the CPU time given to the guests is
//! increased [...] some CPU time is used by the host kernel on behalf of
//! the VMs [Vhost]."

use nestless::topology::Config;
use nestless_bench::{Claim, Figure};
use workloads::{run_memcached, MemtierParams};

fn main() {
    let configs = [
        Config::Hostlo,
        Config::NatCross,
        Config::Overlay,
        Config::SameNode,
    ];
    let mut fig = Figure::new("fig14", "CPU usage, Memcached (guests + host view)");
    let mut guest = Vec::new();
    let mut hostsys = Vec::new();
    for (i, &c) in configs.iter().enumerate() {
        let r = run_memcached(MemtierParams::paper(), c, 140 + i as u64);
        let mut total_vm = 0.0;
        if let Some(vm) = r.cpu_server_vm {
            fig.push_row(format!("{c:?} server VM total"), vm.total(), "cores");
            total_vm += vm.total();
        }
        if let Some(vm) = r.cpu_client_vm {
            fig.push_row(format!("{c:?} client VM total"), vm.total(), "cores");
            total_vm += vm.total();
        }
        fig.push_row(format!("{c:?} guests total"), total_vm, "cores");
        fig.push_row(format!("{c:?} host guest"), r.cpu_host.guest, "cores");
        fig.push_row(
            format!("{c:?} host sys (vhost+hostlo)"),
            r.cpu_host.sys,
            "cores",
        );
        guest.push(r.cpu_host.guest);
        hostsys.push(r.cpu_host.sys);
    }
    // Hostlo vs SameNode guest CPU increase (paper: +89.8%, two VMs vs one).
    fig.push_claim(Claim::new(
        "Hostlo guest CPU increase vs SameNode",
        89.8,
        (guest[0] / guest[3] - 1.0) * 100.0,
        "%",
    ));
    // Host kernel work on behalf of VMs similar across Hostlo/NAT/Overlay.
    fig.push_claim(Claim::new(
        "host-kernel CPU: Hostlo vs NAT ratio",
        1.0,
        hostsys[0] / hostsys[1],
        "x",
    ));
    fig.finish();
}
