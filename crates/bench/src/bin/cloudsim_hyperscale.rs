//! Hyperscale cloudsim replay harness: paired naive-vs-indexed placement
//! throughput, a policy shootout, and (with `--full`) the million-user
//! memory-bound certification run.
//!
//! Three claims are measured and recorded in
//! `results/cloudsim_hyperscale.json` (consumed by
//! `tools/perfgate.rs check_cloudsim`):
//!
//! * **speedup** — placements/s of the bucket-indexed engine over the
//!   exhaustive reference scan, as paired per-rep ratios over the *same*
//!   event prefix (shared `max_placements` cap), so machine noise lands
//!   on both sides. Target ≥ 10x at the 100k-user scenario scale.
//! * **identical placements** — the two engines' decision digests must be
//!   bit-equal every rep: the fast path changes throughput, never
//!   placements.
//! * **bounded memory** (`--full` only) — peak heap of a complete
//!   1,000,000-user replay over peak heap of a 100,000-user replay, via a
//!   counting global allocator. Streaming + SoA + interning make live
//!   state scale with the working set (arrival rate x stay), not the user
//!   count, so the ratio must stay ≤ [`MEM_GROWTH_CEIL`] despite 10x the
//!   users and pods.
//!
//! The shootout replays the same scenario under all three placement
//! policies (indexed engine) and records their downsampled
//! cost/utilization curves.
//!
//! ```text
//! cargo run --release -p nestless-bench --bin cloudsim_hyperscale -- [reps] [users] [--full]
//! ```
//!
//! Defaults: 3 reps at 100,000 users, no full run (CI scale). The
//! committed artifact is produced with `-- 3 100000 --full`.
//!
//! One indexed replay (the MostRequested shootout leg, or the `--full`
//! certification run) is instrumented through the unified telemetry
//! registry; its [`metrics::TelemetrySnapshot`] lands in
//! `results/cloudsim_hyperscale.telemetry.json`. The decision digest
//! stays bit-identical: telemetry fills *after* the replay, never in it.

use cloudsim::{
    run_hyperscale, run_hyperscale_with_telemetry, HyperConfig, HyperReport, PlacePolicy,
};
use metrics::TelemetryRegistry;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Counting allocator: tracks live and peak heap bytes so the `--full`
/// run can certify constant-in-users memory.
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Restarts the peak-heap watermark at the current live size.
fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Decision prefix both paired legs replay: long enough that most of the
/// measurement happens at the steady-state fleet (ramp-up is one mean
/// stay, ~48k placements), short enough that the quadratic naive leg
/// stays CI-sized.
const PAIRED_CAP: u64 = 120_000;

/// Memory-probe scale for the `--full` growth ratio (the certification
/// run is 10x this).
const PROBE_USERS: usize = 100_000;
const FULL_USERS: usize = 1_000_000;

/// Peak heap of the 1M-user run may exceed the 100k-user run by at most
/// this factor. The live working set is identical (same arrival rate and
/// stay), so growth only comes from saturating vocabularies (shapes,
/// curve buffer) — a broken engine that materializes the trace or leaks
/// per-user state blows straight through this.
const MEM_GROWTH_CEIL: f64 = 1.5;

/// In-binary speedup target at the 100k-user scenario scale (the perfgate
/// floor is the same: the ratio is machine-independent by pairing).
const SPEEDUP_FLOOR: f64 = 10.0;

#[derive(Serialize)]
struct PairedRep {
    naive_s: f64,
    indexed_s: f64,
    naive_placements_per_s: f64,
    indexed_placements_per_s: f64,
    ratio: f64,
    digest_equal: bool,
}

#[derive(Serialize)]
struct PairedOut {
    users: usize,
    cap_placements: u64,
    placements: u64,
    live_vms_scanned_peak: usize,
    policy: String,
    reps: usize,
    reps_detail: Vec<PairedRep>,
    naive_placements_per_s_median: f64,
    indexed_placements_per_s_median: f64,
    ratio_median: f64,
    digest_equal: bool,
}

#[derive(Serialize)]
struct MemOut {
    probe_users: usize,
    probe_peak_bytes: usize,
    full_users: usize,
    full_peak_bytes: usize,
    growth_ratio: f64,
    growth_ceiling: f64,
}

#[derive(Serialize)]
struct FullOut {
    mem: MemOut,
    /// The certification replay: 1M users, complete, ≥ 10M pods.
    run: HyperReport,
}

#[derive(Serialize)]
struct Out {
    benchmark: &'static str,
    host_cores: usize,
    paired: PairedOut,
    /// Indexed-engine replays of the same scenario under each policy
    /// (curves downsampled by the engine itself).
    shootout: Vec<HyperReport>,
    full: Option<FullOut>,
    note: &'static str,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn timed(cfg: &HyperConfig) -> (HyperReport, f64) {
    let start = Instant::now();
    let report = run_hyperscale(cfg);
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let mut reps: usize = 3;
    let mut users: usize = 100_000;
    let mut full = false;
    let mut positional = 0;
    for arg in std::env::args().skip(1) {
        if arg == "--full" {
            full = true;
            continue;
        }
        let n: usize = arg.parse().unwrap_or_else(|_| {
            panic!("usage: cloudsim_hyperscale [reps] [users] [--full]; got {arg:?}")
        });
        match positional {
            0 => reps = n.max(1),
            _ => users = n.max(1),
        }
        positional += 1;
    }

    let paired_cfg = HyperConfig {
        users,
        max_placements: Some(PAIRED_CAP),
        ..HyperConfig::default()
    };

    // Warm up (page in code, size allocator pools) and pin the reference
    // digest both legs must reproduce.
    let warm = run_hyperscale(&paired_cfg);

    let mut detail = Vec::with_capacity(reps);
    let mut all_digests_equal = true;
    let mut last = None;
    for _ in 0..reps {
        let (naive, naive_s) = timed(&HyperConfig {
            naive: true,
            ..paired_cfg.clone()
        });
        let (indexed, indexed_s) = timed(&paired_cfg);
        let nr = naive.placements as f64 / naive_s;
        let ir = indexed.placements as f64 / indexed_s;
        let equal = naive.digest == indexed.digest && indexed.digest == warm.digest;
        all_digests_equal &= equal;
        detail.push(PairedRep {
            naive_s,
            indexed_s,
            naive_placements_per_s: nr,
            indexed_placements_per_s: ir,
            ratio: ir / nr,
            digest_equal: equal,
        });
        last = Some((naive, indexed));
    }
    let (naive_last, indexed_last) = last.expect("at least one rep");
    assert!(
        all_digests_equal,
        "naive and indexed engines diverged: digests {:#x} vs {:#x}",
        naive_last.digest, indexed_last.digest
    );
    let ratio_median = median(detail.iter().map(|r| r.ratio).collect());
    let paired = PairedOut {
        users,
        cap_placements: PAIRED_CAP,
        placements: indexed_last.placements,
        live_vms_scanned_peak: naive_last.peak_vms,
        policy: indexed_last.policy.clone(),
        reps,
        naive_placements_per_s_median: median(
            detail.iter().map(|r| r.naive_placements_per_s).collect(),
        ),
        indexed_placements_per_s_median: median(
            detail.iter().map(|r| r.indexed_placements_per_s).collect(),
        ),
        reps_detail: detail,
        ratio_median,
        digest_equal: all_digests_equal,
    };
    println!(
        "paired @ {users} users / {PAIRED_CAP} placements: indexed {:.0}/s vs naive {:.0}/s \
         -> {ratio_median:.1}x (digests equal: {all_digests_equal})",
        paired.indexed_placements_per_s_median, paired.naive_placements_per_s_median,
    );

    // Policy shootout on the indexed engine: complete replays with curves.
    let shootout_users = if full { FULL_USERS } else { users / 10 };
    let mut shootout = Vec::new();

    // One replay feeds the unified telemetry registry; the snapshot is
    // written next to the results JSON below.
    let mut reg = TelemetryRegistry::new();
    let mut telemetry_label = String::new();

    // `--full`: certify memory first — peak heap of a complete 100k-user
    // replay, then of the 1M-user replay, same policy and rates.
    let mut full_out = None;
    if full {
        reset_peak();
        let probe = run_hyperscale(&HyperConfig {
            users: PROBE_USERS,
            ..HyperConfig::default()
        });
        let probe_peak = peak_bytes();
        assert!(probe.completed);
        drop(probe);

        reset_peak();
        let start = Instant::now();
        let run = run_hyperscale_with_telemetry(
            &HyperConfig {
                users: FULL_USERS,
                ..HyperConfig::default()
            },
            &mut reg,
        );
        let secs = start.elapsed().as_secs_f64();
        telemetry_label = format!("cloudsim_hyperscale.full_{FULL_USERS}");
        let full_peak = peak_bytes();
        let growth = full_peak as f64 / probe_peak as f64;
        println!(
            "full: {} users, {} pods, {} ticks in {secs:.1}s; peak heap {:.1} MiB \
             (100k probe {:.1} MiB, growth {growth:.3}x)",
            run.users,
            run.pods_placed,
            run.ticks,
            full_peak as f64 / (1024.0 * 1024.0),
            probe_peak as f64 / (1024.0 * 1024.0),
        );
        assert!(run.completed, "the 1M-user replay must run to completion");
        assert!(
            run.pods_placed >= 10_000_000,
            "expected >= 10M pods, placed {}",
            run.pods_placed
        );
        assert!(
            growth <= MEM_GROWTH_CEIL,
            "peak heap grew {growth:.3}x from 100k to 1M users (ceiling {MEM_GROWTH_CEIL}): \
             live state is no longer constant in the user count"
        );
        full_out = Some(FullOut {
            mem: MemOut {
                probe_users: PROBE_USERS,
                probe_peak_bytes: probe_peak,
                full_users: FULL_USERS,
                full_peak_bytes: full_peak,
                growth_ratio: growth,
                growth_ceiling: MEM_GROWTH_CEIL,
            },
            run,
        });
    }

    for policy in [
        PlacePolicy::MostRequested,
        PlacePolicy::BinPack,
        PlacePolicy::Spread,
    ] {
        // The certification run *is* the MostRequested shootout leg.
        if full && policy == PlacePolicy::MostRequested {
            let run = &full_out.as_ref().expect("full run").run;
            shootout.push(run.clone());
            continue;
        }
        let cfg = HyperConfig {
            users: shootout_users.max(1_000),
            policy,
            ..HyperConfig::default()
        };
        let (report, secs) = if policy == PlacePolicy::MostRequested {
            let start = Instant::now();
            let r = run_hyperscale_with_telemetry(&cfg, &mut reg);
            telemetry_label = format!("cloudsim_hyperscale.{policy:?}_{}", cfg.users);
            (r, start.elapsed().as_secs_f64())
        } else {
            timed(&cfg)
        };
        println!(
            "shootout {policy:?}: cost ${:.0}, peak {} VMs / {} pods, {} ticks in {secs:.1}s",
            report.total_cost, report.peak_vms, report.peak_live_pods, report.ticks
        );
        shootout.push(report);
    }

    let out = Out {
        benchmark: "cloudsim_hyperscale (crates/bench/src/bin/cloudsim_hyperscale.rs)",
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        paired,
        shootout,
        full: full_out,
        note: "ratio_median is the median of paired per-rep ratios of placements/s between \
               the bucket-indexed and exhaustive-scan engines replaying the identical event \
               prefix (shared max_placements cap); digest_equal asserts every rep's decision \
               digests are bit-identical, so the index changes throughput, never placements. \
               full.mem certifies peak heap via a counting global allocator: a complete \
               1M-user replay may not exceed the 100k-user probe's peak by more than \
               growth_ceiling, proving live state scales with the working set, not the user \
               count. Shootout entries are indexed-engine replays per policy with \
               engine-downsampled cost/utilization curves.",
    };
    let json = serde_json::to_string_pretty(&out).expect("report serializes");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/cloudsim_hyperscale.json", &json))
    {
        eprintln!("warning: could not write results/cloudsim_hyperscale.json: {e}");
    }

    let snap = reg.snapshot(&telemetry_label, "full");
    assert!(
        snap.counters.get("hyper.placements").copied().unwrap_or(0) > 0,
        "the instrumented replay must surface hyper.placements in the telemetry snapshot"
    );
    assert!(
        snap.series.iter().any(|s| !s.points.is_empty()),
        "the instrumented replay must export decision-curve series"
    );
    let telemetry_json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    if let Err(e) = std::fs::write(
        "results/cloudsim_hyperscale.telemetry.json",
        &telemetry_json,
    ) {
        eprintln!("warning: could not write results/cloudsim_hyperscale.telemetry.json: {e}");
    }
    println!("telemetry: {telemetry_label} -> results/cloudsim_hyperscale.telemetry.json");

    assert!(
        ratio_median >= SPEEDUP_FLOOR,
        "indexed placement under target: {ratio_median:.2}x < {SPEEDUP_FLOOR}x placements/s"
    );
}
