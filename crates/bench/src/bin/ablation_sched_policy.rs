//! Ablation 5: grouping policy in the baseline scheduler — most-requested
//! (Kubernetes default, §5.3.1) vs least-requested vs first-fit, and what
//! each leaves on the table for Hostlo to recover.

use cloudsim::{
    hostlo_improve, kube_schedule_with, synthetic_trace, GroupingPolicy, PAPER_USER_COUNT,
};
use nestless_bench::Figure;
use rayon::prelude::*;

fn main() {
    let trace = synthetic_trace(PAPER_USER_COUNT, 2019);
    let mut fig = Figure::new(
        "ablation_sched_policy",
        "Baseline grouping policy vs Hostlo recovery",
    );
    for (label, policy) in [
        ("most-requested", GroupingPolicy::MostRequested),
        ("least-requested", GroupingPolicy::LeastRequested),
        ("first-fit", GroupingPolicy::FirstFit),
    ] {
        let results: Vec<(f64, f64)> = trace
            .users
            .par_iter()
            .map(|u| {
                let base = kube_schedule_with(u, policy);
                let improved = hostlo_improve(base.clone());
                (base.cost_per_h(), improved.cost_per_h())
            })
            .collect();
        let base: f64 = results.iter().map(|r| r.0).sum();
        let hostlo: f64 = results.iter().map(|r| r.1).sum();
        let savers = results.iter().filter(|(b, h)| b - h > 1e-9).count();
        fig.push_row(format!("{label}: fleet baseline cost"), base, "$/h");
        fig.push_row(format!("{label}: fleet cost with Hostlo"), hostlo, "$/h");
        fig.push_row(
            format!("{label}: fleet saving"),
            (1.0 - hostlo / base) * 100.0,
            "%",
        );
        fig.push_row(format!("{label}: users saving"), savers as f64, "users");
    }
    fig.finish();
}
