//! Figure 4: BrFusion performance gain, micro-benchmark.
//!
//! "With 1280B packets BrFusion's throughput is 2.1 times greater than
//! NAT's and the average latency is 18.4% lower. BrFusion is also within
//! 3.5% of NoCont's performance. Finally, BrFusion scales like NoCont with
//! message sizes, while NAT scales more slowly."

use nestless::topology::Config;
use nestless_bench::{Claim, Figure, Mode, Sweep};

fn main() {
    let sweep = Sweep::default();
    let configs = [Config::Nat, Config::NoCont, Config::BrFusion];
    let mut fig = Figure::new("fig04", "BrFusion vs NAT vs NoCont (Netperf sweep)");

    let tput = sweep.run_all(&configs, Mode::Throughput);
    let lat = sweep.run_all(&configs, Mode::Latency);

    let at = 1280.0;
    let t = |i: usize| tput[i].at(at).expect("1280B").mean;
    let l = |i: usize| lat[i].at(at).expect("1280B").mean;
    // indexes: 0 = NAT, 1 = NoCont, 2 = BrFusion
    fig.push_claim(Claim::new(
        "BrFusion/NAT throughput @1280B",
        2.1,
        t(2) / t(0),
        "x",
    ));
    fig.push_claim(Claim::new(
        "BrFusion latency reduction vs NAT @1280B",
        18.4,
        (1.0 - l(2) / l(0)) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "BrFusion gap to NoCont (tput) @1280B",
        3.5,
        (t(1) - t(2)).abs() / t(1) * 100.0,
        "%",
    ));
    fig.push_row(
        "NAT tput max step change (stagnation)",
        tput[0].max_step_change(),
        "frac",
    );
    fig.push_row(
        "BrFusion tput monotone",
        f64::from(tput[2].is_monotone_nondecreasing()),
        "bool",
    );

    for s in tput {
        let mut s = s;
        s.name = format!("{} tput", s.name);
        fig.push_series(s);
    }
    for s in lat {
        let mut s = s;
        s.name = format!("{} lat", s.name);
        fig.push_series(s);
    }
    fig.finish();
}
