//! Figure 5 (+ Table 1): BrFusion macro-benchmarks — Memcached, NGINX,
//! Kafka under NAT / BrFusion / NoCont.
//!
//! "For Kafka, BrFusion improves average request latency by 11.8% over
//! NAT, which is 13.1% higher than NoCont. [...] For NGINX, BrFusion
//! improves average request latency by 30.1% over NAT, but this is 120.3%
//! slower than NoCont."

use nestless::topology::Config;
use nestless_bench::{Claim, Figure};
use workloads::{run_kafka, run_memcached, run_nginx, KafkaParams, MemtierParams, Wrk2Params};

fn main() {
    let configs = [Config::Nat, Config::BrFusion, Config::NoCont];
    let mut fig = Figure::new("fig05", "Macro-benchmarks under NAT / BrFusion / NoCont");

    // Table 1 echo.
    let mt = MemtierParams::paper();
    let wk = Wrk2Params::paper();
    let kf = KafkaParams::paper();
    println!(
        "Table 1: Memcached memtier {} thr x {} conn SET:GET {}:{}",
        mt.threads, mt.conns_per_thread, mt.set_weight, mt.get_weight
    );
    println!(
        "Table 1: NGINX wrk2 {} thr, {} conn, {} req/s on {} B file",
        wk.threads, wk.connections, wk.rate_per_s, wk.file_size
    );
    println!(
        "Table 1: Kafka {} msg/s, {} B messages, batch {} B",
        kf.msgs_per_s, kf.msg_size, kf.batch_size
    );

    let mut lat = |label: &str, f: &dyn Fn(Config, u64) -> workloads::MacroResult| {
        let mut out = Vec::new();
        for (i, &c) in configs.iter().enumerate() {
            let r = f(c, 100 + i as u64);
            fig.push_row(format!("{label} {:?} latency", c), r.latency_us.mean, "us");
            fig.push_row(
                format!("{label} {:?} throughput", c),
                r.throughput_per_s,
                "/s",
            );
            fig.push_row(
                format!("{label} {:?} latency stddev", c),
                r.latency_us.stddev,
                "us",
            );
            out.push(r.latency_us.mean);
        }
        out // [nat, brfusion, nocont]
    };

    let m = lat("memcached", &|c, s| {
        run_memcached(MemtierParams::paper(), c, s)
    });
    let n = lat("nginx", &|c, s| run_nginx(Wrk2Params::paper(), c, s));
    let k = lat("kafka", &|c, s| run_kafka(KafkaParams::paper(), c, s));
    let _ = m;

    fig.push_claim(Claim::new(
        "Kafka: BrFusion latency improvement over NAT",
        11.8,
        (1.0 - k[1] / k[0]) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "Kafka: BrFusion above NoCont",
        13.1,
        (k[1] / k[2] - 1.0) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "NGINX: BrFusion latency improvement over NAT",
        30.1,
        (1.0 - n[1] / n[0]) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "NGINX: BrFusion above NoCont",
        120.3,
        (n[1] / n[2] - 1.0) * 100.0,
        "%",
    ));
    fig.finish();
}
