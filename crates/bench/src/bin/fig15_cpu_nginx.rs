//! Figure 15: CPU usage running NGINX across the fig. 10 setups.
//!
//! "For NGINX, the CPU increases of Hostlo compared to SameNode are much
//! smaller: client and server CPU usage increases by 17.1%, and guest CPU
//! usage increases by 36.9%."

use nestless::topology::Config;
use nestless_bench::{Claim, Figure};
use workloads::{run_nginx, Wrk2Params};

fn main() {
    let configs = [
        Config::Hostlo,
        Config::NatCross,
        Config::Overlay,
        Config::SameNode,
    ];
    let mut fig = Figure::new("fig15", "CPU usage, NGINX (guests + host view)");
    let mut guest = Vec::new();
    for (i, &c) in configs.iter().enumerate() {
        let r = run_nginx(Wrk2Params::paper(), c, 150 + i as u64);
        if let Some(vm) = r.cpu_server_vm {
            fig.push_row(format!("{c:?} server VM total"), vm.total(), "cores");
        }
        if let Some(vm) = r.cpu_client_vm {
            fig.push_row(format!("{c:?} client VM total"), vm.total(), "cores");
        }
        fig.push_row(format!("{c:?} host guest"), r.cpu_host.guest, "cores");
        fig.push_row(format!("{c:?} host sys"), r.cpu_host.sys, "cores");
        guest.push(r.cpu_host.guest);
    }
    fig.push_claim(Claim::new(
        "Hostlo guest CPU increase vs SameNode",
        36.9,
        (guest[0] / guest[3] - 1.0) * 100.0,
        "%",
    ));
    fig.finish();
}
