//! Chaos demo: drives the paper's topologies through a deterministic
//! fault schedule and records how the stack degrades and recovers.
//!
//! ```text
//! cargo run --release -p nestless-bench --bin chaos_demo [seed]
//! ```
//!
//! Two scenarios run back to back:
//!
//! * **BrFusion cluster** — a pod deployed during an injected QMP outage
//!   falls back to the classic nested path (bridge + double NAT), serves
//!   traffic through a lossy/flapping window on the host NAT uplink, and
//!   is re-promoted to a fused NIC by the repair pass once the backoff
//!   elapses. The demo records fallback/re-promotion latency, per-phase
//!   goodput and degraded-vs-fused median RTT.
//! * **Hostlo testbed** — a cross-VM pod's localhost traffic rides
//!   through two hard link-down flaps; goodput collapses during the
//!   flaps and recovers after.
//!
//! The run is captured by the flight recorder: the full [`RunSnapshot`]
//! goes to `results/chaos_demo.snapshot.json` and the summary document to
//! `results/chaos_demo.json`. Both are validated by a serde round-trip
//! and the process exits nonzero if any recovery invariant fails, so CI
//! can gate on it.

use metrics::{RunSnapshot, TraceConfig};
use nestless::topology::{build, Config, CLIENT_PORT, SERVER_PORT};
use nestless::{Cluster, ClusterBuilder, CniKind, CLIENT_NET};
use orchestrator::PodSpec;
use simnet::device::{DeviceId, PortId};
use simnet::endpoint::{AppApi, Application, Endpoint, IfaceConf, Incoming, START_TOKEN};
use simnet::engine::LinkParams;
use simnet::frame::Payload;
use simnet::nat::Proto;
use simnet::shared::SharedStation;
use simnet::{
    snapshot_network, telemetry_network, FaultPlan, JournalKind, LinkFault, LinkFaultKind, MacAddr,
    SimDuration, SimTime, SockAddr, StallWindow, StopCondition, TelemetryConfig,
};

/// Interval between client requests.
const INTERVAL: SimDuration = SimDuration::micros(50);

/// Echoes every request back to its sender.
struct Echo {
    port: u16,
}
impl Application for Echo {
    fn on_start(&mut self, _: &mut AppApi<'_, '_>) {}
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
        let mut p = Payload::sized(8);
        p.tag = msg.payload.tag;
        api.send_udp(self.port, msg.src, p);
    }
}

/// Open-loop load generator: one tagged request per `INTERVAL`, goodput
/// judged by which tags come back. `port_span > 1` cycles the source port
/// so every request opens a fresh NAT flow — conntrack entries of earlier
/// flows would otherwise pin replies to a stale backend after the pod
/// moves.
struct Pulse {
    service: SockAddr,
    total: u64,
    base_port: u16,
    port_span: u16,
    prefix: &'static str,
}
impl Pulse {
    fn fire(&self, seq: u64, api: &mut AppApi<'_, '_>) {
        let src = self.base_port + (seq % u64::from(self.port_span)) as u16;
        let mut p = Payload::sized(100);
        p.tag = seq;
        api.send_udp(src, self.service, p);
        api.count(&format!("{}.sent", self.prefix), 1.0);
        if seq + 1 < self.total {
            api.set_timer(INTERVAL, seq + 1);
        }
    }
}
impl Application for Pulse {
    fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
        self.fire(0, api);
    }
    fn on_timer(&mut self, token: u64, api: &mut AppApi<'_, '_>) {
        self.fire(token, api);
    }
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
        api.record(
            &format!("{}.reply_seq", self.prefix),
            msg.payload.tag as f64,
        );
        let rtt = api.now().since(msg.payload.sent_at);
        api.record(&format!("{}.rtt_us", self.prefix), rtt.as_micros_f64());
    }
}

#[derive(serde::Serialize, serde::Deserialize, PartialEq, Clone)]
struct PhaseGoodput {
    phase: String,
    sent: u64,
    delivered: u64,
    goodput: f64,
}

#[derive(serde::Serialize, serde::Deserialize, PartialEq)]
struct BrFusionReport {
    fallbacks: u64,
    fallback_reason: String,
    repromotions: u64,
    repromotion_latency_ms: f64,
    abandoned: u64,
    phases: Vec<PhaseGoodput>,
    rtt_degraded_p50_us: f64,
    rtt_fused_p50_us: f64,
    fault_lost: f64,
    fault_link_down: f64,
    spans_kept: u64,
    spans_dropped: u64,
}

#[derive(serde::Serialize, serde::Deserialize, PartialEq)]
struct HostloReport {
    phases: Vec<PhaseGoodput>,
    fault_link_down: f64,
}

#[derive(serde::Serialize, serde::Deserialize, PartialEq)]
struct ChaosReport {
    demo: String,
    seed: u64,
    brfusion: BrFusionReport,
    hostlo: HostloReport,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Serializes `value`, parses the text back, and fails the process if the
/// reconstruction differs from the original.
fn round_trip<T>(what: &str, value: &T) -> String
where
    T: serde::Serialize + serde::Deserialize + PartialEq,
{
    let text = serde_json::to_string_pretty(value)
        .unwrap_or_else(|e| die(&format!("serializing {what}: {e}")));
    let back: T = serde_json::from_str(&text).unwrap_or_else(|e| {
        die(&format!(
            "{what} does not parse back from its own JSON: {e}"
        ))
    });
    if &back != value {
        die(&format!("{what} serde round-trip changed the document"));
    }
    text
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    xs[xs.len() / 2]
}

/// Groups delivered tags into phases by the (deterministic) send time of
/// each sequence number: request `seq` leaves at `seq * INTERVAL`.
fn phase_goodput(delivered: &[f64], total: u64, bounds: &[(&str, u64, u64)]) -> Vec<PhaseGoodput> {
    bounds
        .iter()
        .map(|&(name, lo, hi)| {
            let hi = hi.min(total);
            let got = delivered
                .iter()
                .filter(|&&s| (s as u64) >= lo && (s as u64) < hi)
                .count() as u64;
            PhaseGoodput {
                phase: name.to_owned(),
                sent: hi - lo,
                delivered: got,
                goodput: got as f64 / (hi - lo) as f64,
            }
        })
        .collect()
}

/// Wires an external client endpoint onto the cluster's host NAT. Probes
/// target the NAT's published address, so the DNAT rules decide which
/// backend (nested VM path or fused pod NIC) actually serves them.
fn attach_cluster_client(cluster: &mut Cluster, app: Pulse, ports: u16) -> DeviceId {
    let client_ip = CLIENT_NET.host(100);
    let client_mac = MacAddr::local(0x00E9_0000);
    cluster
        .host_nat_ctl
        .add_neigh(PortId(0), client_ip, client_mac);
    let iface = IfaceConf::new(client_mac, client_ip, CLIENT_NET).with_gateway(
        CLIENT_NET.host(1),
        cluster.host_nat_ctl.iface_mac(PortId(0)),
    );
    let sock_cost = cluster.vmm.costs().socket;
    let base = app.base_port;
    let ep = Endpoint::new(
        "chaos-client",
        vec![iface],
        base..base + ports,
        sock_cost,
        SharedStation::new(),
        Box::new(app),
    );
    let dev = cluster.vmm.network_mut().add_device(
        "chaos-client",
        metrics::CpuLocation::Host,
        Box::new(ep),
    );
    cluster.vmm.network_mut().connect(
        dev,
        PortId::P0,
        cluster.host_nat,
        PortId(0),
        LinkParams::default(),
    );
    dev
}

/// BrFusion scenario. Timeline (request `seq` leaves at `seq * 50 us`):
///
/// * `t = 0`: QMP outage `[0, 5 ms)` is live; the pod deploys degraded.
/// * `[0, 20 ms)` — degraded, healthy links (seq 0..400).
/// * `[20, 40 ms)` — degraded, host NAT uplink lossy + flapping
///   (seq 400..800).
/// * `[40, 55 ms)` — degraded, healthy again (seq 800..1100).
/// * `t = 55 ms`: repair pass re-promotes (backoff of 50 ms elapsed,
///   outage long gone); the workload re-binds onto the fused NIC.
/// * `[55, 100 ms)` — fused (seq 1100..2000).
fn run_brfusion(seed: u64) -> BrFusionReport {
    const TOTAL: u64 = 2_000;
    let mut cluster = ClusterBuilder::new()
        .cni(CniKind::BrFusion)
        .vms(1)
        .seed(seed)
        .build();
    cluster
        .vmm
        .network_mut()
        .set_trace_config(TraceConfig::full());
    // A deliberately tiny journal ring: the run emits more control-plane
    // records than 4, so the export below MUST surface a nonzero drop
    // count (silent truncation is the bug class this demo gates on).
    cluster
        .vmm
        .network_mut()
        .set_telemetry_config(TelemetryConfig::full().with_journal_cap(4));

    // The fault schedule must be installed before the first event runs.
    let plan = FaultPlan::new()
        .link_fault(LinkFault {
            dev: cluster.host_nat,
            port: PortId(1),
            from: SimTime(20_000_000),
            until: SimTime(40_000_000),
            kind: LinkFaultKind::Loss(0.35),
        })
        .link_flap(
            cluster.host_nat,
            PortId(1),
            SimTime(25_000_000),
            SimDuration::millis(2),
            SimDuration::millis(3),
            2,
        )
        .stall(StallWindow {
            dev: cluster.vmm.bridge_device(cluster.bridge),
            from: SimTime(30_000_000),
            until: SimTime(35_000_000),
            extra: SimDuration::micros(200),
        });
    cluster.vmm.network_mut().install_fault_plan(plan);

    // Deploy during the outage: the hot-plug request fails, the pod lands
    // on the nested path.
    let now = cluster.vmm.network().now();
    cluster
        .vmm
        .inject_qmp_outage(now, now + SimDuration::millis(5));
    let pod = PodSpec::new(
        "web",
        vec![ContainerSpecExt::udp_service("srv", SERVER_PORT)],
    );
    let id = cluster
        .deploy(pod)
        .unwrap_or_else(|e| die(&format!("deploy under QMP outage must degrade, got {e:?}")));
    if cluster.cni_status().fallbacks != 1 {
        die("deploy under QMP outage did not fall back");
    }
    let atts = cluster.attachments(id).to_vec();
    cluster.attach_app(
        &atts[0],
        "srv-degraded",
        [SERVER_PORT],
        Box::new(Echo { port: SERVER_PORT }),
    );

    let service = SockAddr::new(cluster.host_nat_ctl.iface_ip(PortId(0)), SERVER_PORT);
    let client = attach_cluster_client(
        &mut cluster,
        Pulse {
            service,
            total: TOTAL,
            base_port: 10_000,
            port_span: TOTAL as u16,
            prefix: "chaos",
        },
        TOTAL as u16,
    );
    cluster
        .vmm
        .network_mut()
        .schedule_timer(SimDuration::ZERO, client, START_TOKEN);

    // Degraded phases, then the repair pass, then the fused phase.
    cluster.run_for(SimDuration::millis(55));
    if cluster.repair() != 1 {
        die("repair pass at 55 ms must re-promote the pod");
    }
    let repromoted = cluster.drain_repaired();
    let new_atts = &repromoted[0].outcome.attachments;
    cluster.attach_app(
        &new_atts[0],
        "srv-fused",
        [SERVER_PORT],
        Box::new(Echo { port: SERVER_PORT }),
    );
    cluster.run_for(SimDuration::millis(55));

    let store = cluster.vmm.network().store();
    let delivered = store.samples("chaos.reply_seq").to_vec();
    let phases = phase_goodput(
        &delivered,
        TOTAL,
        &[
            ("degraded-healthy", 0, 400),
            ("degraded-lossy", 400, 800),
            ("degraded-recovered", 800, 1_100),
            ("fused", 1_100, TOTAL),
        ],
    );
    // RTTs attributed by reply tag: requests up to seq 1100 ran degraded.
    let rtts = store.samples("chaos.rtt_us");
    let mut degraded_rtt = Vec::new();
    let mut fused_rtt = Vec::new();
    for (tag, rtt) in delivered.iter().zip(rtts.iter()) {
        if (*tag as u64) < 1_100 {
            degraded_rtt.push(*rtt);
        } else {
            fused_rtt.push(*rtt);
        }
    }
    let stats = cluster.cni_status();
    let latency = stats.repromotion_latency_ns.clone();
    let snapshot: RunSnapshot = snapshot_network(cluster.vmm.network(), "chaos_demo.brfusion");
    let snapshot_json = round_trip("RunSnapshot", &snapshot);
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/chaos_demo.snapshot.json", &snapshot_json))
    {
        die(&format!("writing results/: {e}"));
    }

    // The unified telemetry export must surface the fault counters, the
    // control-plane journal (per-kind counts survive the capped ring),
    // and — because the 4-slot ring overflowed — an honest drop count.
    let telem = telemetry_network(cluster.vmm.network(), "chaos_demo.brfusion");
    let telem_json = round_trip("TelemetrySnapshot", &telem);
    if let Err(e) = std::fs::write("results/chaos_demo.telemetry.json", &telem_json) {
        die(&format!("writing results/chaos_demo.telemetry.json: {e}"));
    }
    if telem.counters.get("fault.lost").copied().unwrap_or(0) == 0 {
        die("fault.lost must surface in the telemetry snapshot counters");
    }
    if telem.counters.get("fault.link_down").copied().unwrap_or(0) == 0 {
        die("fault.link_down must surface in the telemetry snapshot counters");
    }
    if telem.journal_count(JournalKind::FaultOpen) == 0
        || telem.journal_count(JournalKind::FaultOpen)
            != telem.journal_count(JournalKind::FaultClose)
    {
        die("every journaled fault window must open and close");
    }
    if telem.journal_count(JournalKind::QmpOutage) != 1 {
        die("the injected QMP outage must be journaled exactly once");
    }
    if telem.journal_count(JournalKind::CniDegrade) != 1
        || telem.journal_count(JournalKind::CniRepromote) != 1
    {
        die("the degrade/re-promote cycle must be journaled");
    }
    if telem.journal.len() != 4 {
        die("the 4-slot journal ring must keep exactly its capacity");
    }
    if telem.drops.journal == 0 {
        die("a journal ring at capacity must expose its drop count");
    }

    BrFusionReport {
        fallbacks: stats.fallbacks,
        fallback_reason: stats.fallback_reasons[0].clone(),
        repromotions: stats.repromotions,
        repromotion_latency_ms: latency[0] as f64 / 1e6,
        abandoned: stats.abandoned,
        phases,
        rtt_degraded_p50_us: median(degraded_rtt),
        rtt_fused_p50_us: median(fused_rtt),
        fault_lost: store.counter("fault.lost"),
        fault_link_down: store.counter("fault.link_down"),
        spans_kept: snapshot.spans.kept,
        spans_dropped: snapshot.spans.dropped,
    }
}

/// Hostlo scenario: the cross-VM localhost rides through two 5 ms hard
/// link-down flaps (at 10 ms and 20 ms) on the client's TAP attachment;
/// goodput collapses in the flap window and recovers after.
fn run_hostlo(seed: u64) -> HostloReport {
    const TOTAL: u64 = 1_000;
    let mut tb = build(Config::Hostlo, seed);
    let target = tb.target;
    let server = tb.install(
        "server",
        &tb.server.clone(),
        [SERVER_PORT],
        Box::new(Echo { port: SERVER_PORT }),
    );
    let client = tb.install(
        "client",
        &tb.client.clone(),
        [CLIENT_PORT],
        Box::new(Pulse {
            service: target,
            total: TOTAL,
            base_port: CLIENT_PORT,
            port_span: 1,
            prefix: "hostlo",
        }),
    );
    let plan = FaultPlan::new().link_flap(
        client,
        PortId::P0,
        SimTime(10_000_000),
        SimDuration::millis(5),
        SimDuration::millis(5),
        2,
    );
    tb.vmm.network_mut().install_fault_plan(plan);
    tb.start(&[server, client]);
    tb.vmm
        .network_mut()
        .run(StopCondition::For(SimDuration::millis(60)));

    let store = tb.vmm.network().store();
    let delivered = store.samples("hostlo.reply_seq").to_vec();
    HostloReport {
        phases: phase_goodput(
            &delivered,
            TOTAL,
            &[
                ("healthy", 0, 200),
                ("flapping", 200, 600),
                ("recovered", 600, TOTAL),
            ],
        ),
        fault_link_down: store.counter("fault.link_down"),
    }
}

/// `ContainerSpec` construction helper kept local to the demo.
struct ContainerSpecExt;
impl ContainerSpecExt {
    fn udp_service(name: &str, port: u16) -> contd::ContainerSpec {
        contd::ContainerSpec::new(name, "app:1").with_port(Proto::Udp, port, port)
    }
}

fn goodput(phases: &[PhaseGoodput], name: &str) -> f64 {
    phases
        .iter()
        .find(|p| p.phase == name)
        .unwrap_or_else(|| die(&format!("missing phase {name}")))
        .goodput
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: seed must be an integer, got {s:?}");
                eprintln!("usage: chaos_demo [seed]");
                std::process::exit(2);
            }
        })
        .unwrap_or(42);

    let brfusion = run_brfusion(seed);
    let hostlo = run_hostlo(seed);

    // Recovery invariants: the degraded path serves, loss bites, the
    // fused path comes back at full goodput and lower latency.
    if goodput(&brfusion.phases, "degraded-healthy") < 0.9 {
        die("degraded path must serve ≥90% goodput on healthy links");
    }
    if goodput(&brfusion.phases, "degraded-lossy") >= 0.9 {
        die("the lossy window must visibly dent goodput");
    }
    if goodput(&brfusion.phases, "fused") < 0.9 {
        die("the re-promoted fused path must serve ≥90% goodput");
    }
    if brfusion.repromotions != 1 || brfusion.abandoned != 0 {
        die("exactly one re-promotion, no abandonment, expected");
    }
    if !brfusion.rtt_fused_p50_us.is_finite()
        || brfusion.rtt_fused_p50_us >= brfusion.rtt_degraded_p50_us
    {
        die("fused median RTT must beat the nested (double NAT) path");
    }
    if brfusion.fault_lost <= 0.0 || brfusion.fault_link_down <= 0.0 {
        die("the fault schedule never fired");
    }
    if goodput(&hostlo.phases, "flapping") >= goodput(&hostlo.phases, "healthy") {
        die("hostlo flaps must dent goodput");
    }
    if goodput(&hostlo.phases, "recovered") < 0.9 {
        die("hostlo goodput must recover after the flaps");
    }

    let report = ChaosReport {
        demo: "chaos_demo".to_owned(),
        seed,
        brfusion,
        hostlo,
    };
    let json = round_trip("ChaosReport", &report);
    if let Err(e) = std::fs::write("results/chaos_demo.json", &json) {
        die(&format!("writing results/chaos_demo.json: {e}"));
    }
    println!("{json}");
}
