//! Policy-churn harness: does the compiled interval-index matcher keep
//! per-packet cost flat as filter tables grow from 1k to 100k rules, and
//! does it stay semantically identical to a naive first-match walk?
//!
//! Four sections, all recorded in the JSON (consumed by
//! `tools/perfgate.rs check_policy_churn`):
//!
//! * **matcher** — a standalone [`FilterControl`] is loaded with a
//!   seed-deterministic rule set and evaluated against a fixed query
//!   stream. Raw eval latency at both scales is informational (it is
//!   machine-dependent); the gated output is the FNV verdict digest:
//!   the compiled matcher and an independent naive linear walk over the
//!   same rule specs must produce bit-equal `(verdict, rule_id)`
//!   streams, and the digests are machine-independent, so the committed
//!   baseline freezes matcher *semantics* across runners.
//! * **packet overhead** — the acceptance claim. A hub bridge carrying
//!   steady bouncer traffic is loaded with 1k then 100k non-matching
//!   rules (every rule is source-net constrained away from the traffic,
//!   so each frame walks its port bucket and falls through). Reps are
//!   paired and `overhead_ratio` is the median per-rep ratio of
//!   wall-clock per delivered frame; it must stay within 15%.
//! * **churn** — install/remove latency under load, plus the recompile
//!   cost the first post-mutation eval pays at 100k rules, plus
//!   `purge_expired` at the end of the horizon.
//! * **sharded** — an 8-island topology with engaged (and mid-run
//!   window-activating) tables must merge bit-identically at 1/2/8
//!   shards.
//!
//! ```text
//! cargo run --release -p nestless-bench --bin policy_churn [reps]
//! ```

use metrics::{CpuCategory, CpuLocation};
use simnet::bridge::Bridge;
use simnet::costs::StageCost;
use simnet::device::PortId;
use simnet::engine::{LinkParams, Network, SampleStore};
use simnet::filter::{Chain, ConnState, FilterControl, FilterRule, StateMask, Verdict, NO_RULE};
use simnet::nat::Proto;
use simnet::shared::SharedStation;
use simnet::testutil::{frame_between, MacBouncer};
use simnet::time::{SimDuration, SimTime};
use simnet::{Ip4, Ip4Net, MacAddr, SimConfig, SockAddr, StopCondition};
use std::hash::{Hash, Hasher};
use std::time::Instant;

const RULES_SMALL: usize = 1_000;
const RULES_LARGE: usize = 100_000;
const QUERIES: usize = 200_000;
/// Verdict-digest sample sizes (the naive walk is O(rules) per query, so
/// the large-scale check uses a smaller prefix of the same stream).
const CHECK_SMALL: usize = 50_000;
const CHECK_LARGE: usize = 2_000;

/// Bouncer pairs through the hub bridge hosting the table under test.
const PAIRS: usize = 4;
const PAYLOAD: u32 = 200;
const HORIZON: SimTime = SimTime(10_000_000);

const CHURN_SLICES: u64 = 8;
const CHURN_BATCH: usize = 32;

const ISLANDS: usize = 8;

/// Per-packet overhead budget between the 1k and 100k tables.
const TOLERANCE: f64 = 0.15;

const SEED: u64 = 0x9C11_F17E;

/// xorshift64 — keeps rule and query generation seed-deterministic (and
/// therefore the verdict digests machine-independent).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn src_nets() -> [Ip4Net; 4] {
    [
        Ip4Net::new(Ip4::new(172, 16, 0, 0), 16),
        Ip4Net::new(Ip4::new(192, 168, 0, 0), 16),
        Ip4Net::new(Ip4::new(100, 64, 0, 0), 16),
        Ip4Net::new(Ip4::new(203, 0, 113, 0), 24),
    ]
}

fn dst_nets() -> [Ip4Net; 2] {
    [
        Ip4Net::new(Ip4::new(10, 42, 0, 0), 24),
        Ip4Net::new(Ip4::new(10, 42, 1, 0), 24),
    ]
}

/// One rule in both representations: the spec is what the naive reference
/// walk matches against, [`RuleSpec::to_rule`] is what gets installed.
/// Every generated rule carries a source-net constraint, so none of them
/// can match the hub traffic (placeholder `10.0.0.x` sockets) — the
/// packet-overhead runs measure pure fall-through cost.
#[derive(Clone)]
struct RuleSpec {
    proto: Option<Proto>,
    src: Option<Ip4Net>,
    dst: Option<Ip4Net>,
    ports: (u16, u16),
    states: StateMask,
    verdict: Verdict,
    from: SimTime,
    until: SimTime,
}

impl RuleSpec {
    fn to_rule(&self) -> FilterRule {
        let mut r = FilterRule::any(Chain::Forward, self.verdict)
            .ports(self.ports.0, self.ports.1)
            .states(self.states);
        if let Some(p) = self.proto {
            r = r.proto(p);
        }
        if let Some(n) = self.src {
            r = r.from_net(n);
        }
        if let Some(n) = self.dst {
            r = r.to_net(n);
        }
        r
    }
}

fn gen_specs(n: usize, rng: &mut Rng) -> Vec<RuleSpec> {
    let mut specs = Vec::with_capacity(n + 2);
    for i in 0..n {
        let lo = rng.below(65_000) as u16;
        let span: u16 = if i % 97 == 0 { 8 } else { 0 };
        let verdict = match rng.below(10) {
            0..=4 => Verdict::Drop,
            5..=7 => Verdict::Reject,
            _ => Verdict::Accept,
        };
        let states = if rng.below(5) == 0 {
            StateMask::NEW
        } else {
            StateMask::ANY
        };
        let proto = match rng.below(4) {
            0 => None,
            1 => Some(Proto::Tcp),
            _ => Some(Proto::Udp),
        };
        let src = Some(src_nets()[rng.below(4) as usize]);
        let dst = if rng.below(4) == 0 {
            Some(dst_nets()[rng.below(2) as usize])
        } else {
            None
        };
        // A sprinkling of time-windowed rules keeps live_at() on the
        // matched path at every scale.
        let (from, until) = if i % 16 == 9 {
            let f = rng.below(HORIZON.0 / 2);
            let u = if rng.below(2) == 0 {
                f + HORIZON.0 / 4
            } else {
                u64::MAX
            };
            (SimTime(f), SimTime(u))
        } else {
            (SimTime::ZERO, SimTime(u64::MAX))
        };
        specs.push(RuleSpec {
            proto,
            src,
            dst,
            ports: (lo, lo.saturating_add(span)),
            states,
            verdict,
            from,
            until,
        });
    }
    // Two wide-range rules exercise the wide-list merge path; their
    // source nets still exclude the hub traffic.
    specs.push(RuleSpec {
        proto: Some(Proto::Udp),
        src: Some(src_nets()[1]),
        dst: None,
        ports: (2_000, 6_000),
        states: StateMask::ANY,
        verdict: Verdict::Drop,
        from: SimTime::ZERO,
        until: SimTime(u64::MAX),
    });
    specs.push(RuleSpec {
        proto: None,
        src: Some(src_nets()[3]),
        dst: None,
        ports: (40_000, 60_000),
        states: StateMask::NEW,
        verdict: Verdict::Reject,
        from: SimTime::ZERO,
        until: SimTime(u64::MAX),
    });
    specs
}

/// Installs the specs in order; install order is match priority, so the
/// returned ids are the specs' indices on a fresh control.
fn install_specs(ctl: &FilterControl, specs: &[RuleSpec]) {
    for (i, s) in specs.iter().enumerate() {
        let id = ctl.install_at(s.to_rule(), s.from);
        assert_eq!(id, i as u64, "fresh control must assign dense ids");
        if s.until.0 != u64::MAX {
            ctl.remove_at(id, s.until);
        }
    }
}

struct Query {
    proto: Proto,
    src: SockAddr,
    dst: SockAddr,
    state: ConnState,
    now: SimTime,
}

fn gen_queries(n: usize, rng: &mut Rng) -> Vec<Query> {
    let mut qs = Vec::with_capacity(n);
    for _ in 0..n {
        let proto = if rng.below(10) < 7 {
            Proto::Udp
        } else {
            Proto::Tcp
        };
        let src_net = src_nets()[rng.below(4) as usize];
        let src = SockAddr::new(
            src_net.host(2 + rng.below(200) as u32),
            (1_024 + rng.below(60_000)) as u16,
        );
        let dst_ip = if rng.below(2) == 0 {
            dst_nets()[rng.below(2) as usize].host(2 + rng.below(100) as u32)
        } else {
            Ip4::new(10, 99, 0, (1 + rng.below(200)) as u8)
        };
        let dst = SockAddr::new(dst_ip, rng.below(65_536) as u16);
        let state = match rng.below(5) {
            0 | 1 => ConnState::New,
            2 | 3 => ConnState::Established,
            _ => ConnState::Related,
        };
        qs.push(Query {
            proto,
            src,
            dst,
            state,
            now: SimTime(rng.below(HORIZON.0)),
        });
    }
    qs
}

/// Reference semantics: first live matching rule in install order,
/// mirroring `FilterRule::matches` field by field.
fn naive_eval(specs: &[RuleSpec], q: &Query) -> (Verdict, u64) {
    for (i, s) in specs.iter().enumerate() {
        if s.from <= q.now
            && q.now < s.until
            && s.proto.is_none_or(|p| p == q.proto)
            && s.ports.0 <= q.dst.port
            && q.dst.port <= s.ports.1
            && s.src.is_none_or(|n| n.contains(q.src.ip))
            && s.dst.is_none_or(|n| n.contains(q.dst.ip))
            && s.states.matches(q.state)
        {
            return (s.verdict, i as u64);
        }
    }
    (Verdict::Accept, NO_RULE)
}

/// FNV-1a fold — stable across platforms and toolchains, unlike
/// `DefaultHasher`, so the digests can be compared against the committed
/// baseline.
fn fnv(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn compiled_digest(ctl: &FilterControl, queries: &[Query]) -> u64 {
    let mut h = FNV_SEED;
    for (i, q) in queries.iter().enumerate() {
        let (v, id) = ctl.eval(Chain::Forward, q.proto, q.src, q.dst, q.state, q.now);
        h = fnv(fnv(fnv(h, i as u64), v.code()), id);
    }
    h
}

fn naive_digest(specs: &[RuleSpec], queries: &[Query]) -> u64 {
    let mut h = FNV_SEED;
    for (i, q) in queries.iter().enumerate() {
        let (v, id) = naive_eval(specs, q);
        h = fnv(fnv(fnv(h, i as u64), v.code()), id);
    }
    h
}

/// Nanoseconds per eval over the full query stream (compiled index warm).
fn time_eval(ctl: &FilterControl, queries: &[Query]) -> f64 {
    let mut sink = 0u64;
    let start = Instant::now();
    for q in queries {
        let (v, id) = ctl.eval(Chain::Forward, q.proto, q.src, q.dst, q.state, q.now);
        sink = sink.wrapping_add(v.code() ^ id);
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    elapsed * 1e9 / queries.len() as f64
}

/// Hub topology: `PAIRS` bouncer pairs, every frame crossing the one
/// bridge that hosts the table under test.
fn build_hub(specs: &[RuleSpec]) -> (Network, FilterControl) {
    let mut net = Network::new(0x9C11);
    let hub = Bridge::new(
        2 * PAIRS,
        StageCost::fixed(400, 0.1, CpuCategory::Sys).with_jitter(0.05),
        SharedStation::new(),
    );
    let ctl = hub.filter();
    install_specs(&ctl, specs);
    let hub_dev = net.add_device("hub", CpuLocation::Host, Box::new(hub));
    let cost = StageCost::fixed(600, 0.2, CpuCategory::Usr).with_jitter(0.05);
    for p in 0..PAIRS {
        let ma = MacAddr::local((2 * p + 1) as u32);
        let mb = MacAddr::local((2 * p + 2) as u32);
        let a = net.add_device(
            format!("p{p}.a"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(format!("p{p}.a"), ma, PAYLOAD, cost, false)),
        );
        let b = net.add_device(
            format!("p{p}.b"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(format!("p{p}.b"), mb, PAYLOAD, cost, false)),
        );
        net.connect(a, PortId::P0, hub_dev, PortId(2 * p), LinkParams::default());
        net.connect(
            b,
            PortId::P0,
            hub_dev,
            PortId(2 * p + 1),
            LinkParams::default(),
        );
        net.inject_frame(
            SimDuration::nanos((p as u64) * 137),
            b,
            PortId::P0,
            frame_between(ma, mb, PAYLOAD),
        );
    }
    (net, ctl)
}

fn frames_delivered(store: &SampleStore) -> f64 {
    store
        .counter_names()
        .filter(|n| n.ends_with(".bounced"))
        .map(|n| store.counter(n))
        .sum()
}

/// Precompiles the table (outside any timed window) with a traffic-shaped
/// probe.
fn warm_compile(ctl: &FilterControl, now: SimTime) {
    std::hint::black_box(ctl.eval(
        Chain::Forward,
        Proto::Udp,
        SockAddr::new(Ip4::new(10, 0, 0, 1), 40_000),
        SockAddr::new(Ip4::new(10, 0, 0, 2), 50_000),
        ConnState::New,
        now,
    ));
}

struct HubOut {
    per_frame_ns: f64,
    frames: f64,
    accepts: f64,
    drops: f64,
}

fn run_hub(specs: &[RuleSpec]) -> HubOut {
    let (mut net, ctl) = build_hub(specs);
    warm_compile(&ctl, SimTime::ZERO);
    let start = Instant::now();
    net.run(StopCondition::Until(HORIZON));
    let elapsed = start.elapsed().as_secs_f64();
    let frames = frames_delivered(net.store());
    HubOut {
        per_frame_ns: elapsed * 1e9 / frames,
        frames,
        accepts: net.store().counter("filter.forward.accept"),
        drops: net.store().counter("filter.forward.drop"),
    }
}

struct ChurnOut {
    per_frame_ns: f64,
    install_ns: f64,
    remove_ns: f64,
    recompile_ns: f64,
    purged: usize,
}

/// Same hub and traffic, but the table is mutated between run slices:
/// each boundary removes the previous batch, installs a fresh one live
/// from that instant, and pays (and measures) the recompile on the first
/// eval after the mutation.
fn run_churn(specs: &[RuleSpec]) -> ChurnOut {
    let (mut net, ctl) = build_hub(specs);
    warm_compile(&ctl, SimTime::ZERO);
    let mut rng = Rng(SEED ^ 0xC0FF_EE00);
    let mut install_ns = Vec::new();
    let mut remove_ns = Vec::new();
    let mut recompile_ns = Vec::new();
    let mut prev_batch: Vec<u64> = Vec::new();
    let start = Instant::now();
    for k in 1..=CHURN_SLICES {
        let t_prev = SimTime(HORIZON.0 * (k - 1) / CHURN_SLICES);
        for &id in &prev_batch {
            let t0 = Instant::now();
            assert!(ctl.remove_at(id, t_prev), "churn rule {id} must exist");
            remove_ns.push(t0.elapsed().as_nanos() as f64);
        }
        prev_batch.clear();
        for _ in 0..CHURN_BATCH {
            let port = (1_000 + rng.below(30_000)) as u16;
            let rule = FilterRule::any(Chain::Forward, Verdict::Drop)
                .from_net(src_nets()[rng.below(4) as usize])
                .port(port);
            let t0 = Instant::now();
            prev_batch.push(ctl.install_at(rule, t_prev));
            install_ns.push(t0.elapsed().as_nanos() as f64);
        }
        let t0 = Instant::now();
        warm_compile(&ctl, t_prev);
        recompile_ns.push(t0.elapsed().as_nanos() as f64);
        net.run(StopCondition::Until(SimTime(HORIZON.0 * k / CHURN_SLICES)));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let frames = frames_delivered(net.store());
    let purged = ctl.purge_expired(HORIZON);
    ChurnOut {
        per_frame_ns: elapsed * 1e9 / frames,
        install_ns: median(install_ns),
        remove_ns: median(remove_ns),
        recompile_ns: median(recompile_ns),
        purged,
    }
}

/// Eight disconnected islands, each a bouncer pair through its own
/// filtered bridge; a third of the islands carry a mid-run Drop window on
/// the traffic port, so verdicts (not just fall-throughs) land mid-run.
fn build_islands() -> Network {
    let mut net = Network::new(0x51AB);
    let mut rng = Rng(SEED ^ 0xA5A5);
    let specs = gen_specs(RULES_SMALL, &mut rng);
    let relay_cost = StageCost::fixed(400, 0.1, CpuCategory::Sys).with_jitter(0.05);
    let bouncer_cost = StageCost::fixed(600, 0.2, CpuCategory::Usr).with_jitter(0.05);
    for c in 0..ISLANDS {
        let ma = MacAddr::local((2 * c + 1) as u32);
        let mb = MacAddr::local((2 * c + 2) as u32);
        let a = net.add_device(
            format!("i{c}.a"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(
                format!("i{c}.a"),
                ma,
                PAYLOAD,
                bouncer_cost,
                false,
            )),
        );
        let b = net.add_device(
            format!("i{c}.b"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(
                format!("i{c}.b"),
                mb,
                PAYLOAD,
                bouncer_cost,
                false,
            )),
        );
        let br = Bridge::new(2, relay_cost, SharedStation::new());
        let ctl = br.filter();
        install_specs(&ctl, &specs);
        if c % 3 == 0 {
            let id = ctl.install_at(
                FilterRule::any(Chain::Forward, Verdict::Drop).port(50_000),
                SimTime(HORIZON.0 / 4),
            );
            ctl.remove_at(id, SimTime(HORIZON.0 / 2));
        }
        let br_dev = net.add_device(format!("i{c}.br"), CpuLocation::Host, Box::new(br));
        net.connect(a, PortId::P0, br_dev, PortId(0), LinkParams::default());
        net.connect(b, PortId::P0, br_dev, PortId(1), LinkParams::default());
        net.inject_frame(
            SimDuration::nanos((c as u64) * 137),
            b,
            PortId::P0,
            frame_between(ma, mb, PAYLOAD),
        );
    }
    net
}

/// Order-independent digest of a run's observable outcome (within-process
/// shard comparison only, so `DefaultHasher` is fine here).
fn outcome_digest(store: &SampleStore, events: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    events.hash(&mut h);
    let mut names: Vec<&str> = store.sample_names().collect();
    names.sort_unstable();
    for n in names {
        n.hash(&mut h);
        for v in store.samples(n) {
            v.to_bits().hash(&mut h);
        }
    }
    let mut names: Vec<&str> = store.counter_names().collect();
    names.sort_unstable();
    for n in names {
        n.hash(&mut h);
        store.counter(n).to_bits().hash(&mut h);
    }
    h.finish()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("reps must be a positive integer"))
        .unwrap_or(3)
        .max(1);

    let small = gen_specs(RULES_SMALL, &mut Rng(SEED));
    let large = gen_specs(RULES_LARGE, &mut Rng(SEED ^ 0x1111));
    let queries = gen_queries(QUERIES, &mut Rng(SEED ^ 0x2222));

    // ---- matcher: raw eval latency + compiled-vs-naive digests --------
    let ctl_small = FilterControl::default();
    install_specs(&ctl_small, &small);
    let ctl_large = FilterControl::default();
    install_specs(&ctl_large, &large);
    time_eval(&ctl_small, &queries); // warm-up (and compile)
    time_eval(&ctl_large, &queries);
    let mut eval_small = Vec::with_capacity(reps);
    let mut eval_large = Vec::with_capacity(reps);
    for _ in 0..reps {
        eval_small.push(time_eval(&ctl_small, &queries));
        eval_large.push(time_eval(&ctl_large, &queries));
    }
    let digest_small = compiled_digest(&ctl_small, &queries[..CHECK_SMALL]);
    let digest_large = compiled_digest(&ctl_large, &queries[..CHECK_LARGE]);
    let digest_match = digest_small == naive_digest(&small, &queries[..CHECK_SMALL])
        && digest_large == naive_digest(&large, &queries[..CHECK_LARGE]);
    assert!(
        digest_match,
        "compiled matcher disagrees with the naive first-match walk"
    );

    // ---- packet overhead: paired 1k-vs-100k hub runs ------------------
    run_hub(&small); // warm-up
    run_hub(&large);
    let mut ratios = Vec::with_capacity(reps);
    let mut small_ns = Vec::with_capacity(reps);
    let mut large_ns = Vec::with_capacity(reps);
    let mut frames = 0.0;
    for _ in 0..reps {
        let s = run_hub(&small);
        let l = run_hub(&large);
        assert_eq!(
            s.frames, l.frames,
            "rule count leaked into the simulated outcome"
        );
        assert_eq!(s.drops + l.drops, 0.0, "no hub rule may match the traffic");
        assert!(s.accepts > 0.0, "the hub table never ran — hook is dead");
        frames = l.frames;
        ratios.push(l.per_frame_ns / s.per_frame_ns);
        small_ns.push(s.per_frame_ns);
        large_ns.push(l.per_frame_ns);
    }
    let overhead_ratio = median(ratios);
    let per_frame_small = median(small_ns);
    let per_frame_large = median(large_ns);
    assert!(
        overhead_ratio <= 1.0 + TOLERANCE,
        "per-packet overhead at {RULES_LARGE} rules is {overhead_ratio:.3}x of {RULES_SMALL} \
         (budget {:.2})",
        1.0 + TOLERANCE
    );

    // ---- churn: mutations under load ----------------------------------
    let churn = run_churn(&large);
    let churn_frame_ratio = churn.per_frame_ns / per_frame_large;
    assert!(churn.purged > 0, "expired rules must be purgeable");

    // ---- sharded determinism ------------------------------------------
    let mut shard_rows = Vec::new();
    let mut ref_digest = None;
    let mut bit_identical = true;
    for want in [1usize, 2, 8] {
        let mut sn = SimConfig::new().shards(want).build(build_islands());
        let got = sn.nshards();
        sn.run(StopCondition::Until(HORIZON));
        let report = sn.into_report();
        let digest = outcome_digest(&report.store, report.events_processed);
        let identical = *ref_digest.get_or_insert(digest) == digest;
        bit_identical &= identical;
        shard_rows.push(format!(
            "{{\"shards_wanted\":{want},\"shards_got\":{got},\"bit_identical\":{identical}}}"
        ));
        assert!(
            identical,
            "filtered run at {want} shards diverged from the 1-shard outcome"
        );
    }

    let eval_small_median = median(eval_small);
    let eval_large_median = median(eval_large);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"policy_churn (crates/bench/src/bin/policy_churn.rs)\",\n  \
         \"scenario\": \"filter_matcher\",\n  \
         \"rules_small\": {RULES_SMALL},\n  \"rules_large\": {RULES_LARGE},\n  \
         \"reps\": {reps},\n  \"host_cores\": {host_cores},\n  \
         \"matcher\": {{\"queries\": {QUERIES}, \"eval_ns_small_median\": {:.1}, \
         \"eval_ns_large_median\": {:.1}, \"eval_ratio\": {:.3}, \
         \"checked_small\": {CHECK_SMALL}, \"checked_large\": {CHECK_LARGE}, \
         \"digest_small\": \"0x{digest_small:016x}\", \
         \"digest_large\": \"0x{digest_large:016x}\", \"digest_match\": {digest_match}}},\n  \
         \"packet\": {{\"pairs\": {PAIRS}, \"sim_horizon_ns\": {}, \"frames\": {frames:.0}, \
         \"per_frame_ns_small_median\": {per_frame_small:.1}, \
         \"per_frame_ns_large_median\": {per_frame_large:.1}}},\n  \
         \"overhead_ratio\": {overhead_ratio:.3},\n  \
         \"churn\": {{\"slices\": {CHURN_SLICES}, \"batch\": {CHURN_BATCH}, \
         \"install_ns_median\": {:.0}, \"remove_ns_median\": {:.0}, \
         \"recompile_ns_median\": {:.0}, \"per_frame_ratio\": {churn_frame_ratio:.3}, \
         \"purged\": {}}},\n  \
         \"tolerance\": {TOLERANCE},\n  \"bit_identical\": {bit_identical},\n  \
         \"sharded\": [\n    {}\n  ],\n  \
         \"note\": \"overhead_ratio is the median of paired per-rep ratios of wall-clock per delivered frame between the 100k-rule and 1k-rule hub tables (every rule src-net constrained away from the traffic, so each frame pays the full fall-through walk); it must stay within tolerance of 1.0. digest_small/digest_large are FNV-1a folds of the compiled matcher's (verdict, rule_id) stream over a seed-fixed query prefix — machine-independent, asserted equal to an independent naive linear walk here, and compared verbatim against the committed baseline by the perf gate. Raw eval_ns numbers are informational (machine-dependent). churn reports mutation latency under load and the recompile paid by the first post-mutation eval. bit_identical asserts the merged filtered outcome digest is equal at 1/2/8 shards.\"\n}}\n",
        eval_small_median,
        eval_large_median,
        eval_large_median / eval_small_median,
        HORIZON.0,
        churn.install_ns,
        churn.remove_ns,
        churn.recompile_ns,
        churn.purged,
        shard_rows.join(",\n    ")
    );
    print!("{json}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/policy_churn.json", &json))
    {
        eprintln!("warning: could not write results/policy_churn.json: {e}");
    }
}
