//! Ablation 2: vhost (host-kernel backend) vs QEMU userspace emulation.
//!
//! §5.1 uses vhost; this ablation inflates the backend costs to a
//! userspace-QEMU-like profile (extra copies and exits) to show why the
//! evaluation setup matters.

use nestless::topology::{BuildOpts, Config};
use nestless_bench::Figure;
use simnet::SimDuration;
use simnet::StopCondition;
use workloads::netperf::Netperf;

fn main() {
    let mut fig = Figure::new(
        "ablation_vhost",
        "vhost backend vs QEMU userspace emulation",
    );
    let np = Netperf {
        duration: SimDuration::millis(400),
        ..Netperf::with_size(1280)
    };

    let vhost = np.tcp_stream(Config::NoCont, 5).throughput_mbps.unwrap();
    let vhost_lat = np.udp_rr(Config::NoCont, 5).latency_us.unwrap();
    fig.push_row("vhost throughput @1280B", vhost.mean, "Mbit/s");
    fig.push_row("vhost latency @1280B", vhost_lat.mean, "us");

    // Userspace emulation: every frame exits to QEMU (2.4x fixed cost,
    // 1.8x per-byte for the extra copy).
    let mut opts = BuildOpts::default();
    opts.costs.vhost.fixed_ns = (opts.costs.vhost.fixed_ns as f64 * 2.4) as u64;
    opts.costs.vhost.per_byte_ns *= 1.8;
    // Use the sweep path with custom costs by rebuilding via workloads'
    // netperf on a custom testbed is not exposed; approximate by scaling
    // the whole model and rerunning through build_with in-process.
    let tput = run_tput(&opts, 1280);
    let lat = run_lat(&opts, 1280);
    fig.push_row("userspace throughput @1280B", tput, "Mbit/s");
    fig.push_row("userspace latency @1280B", lat, "us");
    fig.push_row("vhost throughput gain", vhost.mean / tput, "x");
    fig.finish();
}

fn run_tput(opts: &BuildOpts, size: u32) -> f64 {
    use simnet::{AppApi, Application, Incoming, Payload, TcpKind};
    struct Srv;
    impl Application for Srv {
        fn on_start(&mut self, _: &mut AppApi<'_, '_>) {}
        fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
            let Some((seq, TcpKind::Data)) = msg.tcp else {
                return;
            };
            api.count("rx_bytes", msg.payload.len as f64);
            api.send_tcp(
                nestless::SERVER_PORT,
                msg.src,
                seq,
                TcpKind::Ack,
                Payload::sized(0),
            );
        }
    }
    struct Cli {
        target: simnet::SockAddr,
        size: u32,
        seq: u64,
    }
    impl Cli {
        fn send(&mut self, api: &mut AppApi<'_, '_>) {
            self.seq += 1;
            api.send_tcp(
                nestless::CLIENT_PORT,
                self.target,
                self.seq,
                TcpKind::Data,
                Payload::sized(self.size),
            );
        }
    }
    impl Application for Cli {
        fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
            for _ in 0..64 {
                self.send(api);
            }
        }
        fn on_message(&mut self, _: Incoming, api: &mut AppApi<'_, '_>) {
            self.send(api);
        }
    }
    let mut tb = nestless::topology::build_with(Config::NoCont, 5, opts);
    let target = tb.target;
    let s = tb.install(
        "srv",
        &tb.server.clone(),
        [nestless::SERVER_PORT],
        Box::new(Srv),
    );
    let c = tb.install(
        "cli",
        &tb.client.clone(),
        [nestless::CLIENT_PORT],
        Box::new(Cli {
            target,
            size,
            seq: 0,
        }),
    );
    tb.start(&[s, c]);
    let dur = simnet::SimDuration::millis(400);
    tb.vmm.network_mut().run(StopCondition::For(dur));
    tb.vmm.network().store().counter("rx_bytes") * 8.0 / dur.as_secs_f64() / 1e6
}

fn run_lat(opts: &BuildOpts, size: u32) -> f64 {
    use simnet::{AppApi, Application, Incoming, Payload};
    struct Rr {
        target: simnet::SockAddr,
        size: u32,
        n: u64,
    }
    impl Rr {
        fn fire(&mut self, api: &mut AppApi<'_, '_>) {
            self.n += 1;
            let mut p = Payload::sized(self.size);
            p.tag = self.n;
            api.send_udp(nestless::CLIENT_PORT, self.target, p);
        }
    }
    impl Application for Rr {
        fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
            self.fire(api);
        }
        fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
            api.record(
                "rtt_us",
                api.now().since(msg.payload.sent_at).as_micros_f64(),
            );
            self.fire(api);
        }
    }
    let mut tb = nestless::topology::build_with(Config::NoCont, 5, opts);
    let target = tb.target;
    let s = tb.install(
        "srv",
        &tb.server.clone(),
        [nestless::SERVER_PORT],
        Box::new(workloads::UdpEchoServer),
    );
    let c = tb.install(
        "cli",
        &tb.client.clone(),
        [nestless::CLIENT_PORT],
        Box::new(Rr { target, size, n: 0 }),
    );
    tb.start(&[s, c]);
    tb.vmm
        .network_mut()
        .run(StopCondition::For(simnet::SimDuration::millis(300)));
    let xs = tb.vmm.network().store().samples("rtt_us");
    xs.iter().sum::<f64>() / xs.len() as f64
}
