//! Figure 6: CPU usage breakdown running Kafka.
//!
//! "BrFusion reduces the CPU time spent serving software interrupts by
//! 67.0% compared to NAT [...] NAT rules are applied on packets via hooks
//! executed by software interrupts, and BrFusion simply removes the
//! execution of these hooks."

use nestless::topology::Config;
use nestless_bench::{Claim, Figure};
use workloads::{run_kafka, KafkaParams};

fn main() {
    let mut fig = Figure::new("fig06", "CPU usage breakdown, Kafka (usr/sys/soft/guest)");
    let mut soft = Vec::new();
    for (i, c) in [Config::Nat, Config::BrFusion, Config::NoCont]
        .into_iter()
        .enumerate()
    {
        let r = run_kafka(KafkaParams::paper(), c, 60 + i as u64);
        let vm = r.cpu_server_vm.expect("server in VM");
        fig.push_row(format!("{c:?} VM usr"), vm.usr, "cores");
        fig.push_row(format!("{c:?} VM sys"), vm.sys, "cores");
        fig.push_row(format!("{c:?} VM soft"), vm.soft, "cores");
        fig.push_row(format!("{c:?} VM total"), vm.total(), "cores");
        fig.push_row(format!("{c:?} host guest"), r.cpu_host.guest, "cores");
        fig.push_row(format!("{c:?} host sys (vhost)"), r.cpu_host.sys, "cores");
        soft.push(vm.soft);
    }
    // soft[0] = NAT, soft[1] = BrFusion.
    fig.push_claim(Claim::new(
        "BrFusion softirq CPU reduction vs NAT (in VM)",
        67.0,
        (1.0 - soft[1] / soft[0]) * 100.0,
        "%",
    ));
    fig.finish();
}
