//! Runs every figure and ablation binary's logic in sequence by invoking
//! the sibling binaries; writes all `results/*.json` artifacts.
//!
//! `cargo run -p nestless-bench --release --bin run_all`

use std::process::Command;

const BINS: [&str; 24] = [
    "fig02_motivation",
    "fig04_brfusion_micro",
    "fig05_brfusion_macro",
    "fig06_cpu_kafka",
    "fig07_cpu_nginx",
    "fig08_boot_time",
    "fig09_cost_savings",
    "fig10_hostlo_micro",
    "fig11_hostlo_memcached",
    "fig12_hostlo_memcached_var",
    "fig13_hostlo_nginx",
    "fig14_cpu_memcached",
    "fig15_cpu_nginx",
    "ablation_stage_count",
    "ablation_vhost",
    "ablation_batching",
    "ablation_hostlo_fanout",
    "ablation_sched_policy",
    "ablation_ring_size",
    "table_substrate_inventory",
    "pathfinder",
    "ext_online_costs",
    "ext_shaped_pod",
    "topology_dot",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n######## {bin} ########");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("[{bin} failed: {other:?}]");
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll figures regenerated; see results/*.json");
    } else {
        eprintln!("\nFailed: {failures:?}");
        std::process::exit(1);
    }
}
