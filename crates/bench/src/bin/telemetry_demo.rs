//! Unified telemetry plane demo + invariant gate.
//!
//! One run exercises every piece of the telemetry plane end to end:
//!
//! 1. **Deterministic journal** — a hybrid-fidelity relay-chain scenario
//!    with a lossy fault window runs at 1/2/8 shards, conservative and
//!    optimistic. The deterministic journal lane (records + per-kind
//!    counts + drop count) must be bit-identical across all five runs.
//! 2. **Metrics registry** — counters, gauges, a log2 histogram, and a
//!    decimating tick series are fed from the canonical run's journal.
//! 3. **Exporters** — the merged [`TelemetrySnapshot`] is round-trip
//!    validated through serde and written as versioned JSON, Prometheus
//!    text, and a Perfetto counter-track trace.
//!
//! Every invariant failure exits nonzero, so CI can run the bin as a
//! self-checking smoke test:
//!
//! ```text
//! cargo run --release -p nestless-bench --bin telemetry_demo
//! ```
//!
//! Artifacts land in `results/telemetry_demo.{snapshot.json,prom,trace.json}`.

use metrics::CpuCategory;
use metrics::CpuLocation;
use metrics::{TelemetryConfig, TelemetryRegistry};
use simnet::bridge::Bridge;
use simnet::costs::StageCost;
use simnet::device::{DeviceId, PortId};
use simnet::engine::{LinkParams, Network};
use simnet::shared::SharedStation;
use simnet::testutil::{frame_between, MacBouncer};
use simnet::time::{SimDuration, SimTime};
use simnet::{
    chrome_counter_tracks, telemetry_report, FaultPlan, Fidelity, JournalKind, LinkFault,
    LinkFaultKind, MacAddr, RunReport, SimConfig, StopCondition, TelemetrySnapshot,
};

/// Parallel relay chains; each is its own partition island, so 1/2/8
/// shard requests all materialize exactly.
const CHAINS: usize = 4;

/// Two-port learning bridges between the bouncer pair of each chain —
/// deep enough that the hybrid fast path promotes and journals flows.
const RELAYS: usize = 12;

/// Simulated horizon: long enough for promotion, the fault window, and
/// the post-fault re-promotion to all land in the journal.
const HORIZON: SimTime = SimTime(5_000_000);

const PAYLOAD: u32 = 200;

fn die(msg: &str) -> ! {
    eprintln!("telemetry_demo: FAIL: {msg}");
    std::process::exit(1);
}

/// Builds the relay-chain network and returns the first relay of each
/// chain (the fault plan's targets).
fn build() -> (Network, Vec<DeviceId>) {
    let mut net = Network::new(0x7E1E);
    let bouncer_cost = StageCost::fixed(600, 0.2, CpuCategory::Usr).with_jitter(0.05);
    let relay_cost = StageCost::fixed(400, 0.1, CpuCategory::Sys).with_jitter(0.05);
    let mut targets = Vec::with_capacity(CHAINS);
    for c in 0..CHAINS {
        let ma = MacAddr::local((2 * c + 1) as u32);
        let mb = MacAddr::local((2 * c + 2) as u32);
        let a = net.add_device(
            format!("c{c}.a"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(
                format!("c{c}.a"),
                ma,
                PAYLOAD,
                bouncer_cost,
                false,
            )),
        );
        let b = net.add_device(
            format!("c{c}.b"),
            CpuLocation::Host,
            Box::new(MacBouncer::new(
                format!("c{c}.b"),
                mb,
                PAYLOAD,
                bouncer_cost,
                false,
            )),
        );
        let mut prev = (a, PortId::P0);
        for r in 0..RELAYS {
            let br = net.add_device(
                format!("c{c}.r{r}"),
                CpuLocation::Host,
                Box::new(Bridge::new(2, relay_cost, SharedStation::new())),
            );
            if r == 0 {
                targets.push(br);
            }
            net.connect(prev.0, prev.1, br, PortId(0), LinkParams::default());
            prev = (br, PortId(1));
        }
        net.connect(prev.0, prev.1, b, PortId::P0, LinkParams::default());
        net.inject_frame(
            SimDuration::nanos((c as u64) * 137),
            b,
            PortId::P0,
            frame_between(ma, mb, PAYLOAD),
        );
    }
    (net, targets)
}

/// A lossy mid-run window on each chain's first relay: exercises
/// `fault.open`/`fault.close` journal records and the `fault.lost`
/// counter without silencing the chains for good.
fn plan(targets: &[DeviceId]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for (i, dev) in targets.iter().enumerate() {
        let from = SimTime(1_500_000 + (i as u64) * 50_000);
        plan = plan.link_fault(LinkFault {
            dev: *dev,
            port: PortId(1),
            from,
            until: from + SimDuration::nanos(400_000),
            kind: LinkFaultKind::Loss(0.3),
        });
    }
    plan
}

fn run(shards: usize, optimistic: bool) -> RunReport {
    let (net, targets) = build();
    let mut sn = SimConfig::new()
        .shards(shards)
        .optimistic(optimistic)
        .fidelity(Fidelity::Hybrid)
        .telemetry(TelemetryConfig::full())
        .fault(plan(&targets))
        .build(net);
    sn.run(StopCondition::Until(HORIZON));
    sn.into_report()
}

/// Serializes, parses back, compares — returns the JSON only when the
/// round trip is lossless.
fn round_trip<T>(what: &str, value: &T) -> String
where
    T: serde::Serialize + serde::Deserialize + PartialEq,
{
    let json = match serde_json::to_string_pretty(value) {
        Ok(j) => j,
        Err(e) => die(&format!("serializing {what}: {e}")),
    };
    match serde_json::from_str::<T>(&json) {
        Ok(back) if &back == value => json,
        Ok(_) => die(&format!("{what} changed across a serde round trip")),
        Err(e) => die(&format!("reparsing {what}: {e}")),
    }
}

fn main() {
    // 1. Journal determinism: five engine configurations, one journal.
    let configs = [(1, false), (2, false), (8, false), (2, true), (8, true)];
    let mut canonical: Option<RunReport> = None;
    for (shards, optimistic) in configs {
        let report = run(shards, optimistic);
        if report.telemetry_mode != metrics::TelemetryMode::Full {
            die("run must report telemetry mode full");
        }
        if let Some(reference) = &canonical {
            if report.journal != reference.journal
                || report.journal_counts != reference.journal_counts
                || report.journal_dropped != reference.journal_dropped
            {
                die(&format!(
                    "journal diverged at shards={shards} optimistic={optimistic}: \
                     {} records vs {} reference",
                    report.journal.len(),
                    reference.journal.len()
                ));
            }
        } else {
            canonical = Some(report);
        }
    }
    let report = canonical.unwrap();
    if report.journal.is_empty() {
        die("hybrid run with faults journaled nothing — scenario is broken");
    }

    // 2. Registry: derived metrics fed from the canonical journal.
    let mut reg = TelemetryRegistry::new().with_series_cap(64);
    let records = reg.counter("demo.journal_records");
    let flow_hits = reg.gauge("demo.flow_hit_rate");
    let gaps = reg.hist("demo.record_gap_ns");
    let series = reg.series("demo.journal_cumulative");
    reg.inc(records, report.journal.len() as u64);
    for pair in report.journal.windows(2) {
        reg.observe(gaps, pair[1].tag.at_ns.saturating_sub(pair[0].tag.at_ns));
    }
    for (i, r) in report.journal.iter().enumerate() {
        reg.sample(series, r.tag.at_ns, (i + 1) as f64);
    }

    // 3. Snapshot: engine report + registry, merged, then exported.
    let mut snap: TelemetrySnapshot = telemetry_report(&report, "telemetry_demo.relay_chains");
    reg.set(flow_hits, snap.health.flow_hit_rate);
    let reg_snap = reg.snapshot("telemetry_demo.relay_chains", "full");
    snap.counters.extend(reg_snap.counters);
    snap.gauges.extend(reg_snap.gauges);
    snap.histograms.extend(reg_snap.histograms);
    snap.series.extend(reg_snap.series);

    if snap.journal_count(JournalKind::FlowPromote) == 0 {
        die("hybrid steady chains must journal flow promotions");
    }
    if snap.journal_count(JournalKind::FlowEscalate) == 0 {
        die("the lossy window must journal flow escalations");
    }
    // Window transitions are observed at the faulted device's own
    // emissions; a window whose flow re-promotes before it ends closes
    // unobserved, so closes can lag opens but never outnumber them.
    let open = snap.journal_count(JournalKind::FaultOpen);
    let close = snap.journal_count(JournalKind::FaultClose);
    if open == 0 || close > open {
        die("fault windows must journal opens; closes can never outnumber them");
    }
    if snap.counters.get("fault.lost").copied().unwrap_or(0) == 0 {
        die("the lossy window must surface in fault.lost");
    }
    if snap.drops.journal != 0 {
        die("the default journal ring must not drop in this scenario");
    }
    if snap.series.iter().all(|s| s.points.is_empty()) {
        die("the registry tick series must export points");
    }

    let snapshot_json = round_trip("TelemetrySnapshot", &snap);
    let prom = snap.prometheus_text();
    if !prom.contains("nestless_fault_lost") || !prom.contains("nestless_demo_flow_hit_rate") {
        die("prometheus export is missing expected metric families");
    }
    let trace = chrome_counter_tracks(&snap);
    let trace_json = round_trip("ChromeTrace", &trace);

    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| {
        std::fs::write("results/telemetry_demo.snapshot.json", &snapshot_json)?;
        std::fs::write("results/telemetry_demo.prom", &prom)?;
        std::fs::write("results/telemetry_demo.trace.json", &trace_json)
    }) {
        die(&format!("writing results/: {e}"));
    }

    let kinds: Vec<String> = snap
        .journal_counts
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    println!(
        "{{\n  \"benchmark\": \"telemetry_demo (crates/bench/src/bin/telemetry_demo.rs)\",\n  \
         \"schema\": \"{}\",\n  \"configs_checked\": {},\n  \"journal_records\": {},\n  \
         \"journal_counts\": {{ {} }},\n  \"flow_hit_rate\": {:.4},\n  \
         \"drops\": {{\"journal\": {}, \"spans\": {}, \"trace\": {}}},\n  \
         \"artifacts\": [\"results/telemetry_demo.snapshot.json\", \
         \"results/telemetry_demo.prom\", \"results/telemetry_demo.trace.json\"],\n  \
         \"note\": \"journal records, per-kind counts, and drop counts are bit-identical across 1/2/8 shards in conservative and optimistic sync; the snapshot round-trips losslessly and exports to Prometheus text and Perfetto counter tracks.\"\n}}",
        snap.schema,
        configs.len(),
        snap.journal.len(),
        kinds.join(", "),
        snap.health.flow_hit_rate,
        snap.drops.journal,
        snap.drops.spans,
        snap.drops.trace,
    );
}
