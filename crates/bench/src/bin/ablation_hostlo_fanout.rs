//! Ablation 4: hostlo TAP fan-out — broadcast to all queues (the paper's
//! driver) vs excluding the sender's queue.
//!
//! Broadcasting is faithful to §4.2 but wastes one copy per frame on the
//! echo into the sender's own queue; this measures what that copy costs.

use nestless::topology::{build_with, BuildOpts, Config};
use nestless_bench::Figure;
use simnet::StopCondition;
use simnet::{AppApi, Application, Incoming, Payload, SimDuration};
use vmm::FanoutMode;

struct Rr {
    target: simnet::SockAddr,
    n: u64,
}

impl Rr {
    fn fire(&mut self, api: &mut AppApi<'_, '_>) {
        self.n += 1;
        let mut p = Payload::sized(1024);
        p.tag = self.n;
        api.send_udp(nestless::CLIENT_PORT, self.target, p);
    }
}

impl Application for Rr {
    fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
        self.fire(api);
    }
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
        api.record(
            "rtt_us",
            api.now().since(msg.payload.sent_at).as_micros_f64(),
        );
        self.fire(api);
    }
}

fn run(mode: FanoutMode) -> (f64, f64) {
    let opts = BuildOpts {
        hostlo_fanout: mode,
        ..BuildOpts::default()
    };
    let mut tb = build_with(Config::Hostlo, 4, &opts);
    let target = tb.target;
    let s = tb.install(
        "srv",
        &tb.server.clone(),
        [nestless::SERVER_PORT],
        Box::new(workloads::UdpEchoServer),
    );
    let c = tb.install(
        "cli",
        &tb.client.clone(),
        [nestless::CLIENT_PORT],
        Box::new(Rr { target, n: 0 }),
    );
    tb.start(&[s, c]);
    tb.vmm
        .network_mut()
        .run(StopCondition::For(SimDuration::millis(300)));
    let xs = tb.vmm.network().store().samples("rtt_us");
    let lat = xs.iter().sum::<f64>() / xs.len() as f64;
    let copies = tb.vmm.network().store().counter("hostlo.queue_copies");
    (lat, copies / xs.len() as f64)
}

fn main() {
    let mut fig = Figure::new(
        "ablation_hostlo_fanout",
        "Hostlo TAP fan-out: broadcast vs unicast",
    );
    for (label, mode) in [
        ("broadcast (paper)", FanoutMode::AllQueues),
        ("exclude ingress", FanoutMode::ExcludeIngress),
    ] {
        let (lat, copies_per_txn) = run(mode);
        fig.push_row(format!("{label}: RR latency"), lat, "us");
        fig.push_row(
            format!("{label}: TAP copies per transaction"),
            copies_per_txn,
            "copies",
        );
    }
    fig.finish();
}
