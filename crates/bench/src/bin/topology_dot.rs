//! Emit Graphviz DOT for every experiment topology (the fig. 1 diagrams,
//! generated from the live device graph). Files land in `results/`.
//!
//! ```sh
//! cargo run -p nestless-bench --release --bin topology_dot
//! dot -Tsvg results/topology_nat.dot -o nat.svg
//! ```

use nestless::topology::{build, Config};

fn main() {
    std::fs::create_dir_all("results").expect("results dir");
    for config in Config::ALL {
        let tb = build(config, 1);
        let name = format!("{config:?}").to_lowercase();
        let dot = tb.vmm.network().to_dot(&format!("{config:?}"));
        let path = format!("results/topology_{name}.dot");
        std::fs::write(&path, dot).expect("write dot");
        println!(
            "{path}: {} devices, {} links",
            tb.vmm.network().device_count(),
            tb.vmm.network().links().len()
        );
    }
}
