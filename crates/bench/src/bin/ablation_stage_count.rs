//! Ablation 1: which guest stage costs what?
//!
//! BrFusion's thesis is that the guest-level bridge, NAT and veth stages
//! are pure overhead. This ablation zeroes each stage individually in the
//! NAT configuration and reports how much of the latency gap it explains.

use nestless::topology::{build_with, BuildOpts, Config};
use nestless_bench::Figure;
use simnet::costs::StageCost;
use simnet::StopCondition;
use workloads::netperf::Netperf;

fn run_with(opts: &BuildOpts, seed: u64) -> f64 {
    // Directly measure UDP_RR latency at 1280 B with custom opts.
    let np = Netperf::with_size(1280);
    let mut tb = build_with(Config::Nat, seed, opts);
    // Reuse the netperf apps through the public API: cheapest is to rebuild
    // using the workloads helper, but it does not take opts; drive manually.
    let target = tb.target;
    let server = tb.install(
        "srv",
        &tb.server.clone(),
        [nestless::SERVER_PORT],
        Box::new(workloads::UdpEchoServer),
    );
    let client_app = OneLoop {
        target,
        size: np.msg_size,
        next: 0,
    };
    let client = tb.install(
        "cli",
        &tb.client.clone(),
        [nestless::CLIENT_PORT],
        Box::new(client_app),
    );
    tb.start(&[server, client]);
    tb.vmm
        .network_mut()
        .run(StopCondition::For(simnet::SimDuration::millis(300)));
    let samples = tb.vmm.network().store().samples("rtt_us");
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Minimal closed-loop RR client.
struct OneLoop {
    target: simnet::SockAddr,
    size: u32,
    next: u64,
}

impl simnet::Application for OneLoop {
    fn on_start(&mut self, api: &mut simnet::AppApi<'_, '_>) {
        self.fire(api);
    }
    fn on_message(&mut self, msg: simnet::Incoming, api: &mut simnet::AppApi<'_, '_>) {
        api.record(
            "rtt_us",
            api.now().since(msg.payload.sent_at).as_micros_f64(),
        );
        let _ = msg;
        self.fire(api);
    }
}

impl OneLoop {
    fn fire(&mut self, api: &mut simnet::AppApi<'_, '_>) {
        self.next += 1;
        let mut p = simnet::Payload::sized(self.size);
        p.tag = self.next;
        api.send_udp(nestless::CLIENT_PORT, self.target, p);
    }
}

fn main() {
    let mut fig = Figure::new(
        "ablation_stage_count",
        "Per-stage contribution to the NAT path",
    );
    let base = run_with(&BuildOpts::default(), 1);
    fig.push_row("NAT latency (all stages)", base, "us");

    let zero = StageCost::fixed(1, 0.0, metrics::CpuCategory::Soft);
    #[allow(clippy::type_complexity)]
    let variants: [(&str, Box<dyn Fn(&mut simnet::CostModel)>); 3] = [
        (
            "guest NAT zeroed",
            Box::new(|c: &mut simnet::CostModel| c.guest_nat = zero),
        ),
        (
            "guest bridge zeroed",
            Box::new(|c: &mut simnet::CostModel| c.guest_bridge = zero),
        ),
        (
            "veth zeroed",
            Box::new(|c: &mut simnet::CostModel| c.veth = zero),
        ),
    ];
    for (label, f) in variants {
        let mut opts = BuildOpts::default();
        f(&mut opts.costs);
        let lat = run_with(&opts, 1);
        fig.push_row(format!("NAT latency, {label}"), lat, "us");
        fig.push_row(format!("saving from {label}"), base - lat, "us");
    }
    fig.finish();
}
