//! Figure 10: Hostlo overhead, micro-benchmark — container-to-container
//! Netperf under Hostlo / NAT / Overlay / SameNode.
//!
//! "With a message size of 1024B, Hostlo's throughput is 17.9% higher than
//! NAT's, 27% lower than Overlay's, and 5.3 times lower than SameNode's.
//! [...] Hostlo's latency is 87.3% lower than NAT's, and 89.8% lower than
//! Overlay's. [...] Its latency remains stable across all message sizes."

use nestless::topology::Config;
use nestless_bench::{Claim, Figure, Mode, Sweep};

fn main() {
    let sweep = Sweep::default();
    let configs = [
        Config::Hostlo,
        Config::NatCross,
        Config::Overlay,
        Config::SameNode,
    ];
    let mut fig = Figure::new(
        "fig10",
        "Hostlo vs NAT vs Overlay vs SameNode (cross-VM Netperf)",
    );

    let tput = sweep.run_all(&configs, Mode::Throughput);
    let lat = sweep.run_all(&configs, Mode::Latency);

    let at = 1024.0;
    let t = |i: usize| tput[i].at(at).expect("1024B").mean;
    let l = |i: usize| lat[i].at(at).expect("1024B").mean;
    // indexes: 0 = Hostlo, 1 = NAT, 2 = Overlay, 3 = SameNode
    fig.push_claim(Claim::new(
        "Hostlo tput above NAT @1024B",
        17.9,
        (t(0) / t(1) - 1.0) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "Hostlo tput below Overlay @1024B",
        27.0,
        (1.0 - t(0) / t(2)) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "SameNode/Hostlo tput @1024B",
        5.3,
        t(3) / t(0),
        "x",
    ));
    fig.push_claim(Claim::new(
        "Hostlo latency below NAT @1024B",
        87.3,
        (1.0 - l(0) / l(1)) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "Hostlo latency below Overlay @1024B",
        89.8,
        (1.0 - l(0) / l(2)) * 100.0,
        "%",
    ));
    fig.push_claim(Claim::new(
        "Hostlo/SameNode latency @1024B",
        2.0,
        l(0) / l(3),
        "x",
    ));

    // Worst case across the sweep (paper: 6.1x lower tput, 2.1x latency).
    let worst_tput = tput[3]
        .points
        .iter()
        .zip(&tput[0].points)
        .map(|(s, h)| s.y.mean / h.y.mean)
        .fold(0.0f64, f64::max);
    let worst_lat = lat[0]
        .points
        .iter()
        .zip(&lat[3].points)
        .map(|(h, s)| h.y.mean / s.y.mean)
        .fold(0.0f64, f64::max);
    fig.push_claim(Claim::new(
        "worst-case SameNode/Hostlo tput",
        6.1,
        worst_tput,
        "x",
    ));
    fig.push_claim(Claim::new(
        "worst-case Hostlo/SameNode latency",
        2.1,
        worst_lat,
        "x",
    ));
    fig.push_row(
        "Hostlo latency max step change (stability)",
        lat[0].max_step_change(),
        "frac",
    );

    for s in tput {
        let mut s = s;
        s.name = format!("{} tput", s.name);
        fig.push_series(s);
    }
    for s in lat {
        let mut s = s;
        s.name = format!("{} lat", s.name);
        fig.push_series(s);
    }
    fig.finish();
}
