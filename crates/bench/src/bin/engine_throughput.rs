//! Standalone event-throughput harness for the simnet DES engine.
//!
//! Runs the same bridge-forwarding scenario as `benches/engine.rs` but as a
//! plain binary so before/after numbers can be recorded without the
//! criterion feature:
//!
//! ```text
//! cargo run --release -p nestless-bench --bin engine_throughput [reps] [frames]
//! ```
//!
//! Prints one JSON object with the per-rep best (peak) and median
//! events/sec; `results/engine_baseline.json` records these for the engine
//! fast-path change.

use metrics::{CpuCategory, CpuLocation};
use simnet::bridge::Bridge;
use simnet::costs::StageCost;
use simnet::device::PortId;
use simnet::engine::{LinkParams, Network};
use simnet::shared::SharedStation;
use simnet::testutil::{frame_between, CaptureSink};
use simnet::{MacAddr, SimDuration};
use std::time::Instant;

fn build_net(frames: u64) -> Network {
    let mut net = Network::new(1);
    let br = net.add_device(
        "br",
        CpuLocation::Host,
        Box::new(Bridge::new(
            2,
            StageCost::fixed(1_000, 0.3, CpuCategory::Sys),
            SharedStation::new(),
        )),
    );
    let sink = net.add_device("s", CpuLocation::Host, Box::new(CaptureSink::new("s")));
    net.connect(br, PortId(1), sink, PortId::P0, LinkParams::default());
    // Teach the bridge where the destination lives, then flood it.
    net.inject_frame(
        SimDuration::ZERO,
        br,
        PortId(1),
        frame_between(MacAddr::local(2), MacAddr::local(1), 1),
    );
    for i in 0..frames {
        net.inject_frame(
            SimDuration::nanos(i),
            br,
            PortId(0),
            frame_between(MacAddr::local(1), MacAddr::local(2), 512),
        );
    }
    net
}

fn arg_or(arg: Option<String>, name: &str, default: u64) -> u64 {
    match arg {
        None => default,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: {name} must be a positive integer, got {s:?}");
                eprintln!("usage: engine_throughput [reps] [frames]");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let reps = usize::try_from(arg_or(args.next(), "reps", 30)).unwrap();
    let frames = arg_or(args.next(), "frames", 10_000);

    // Warm-up rep (page in code, size allocator pools).
    build_net(frames).run_to_idle();

    let mut rates = Vec::with_capacity(reps);
    let mut total_events = 0u64;
    for _ in 0..reps {
        let mut net = build_net(frames);
        let start = Instant::now();
        net.run_to_idle();
        let elapsed = start.elapsed();
        total_events += net.events_processed();
        rates.push(net.events_processed() as f64 / elapsed.as_secs_f64());
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = rates[rates.len() / 2];
    let peak = *rates.last().unwrap();

    println!(
        "{{\"scenario\":\"bridge_forwarding\",\"reps\":{reps},\"frames_per_rep\":{frames},\
         \"events_total\":{total_events},\
         \"events_per_sec_median\":{median:.0},\"events_per_sec_peak\":{peak:.0}}}"
    );
}
