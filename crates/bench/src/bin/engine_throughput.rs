//! Standalone event-throughput harness for the simnet DES engine.
//!
//! Two scenarios, run as a plain binary so before/after numbers can be
//! recorded without the criterion feature:
//!
//! * `bridge_forwarding` — the PR-1 fast-path microbenchmark: one bridge
//!   unicasting `frames` frames into a sink, repeated `reps` times.
//! * `multihost_sharded` — the 4-host [`build_multihost`] topology run for
//!   a fixed slice of simulated time, sequentially and through
//!   [`ShardedNetwork`] at 1/2/4/8 shards. Each sharded run's merged
//!   samples, counters, and event count are checksummed against the
//!   sequential run (the engine's bit-identical determinism contract), and
//!   wall-clock rates land in `results/engine_parallel.json`.
//! * `observability_overhead` — the multihost workload re-run under each
//!   flight-recorder mode (off / counters / full); rates and the
//!   relative cost land in `results/observability_overhead.json`.
//! * `multicore` — an 8-host topology swept over 1/2/4/8 shards in both
//!   synchronization modes (conservative and optimistic), each checked
//!   bit-identical against the sequential run; speedups, sync statistics
//!   and the detected core count land in `results/engine_multicore.json`
//!   (consumed by the CI perf gate, `tools/perfgate.rs`).
//!
//! ```text
//! cargo run --release -p nestless-bench --bin engine_throughput [reps] [frames] [scenario]
//! ```
//!
//! `scenario` is `all` (default), `bridge`, `multihost`, `observability`
//! or `multicore` — CI jobs use it to run exactly the slice they gate on.

use metrics::{CpuCategory, CpuLocation, TelemetryConfig, TraceConfig};
use simnet::bridge::Bridge;
use simnet::costs::StageCost;
use simnet::device::{DeviceId, PortId};
use simnet::engine::{LinkParams, Network, SampleStore};
use simnet::shared::SharedStation;
use simnet::testutil::{build_multihost, frame_between, CaptureSink, MultihostSpec};
use simnet::StopCondition;
use simnet::{FaultPlan, MacAddr, ShardedNetwork, SimDuration, SimTime, StallWindow};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Simulated horizon of one multihost rep (2 ms keeps a debug-build rep
/// subsecond while still processing ~100k events in release).
const MULTIHOST_HORIZON: SimTime = SimTime(2_000_000);

fn build_net(frames: u64) -> Network {
    let mut net = Network::new(1);
    let br = net.add_device(
        "br",
        CpuLocation::Host,
        Box::new(Bridge::new(
            2,
            StageCost::fixed(1_000, 0.3, CpuCategory::Sys),
            SharedStation::new(),
        )),
    );
    let sink = net.add_device("s", CpuLocation::Host, Box::new(CaptureSink::new("s")));
    net.connect(br, PortId(1), sink, PortId::P0, LinkParams::default());
    // Teach the bridge where the destination lives, then flood it.
    net.inject_frame(
        SimDuration::ZERO,
        br,
        PortId(1),
        frame_between(MacAddr::local(2), MacAddr::local(1), 1),
    );
    for i in 0..frames {
        net.inject_frame(
            SimDuration::nanos(i),
            br,
            PortId(0),
            frame_between(MacAddr::local(1), MacAddr::local(2), 512),
        );
    }
    net
}

fn build_multihost_net() -> Network {
    let mut net = Network::new(0xBEEF);
    // loss = 0 so the ping-pong flows persist for the whole horizon and
    // every rep processes the same number of events.
    build_multihost(
        &mut net,
        &MultihostSpec {
            hosts: 4,
            local_flows: 4,
            loss: 0.0,
            ..MultihostSpec::default()
        },
    );
    net
}

/// Order-independent digest of a run's observable outcome: event count
/// plus every sample series and counter, bit-exact.
fn outcome_digest(store: &SampleStore, events: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    events.hash(&mut h);
    let mut names: Vec<&str> = store.sample_names().collect();
    names.sort_unstable();
    for n in names {
        n.hash(&mut h);
        for v in store.samples(n) {
            v.to_bits().hash(&mut h);
        }
    }
    let mut names: Vec<&str> = store.counter_names().collect();
    names.sort_unstable();
    for n in names {
        n.hash(&mut h);
        store.counter(n).to_bits().hash(&mut h);
    }
    h.finish()
}

/// (median, peak) of `rates`.
fn summarize(mut rates: Vec<f64>) -> (f64, f64) {
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (rates[rates.len() / 2], *rates.last().unwrap())
}

fn bridge_forwarding(reps: usize, frames: u64) {
    // Warm-up rep (page in code, size allocator pools).
    build_net(frames).run(StopCondition::Idle);

    let mut rates = Vec::with_capacity(reps);
    let mut total_events = 0u64;
    for _ in 0..reps {
        let mut net = build_net(frames);
        let start = Instant::now();
        net.run(StopCondition::Idle);
        let elapsed = start.elapsed();
        total_events += net.events_processed();
        rates.push(net.events_processed() as f64 / elapsed.as_secs_f64());
    }
    let (median, peak) = summarize(rates);

    println!(
        "{{\"scenario\":\"bridge_forwarding\",\"reps\":{reps},\"frames_per_rep\":{frames},\
         \"events_total\":{total_events},\
         \"events_per_sec_median\":{median:.0},\"events_per_sec_peak\":{peak:.0}}}"
    );
}

fn multihost_sharded(reps: usize) {
    // Sequential reference: outcome digest + wall-clock rates.
    build_multihost_net().run(StopCondition::Until(MULTIHOST_HORIZON)); // warm-up
    let mut rates = Vec::with_capacity(reps);
    let mut reference = None;
    for _ in 0..reps {
        let mut net = build_multihost_net();
        let start = Instant::now();
        net.run(StopCondition::Until(MULTIHOST_HORIZON));
        let elapsed = start.elapsed();
        rates.push(net.events_processed() as f64 / elapsed.as_secs_f64());
        reference = Some((
            outcome_digest(net.store(), net.events_processed()),
            net.events_processed(),
        ));
    }
    let (seq_median, seq_peak) = summarize(rates);
    let (ref_digest, events_per_rep) = reference.unwrap();

    let mut shard_rows = Vec::new();
    for want in [1usize, 2, 4, 8] {
        let mut rates = Vec::with_capacity(reps);
        let mut got = 0;
        let mut identical = true;
        for _ in 0..reps {
            let mut sn = ShardedNetwork::new(build_multihost_net(), want);
            got = sn.nshards();
            let start = Instant::now();
            sn.run(StopCondition::Until(MULTIHOST_HORIZON));
            let report = sn.into_report();
            // The merge is part of the cost of getting usable results.
            let elapsed = start.elapsed();
            rates.push(report.events_processed as f64 / elapsed.as_secs_f64());
            identical &= outcome_digest(&report.store, report.events_processed) == ref_digest;
        }
        let (median, peak) = summarize(rates);
        shard_rows.push(format!(
            "{{\"shards_wanted\":{want},\"shards_got\":{got},\
             \"events_per_sec_median\":{median:.0},\"events_per_sec_peak\":{peak:.0},\
             \"speedup_vs_sequential_median\":{:.3},\"bit_identical\":{identical}}}",
            median / seq_median
        ));
        assert!(
            identical,
            "sharded run ({want} shards) diverged from the sequential engine"
        );
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"engine_throughput (crates/bench/src/bin/engine_throughput.rs)\",\n  \
         \"scenario\": \"multihost_sharded\",\n  \
         \"topology\": {{\"hosts\": 4, \"local_flows\": 4, \"uplink_latency_ns\": 20000, \"loss\": 0.0}},\n  \
         \"sim_horizon_ns\": {},\n  \"reps\": {reps},\n  \"events_per_rep\": {events_per_rep},\n  \
         \"host_cores\": {host_cores},\n  \
         \"sequential\": {{\"events_per_sec_median\": {seq_median:.0}, \"events_per_sec_peak\": {seq_peak:.0}}},\n  \
         \"sharded\": [\n    {}\n  ],\n  \
         \"note\": \"bit_identical asserts the merged sharded outcome (samples, counters, event count) equals the sequential run's, bit for bit. Wall-clock speedup is bounded by host_cores: on a single-core host the shard workers serialize on one CPU and the numbers measure coordinator+merge overhead, not scaling.\"\n}}\n",
        MULTIHOST_HORIZON.0,
        shard_rows.join(",\n    ")
    );
    print!("{json}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/engine_parallel.json", &json))
    {
        eprintln!("warning: could not write results/engine_parallel.json: {e}");
    }
}

/// Observability overhead: the same multihost workload under each
/// flight-recorder [`TraceConfig`] mode *and* each telemetry-plane
/// [`TelemetryConfig`] mode. `off` (both planes off) is the engine
/// default, so its rate *is* the baseline every other benchmark in this
/// binary measures.
///
/// Every row runs at packet fidelity (hybrid would let trace-full rows
/// pin traced frames to packet level while telemetry rows ride the fast
/// path, comparing different effective engines) and installs the same
/// benign mid-horizon stall plan: fault-window open/close transitions
/// are journal record sites, so `telemetry_full` measures a branch that
/// actually appends records instead of a dead one.
///
/// `telemetry_off` is measured as its own row even though it is
/// config-identical to `off`: its ratio is the "telemetry off costs
/// nothing" claim the perf gate floors at 0.95 (`check_telemetry` in
/// `tools/perfgate.rs`).
fn observability_overhead(reps: usize) {
    /// Devices carrying the benign stall window (journal record sites).
    const FAULTED_DEVICES: usize = 8;
    struct Mode {
        label: &'static str,
        trace: fn() -> TraceConfig,
        telemetry: fn() -> TelemetryConfig,
    }
    let modes = [
        Mode {
            label: "off",
            trace: TraceConfig::default,
            telemetry: TelemetryConfig::off,
        },
        Mode {
            label: "counters",
            trace: TraceConfig::counters,
            telemetry: TelemetryConfig::off,
        },
        Mode {
            label: "full",
            trace: TraceConfig::full,
            telemetry: TelemetryConfig::off,
        },
        Mode {
            label: "telemetry_off",
            trace: TraceConfig::default,
            telemetry: TelemetryConfig::off,
        },
        Mode {
            label: "telemetry_counters",
            trace: TraceConfig::default,
            telemetry: TelemetryConfig::counters,
        },
        Mode {
            label: "telemetry_full",
            trace: TraceConfig::default,
            telemetry: TelemetryConfig::full,
        },
        Mode {
            label: "both_full",
            trace: TraceConfig::full,
            telemetry: TelemetryConfig::full,
        },
    ];

    let build = || {
        let mut net = build_multihost_net();
        let mut plan = FaultPlan::new();
        for d in 0..FAULTED_DEVICES {
            plan = plan.stall(StallWindow {
                dev: DeviceId(d),
                from: SimTime(500_000),
                until: SimTime(1_000_000),
                extra: SimDuration::nanos(50),
            });
        }
        net.install_fault_plan(plan);
        net
    };
    build().run(StopCondition::Until(MULTIHOST_HORIZON)); // warm-up
    let mut rows = Vec::new();
    let mut off_median = None;
    for mode in &modes {
        let mut rates = Vec::with_capacity(reps);
        let mut spans_emitted = 0;
        let mut stage_rows = 0;
        let mut journal_records = 0u64;
        let mut journal_emitted = 0u64;
        for _ in 0..reps {
            let mut net = build();
            net.set_trace_config((mode.trace)());
            net.set_telemetry_config((mode.telemetry)());
            let start = Instant::now();
            net.run(StopCondition::Until(MULTIHOST_HORIZON));
            let elapsed = start.elapsed();
            rates.push(net.events_processed() as f64 / elapsed.as_secs_f64());
            spans_emitted = net.spans_emitted();
            stage_rows = net.stages().iter().count();
            journal_records = net.journal().len() as u64;
            journal_emitted = net.journal().counts().iter().sum::<u64>();
        }
        let (median, peak) = summarize(rates);
        let off = *off_median.get_or_insert(median);
        rows.push(format!(
            "{{\"mode\":\"{}\",\"events_per_sec_median\":{median:.0},\
             \"events_per_sec_peak\":{peak:.0},\"relative_to_off_median\":{:.3},\
             \"spans_emitted_per_rep\":{spans_emitted},\"stage_rows\":{stage_rows},\
             \"journal_records_per_rep\":{journal_records},\
             \"journal_emitted_per_rep\":{journal_emitted}}}",
            mode.label,
            median / off
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"engine_throughput (crates/bench/src/bin/engine_throughput.rs)\",\n  \
         \"scenario\": \"observability_overhead\",\n  \
         \"topology\": {{\"hosts\": 4, \"local_flows\": 4, \"uplink_latency_ns\": 20000, \"loss\": 0.0, \"stall_windows\": {FAULTED_DEVICES}}},\n  \
         \"sim_horizon_ns\": {},\n  \"reps\": {reps},\n  \
         \"modes\": [\n    {}\n  ],\n  \
         \"note\": \"off is the engine default (every device still calls DevCtx::stage_frame, which early-returns); counters adds per-stage integer aggregates + a fixed histogram; full additionally mints trace ids and records one span per stage visit into the bounded ring. telemetry_* rows sweep the control-plane journal the same way: off is one branch per record site, counters bumps a fixed per-kind array, full additionally appends tagged records into the bounded journal ring. Every row installs the same benign stall plan so fault-window transitions keep the journal record sites live. telemetry_off is config-identical to off; its ratio is the telemetry-off-costs-nothing claim gated at 0.95 by check_telemetry.\"\n}}\n",
        MULTIHOST_HORIZON.0,
        rows.join(",\n    ")
    );
    print!("{json}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/observability_overhead.json", &json))
    {
        eprintln!("warning: could not write results/observability_overhead.json: {e}");
    }
}

/// The multicore sweep: an 8-host topology (9 islands, so an 8-shard
/// request really yields 8 shards) swept over shard counts and both
/// synchronization modes. Every configuration is digest-checked against
/// the sequential run — the sweep doubles as the cross-mode determinism
/// gate — and the JSON carries everything `tools/perfgate.rs` needs:
/// per-row speedups, sync statistics, and the detected core count (so
/// the gate can skip scaling assertions on single-core runners).
fn multicore(reps: usize) {
    let build = || {
        let mut net = Network::new(0xBEEF);
        build_multihost(
            &mut net,
            &MultihostSpec {
                hosts: 8,
                local_flows: 4,
                loss: 0.0,
                ..MultihostSpec::default()
            },
        );
        net
    };
    build().run(StopCondition::Until(MULTIHOST_HORIZON)); // warm-up
                                                          // Interleaved, paired design: every rep runs the sequential engine and
                                                          // then each sharded configuration back to back, and each config's
                                                          // speedup is the ratio against *that rep's* sequential rate. Machine
                                                          // noise (frequency drift, a background task waking up) then lands on
                                                          // both sides of each ratio instead of skewing whichever half of the
                                                          // sweep it happened to overlap.
    let configs: Vec<(bool, usize)> = [false, true]
        .into_iter()
        .flat_map(|o| [1usize, 2, 4, 8].into_iter().map(move |w| (o, w)))
        .collect();
    let mut seq_rates = Vec::with_capacity(reps);
    let mut cfg_rates: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); configs.len()];
    let mut cfg_ratios: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); configs.len()];
    let mut cfg_got = vec![0usize; configs.len()];
    let mut cfg_identical = vec![true; configs.len()];
    let mut cfg_stats = vec![simnet::SyncStats::default(); configs.len()];
    let mut reference = None;
    for _ in 0..reps {
        let mut net = build();
        let start = Instant::now();
        net.run(StopCondition::Until(MULTIHOST_HORIZON));
        let elapsed = start.elapsed();
        let seq_rate = net.events_processed() as f64 / elapsed.as_secs_f64();
        seq_rates.push(seq_rate);
        reference = Some((
            outcome_digest(net.store(), net.events_processed()),
            net.events_processed(),
        ));
        let ref_digest = reference.as_ref().unwrap().0;
        for (c, &(optimistic, want)) in configs.iter().enumerate() {
            let mut sn = ShardedNetwork::new(build(), want);
            sn.set_optimistic(optimistic);
            cfg_got[c] = sn.nshards();
            let start = Instant::now();
            sn.run(StopCondition::Until(MULTIHOST_HORIZON));
            cfg_stats[c] = sn.sync_stats();
            let report = sn.into_report();
            // The merge is part of the cost of getting usable results.
            let elapsed = start.elapsed();
            let rate = report.events_processed as f64 / elapsed.as_secs_f64();
            cfg_rates[c].push(rate);
            cfg_ratios[c].push(rate / seq_rate);
            cfg_identical[c] &=
                outcome_digest(&report.store, report.events_processed) == ref_digest;
        }
    }
    let (seq_median, seq_peak) = summarize(seq_rates);
    let (_, events_per_rep) = reference.unwrap();

    let mut rows = Vec::new();
    for (c, &(optimistic, want)) in configs.iter().enumerate() {
        let mode = if optimistic {
            "optimistic"
        } else {
            "conservative"
        };
        let identical = cfg_identical[c];
        let stats = &cfg_stats[c];
        let (median, peak) = summarize(cfg_rates[c].clone());
        let (ratio_median, _) = summarize(cfg_ratios[c].clone());
        rows.push(format!(
            "{{\"mode\":\"{mode}\",\"shards_wanted\":{want},\"shards_got\":{},\
             \"events_per_sec_median\":{median:.0},\"events_per_sec_peak\":{peak:.0},\
             \"speedup_vs_sequential_median\":{ratio_median:.3},\
             \"speedup_vs_sequential_peak\":{:.3},\"bit_identical\":{identical},\
             \"sync\":{{\"rounds\":{},\"spec_commits\":{},\"spec_rollbacks\":{},\"spec_denied\":{}}}}}",
            cfg_got[c],
            peak / seq_peak,
            stats.rounds,
            stats.spec_commits,
            stats.spec_rollbacks,
            stats.spec_denied,
        ));
        assert!(
            identical,
            "{mode} run ({want} shards) diverged from the sequential engine"
        );
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"engine_throughput (crates/bench/src/bin/engine_throughput.rs)\",\n  \
         \"scenario\": \"multicore\",\n  \
         \"topology\": {{\"hosts\": 8, \"local_flows\": 4, \"uplink_latency_ns\": 20000, \"loss\": 0.0}},\n  \
         \"sim_horizon_ns\": {},\n  \"reps\": {reps},\n  \"events_per_rep\": {events_per_rep},\n  \
         \"host_cores\": {host_cores},\n  \
         \"sequential\": {{\"events_per_sec_median\": {seq_median:.0}, \"events_per_sec_peak\": {seq_peak:.0}}},\n  \
         \"sweep\": [\n    {}\n  ],\n  \
         \"note\": \"bit_identical asserts the merged sharded outcome equals the sequential run's, bit for bit, in both synchronization modes. Reps interleave the sequential engine with every configuration; speedup_vs_sequential_median is the median of paired per-rep ratios and speedup_vs_sequential_peak is peak-rate over sequential peak-rate (the noise-robust statistic the perf gate asserts floors on). Wall-clock speedup is bounded by host_cores: on a single-core host the rows measure coordinator overhead, not scaling; the perf gate only asserts scaling when host_cores >= 4.\"\n}}\n",
        MULTIHOST_HORIZON.0,
        rows.join(",\n    ")
    );
    print!("{json}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/engine_multicore.json", &json))
    {
        eprintln!("warning: could not write results/engine_multicore.json: {e}");
    }
}

fn arg_or(arg: Option<String>, name: &str, default: u64) -> u64 {
    match arg {
        None => default,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: {name} must be a positive integer, got {s:?}");
                eprintln!("usage: engine_throughput [reps] [frames]");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let reps = usize::try_from(arg_or(args.next(), "reps", 30)).unwrap();
    let frames = arg_or(args.next(), "frames", 10_000);
    let scenario = args.next().unwrap_or_else(|| "all".to_string());

    match scenario.as_str() {
        "all" => {
            bridge_forwarding(reps, frames);
            multihost_sharded(reps.min(10));
            observability_overhead(reps.min(10));
            multicore(reps.min(5));
        }
        "bridge" => bridge_forwarding(reps, frames),
        "multihost" => multihost_sharded(reps.min(10)),
        "observability" => observability_overhead(reps.min(10)),
        "multicore" => multicore(reps.min(5)),
        other => {
            eprintln!(
                "error: unknown scenario {other:?} \
                 (expected all|bridge|multihost|observability|multicore)"
            );
            eprintln!("usage: engine_throughput [reps] [frames] [scenario]");
            std::process::exit(2);
        }
    }
}
