//! Figure 2: the motivating measurement — network performance under nested
//! vs single-level (no container) virtualization.
//!
//! "We can observe a throughput degradation of 68% and a latency increase
//! of 31% with 1280B messages compared to single-level virtualization."

use nestless::topology::Config;
use nestless_bench::{Claim, Figure, Mode, Sweep};

fn main() {
    let sweep = Sweep::default();
    let mut fig = Figure::new("fig02", "Nested (NAT) vs single-level (NoCont) Netperf");

    let tput = sweep.run_all(&[Config::Nat, Config::NoCont], Mode::Throughput);
    let lat = sweep.run_all(&[Config::Nat, Config::NoCont], Mode::Latency);

    let at = 1280.0;
    let tput_nat = tput[0].at(at).expect("1280B point").mean;
    let tput_nocont = tput[1].at(at).expect("1280B point").mean;
    let lat_nat = lat[0].at(at).expect("1280B point").mean;
    let lat_nocont = lat[1].at(at).expect("1280B point").mean;

    let degradation = (1.0 - tput_nat / tput_nocont) * 100.0;
    let increase = (lat_nat / lat_nocont - 1.0) * 100.0;

    for s in tput {
        let mut s = s;
        s.name = format!("{} tput", s.name);
        fig.push_series(s);
    }
    for s in lat {
        let mut s = s;
        s.name = format!("{} lat", s.name);
        fig.push_series(s);
    }
    fig.push_claim(Claim::new(
        "throughput degradation @1280B",
        68.0,
        degradation,
        "%",
    ));
    fig.push_claim(Claim::new("latency increase @1280B", 31.0, increase, "%"));
    fig.finish();
}
