//! Figure 11: Hostlo macro overhead — Memcached throughput and latency
//! under Hostlo / NAT / Overlay / SameNode.
//!
//! "For Memcached, Hostlo unexpectedly reaches the throughput and latency
//! levels of SameNode."

use nestless::topology::Config;
use nestless_bench::{Claim, Figure};
use workloads::{run_memcached, MemtierParams};

fn main() {
    let configs = [
        Config::Hostlo,
        Config::NatCross,
        Config::Overlay,
        Config::SameNode,
    ];
    let mut fig = Figure::new("fig11", "Memcached under Hostlo / NAT / Overlay / SameNode");
    let mut lat = Vec::new();
    let mut tput = Vec::new();
    for (i, &c) in configs.iter().enumerate() {
        let r = run_memcached(MemtierParams::paper(), c, 110 + i as u64);
        fig.push_row(format!("{c:?} responses/s"), r.throughput_per_s, "/s");
        fig.push_row(format!("{c:?} latency"), r.latency_us.mean, "us");
        fig.push_row(format!("{c:?} latency stddev"), r.latency_us.stddev, "us");
        lat.push(r.latency_us.mean);
        tput.push(r.throughput_per_s);
    }
    // indexes: 0 = Hostlo, 3 = SameNode.
    fig.push_claim(Claim::new(
        "Hostlo/SameNode throughput",
        1.0,
        tput[0] / tput[3],
        "x",
    ));
    fig.push_claim(Claim::new(
        "Hostlo beats NAT (latency ratio NAT/Hostlo)",
        2.0,
        lat[1] / lat[0],
        "x",
    ));
    fig.push_claim(Claim::new(
        "Hostlo beats Overlay (latency ratio Overlay/Hostlo)",
        2.0,
        lat[2] / lat[0],
        "x",
    ));
    fig.finish();
}
