//! Ablation 3: virtio notification suppression on the VM's primary NIC.
//!
//! Suppression (kick only on the idle->busy transition) is what buys the
//! bridged paths their streaming throughput. Turning it off makes every
//! frame pay the notification — the throughput collapses while the
//! closed-loop latency barely moves.

use nestless::topology::BuildOpts;
use nestless_bench::Figure;

fn main() {
    let mut fig = Figure::new(
        "ablation_batching",
        "Notification suppression on the primary NIC (NoCont path)",
    );
    for (label, on) in [("suppression on", true), ("suppression off", false)] {
        let opts = BuildOpts {
            suppression_primary: on,
            ..BuildOpts::default()
        };
        let tput = helpers::tput(&opts, 1280);
        let lat = helpers::lat(&opts, 1280);
        fig.push_row(format!("{label}: throughput"), tput, "Mbit/s");
        fig.push_row(format!("{label}: latency"), lat, "us");
    }
    fig.finish();
}

mod helpers {
    use nestless::topology::{build_with, BuildOpts, Config};
    use simnet::{AppApi, Application, Incoming, Payload, SimDuration, StopCondition, TcpKind};

    pub fn tput(opts: &BuildOpts, size: u32) -> f64 {
        struct Srv;
        impl Application for Srv {
            fn on_start(&mut self, _: &mut AppApi<'_, '_>) {}
            fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
                let Some((seq, TcpKind::Data)) = msg.tcp else {
                    return;
                };
                api.count("rx_bytes", msg.payload.len as f64);
                api.send_tcp(
                    nestless::SERVER_PORT,
                    msg.src,
                    seq,
                    TcpKind::Ack,
                    Payload::sized(0),
                );
            }
        }
        struct Cli {
            target: simnet::SockAddr,
            size: u32,
            seq: u64,
        }
        impl Cli {
            fn send(&mut self, api: &mut AppApi<'_, '_>) {
                self.seq += 1;
                api.send_tcp(
                    nestless::CLIENT_PORT,
                    self.target,
                    self.seq,
                    TcpKind::Data,
                    Payload::sized(self.size),
                );
            }
        }
        impl Application for Cli {
            fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
                for _ in 0..64 {
                    self.send(api);
                }
            }
            fn on_message(&mut self, _: Incoming, api: &mut AppApi<'_, '_>) {
                self.send(api);
            }
        }
        let mut tb = build_with(Config::NoCont, 9, opts);
        let target = tb.target;
        let s = tb.install(
            "srv",
            &tb.server.clone(),
            [nestless::SERVER_PORT],
            Box::new(Srv),
        );
        let c = tb.install(
            "cli",
            &tb.client.clone(),
            [nestless::CLIENT_PORT],
            Box::new(Cli {
                target,
                size,
                seq: 0,
            }),
        );
        tb.start(&[s, c]);
        let dur = SimDuration::millis(400);
        tb.vmm.network_mut().run(StopCondition::For(dur));
        tb.vmm.network().store().counter("rx_bytes") * 8.0 / dur.as_secs_f64() / 1e6
    }

    pub fn lat(opts: &BuildOpts, size: u32) -> f64 {
        struct Rr {
            target: simnet::SockAddr,
            size: u32,
            n: u64,
        }
        impl Rr {
            fn fire(&mut self, api: &mut AppApi<'_, '_>) {
                self.n += 1;
                let mut p = Payload::sized(self.size);
                p.tag = self.n;
                api.send_udp(nestless::CLIENT_PORT, self.target, p);
            }
        }
        impl Application for Rr {
            fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
                self.fire(api);
            }
            fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
                api.record(
                    "rtt_us",
                    api.now().since(msg.payload.sent_at).as_micros_f64(),
                );
                self.fire(api);
            }
        }
        let mut tb = build_with(Config::NoCont, 9, opts);
        let target = tb.target;
        let s = tb.install(
            "srv",
            &tb.server.clone(),
            [nestless::SERVER_PORT],
            Box::new(workloads::UdpEchoServer),
        );
        let c = tb.install(
            "cli",
            &tb.client.clone(),
            [nestless::CLIENT_PORT],
            Box::new(Rr { target, size, n: 0 }),
        );
        tb.start(&[s, c]);
        tb.vmm
            .network_mut()
            .run(StopCondition::For(SimDuration::millis(300)));
        let xs = tb.vmm.network().store().samples("rtt_us");
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
