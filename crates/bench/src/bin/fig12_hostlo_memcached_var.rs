//! Figure 12: Memcached latency variability per configuration.
//!
//! "This is linked to SameNode showing extreme variability in its
//! latencies. To the opposite, queries over Hostlo report stable latency."
//!
//! SameNode's single VM runs client, server and loopback on one guest
//! kernel; under 200 closed-loop connections that shared station saturates
//! and its latencies swing wildly, while Hostlo spreads the two fractions
//! over two VMs.

use nestless::topology::Config;
use nestless_bench::{Claim, Figure};
use workloads::{run_memcached, MemtierParams};

fn main() {
    let configs = [
        Config::Hostlo,
        Config::NatCross,
        Config::Overlay,
        Config::SameNode,
    ];
    let mut fig = Figure::new(
        "fig12",
        "Memcached latency variability (coefficient of variation)",
    );
    let mut cv = Vec::new();
    for (i, &c) in configs.iter().enumerate() {
        let r = run_memcached(MemtierParams::paper(), c, 120 + i as u64);
        fig.push_row(format!("{c:?} latency cv"), r.latency_us.cv(), "frac");
        fig.push_row(format!("{c:?} latency min"), r.latency_us.min, "us");
        fig.push_row(format!("{c:?} latency max"), r.latency_us.max, "us");
        cv.push(r.latency_us.cv());
    }
    fig.push_claim(Claim::new(
        "Hostlo latency is the most stable (cv(Hostlo) < cv(SameNode))",
        1.0,
        f64::from(cv[0] < cv[3]),
        "bool",
    ));
    fig.finish();
}
