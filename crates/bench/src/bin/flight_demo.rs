//! Flight-recorder demo: a fully traced Hostlo run exported as both a
//! [`RunSnapshot`] and a Chrome `trace_event` file.
//!
//! ```text
//! cargo run --release -p nestless-bench --bin flight_demo [rounds]
//! ```
//!
//! Writes `results/flight_demo.snapshot.json` and
//! `results/flight_demo.trace.json` (load the latter at
//! <https://ui.perfetto.dev> or `chrome://tracing`). Both documents are
//! validated by a serde round-trip — serialize, parse back, compare
//! structurally — and the process exits nonzero on any mismatch, so CI
//! can gate on the export formats staying well-formed.

use metrics::{ChromeTrace, RunSnapshot, TraceConfig};
use nestless::topology::{build, Config, Testbed, CLIENT_PORT, SERVER_PORT};
use simnet::endpoint::{AppApi, Application, Incoming};
use simnet::frame::Payload;
use simnet::StopCondition;
use simnet::{chrome_trace_network, snapshot_network, SimDuration, SockAddr};

/// Echoes every request back to its sender.
struct Echo;
impl Application for Echo {
    fn on_start(&mut self, _: &mut AppApi<'_, '_>) {}
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
        let mut p = Payload::sized(msg.payload.len);
        p.tag = msg.payload.tag;
        api.send_udp(SERVER_PORT, msg.src, p);
    }
}

/// Fixed-length ping-pong driver.
struct Ping {
    target: SockAddr,
    remaining: u64,
}
impl Application for Ping {
    fn on_start(&mut self, api: &mut AppApi<'_, '_>) {
        let mut p = Payload::sized(256);
        p.tag = 1;
        api.send_udp(CLIENT_PORT, self.target, p);
    }
    fn on_message(&mut self, msg: Incoming, api: &mut AppApi<'_, '_>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let mut p = Payload::sized(256);
            p.tag = msg.payload.tag + 1;
            api.send_udp(CLIENT_PORT, self.target, p);
        }
    }
}

fn traced_hostlo_run(rounds: u64) -> Testbed {
    let mut tb = build(Config::Hostlo, 11);
    tb.vmm.network_mut().set_trace_config(TraceConfig::full());
    let target = tb.target;
    let server = tb.install("server", &tb.server.clone(), [SERVER_PORT], Box::new(Echo));
    let client = tb.install(
        "client",
        &tb.client.clone(),
        [CLIENT_PORT],
        Box::new(Ping {
            target,
            remaining: rounds,
        }),
    );
    tb.start(&[server, client]);
    tb.vmm
        .network_mut()
        .run(StopCondition::For(SimDuration::secs(1)));
    tb
}

/// Serializes `value`, parses the text back, and fails the process if
/// the reconstruction differs from the original.
fn round_trip<T>(what: &str, value: &T) -> String
where
    T: serde::Serialize + serde::Deserialize + PartialEq,
{
    let text = serde_json::to_string_pretty(value).unwrap_or_else(|e| {
        eprintln!("error: serializing {what}: {e}");
        std::process::exit(1);
    });
    let back: T = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: {what} does not parse back from its own JSON: {e}");
        std::process::exit(1);
    });
    if &back != value {
        eprintln!("error: {what} serde round-trip changed the document");
        std::process::exit(1);
    }
    text
}

fn main() {
    let rounds = std::env::args()
        .nth(1)
        .map(|s| match s.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: rounds must be an integer, got {s:?}");
                eprintln!("usage: flight_demo [rounds]");
                std::process::exit(2);
            }
        })
        .unwrap_or(200);

    let tb = traced_hostlo_run(rounds);
    let net = tb.vmm.network();

    let snapshot: RunSnapshot = snapshot_network(net, "flight_demo.hostlo");
    let chrome: ChromeTrace = chrome_trace_network(net);
    if snapshot.stages.is_empty() {
        eprintln!("error: traced run produced no stage aggregates");
        std::process::exit(1);
    }
    if chrome.is_empty() {
        eprintln!("error: traced run produced no trace events");
        std::process::exit(1);
    }

    let snapshot_json = round_trip("RunSnapshot", &snapshot);
    let chrome_json = round_trip("ChromeTrace", &chrome);

    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/flight_demo.snapshot.json", &snapshot_json))
        .and_then(|()| std::fs::write("results/flight_demo.trace.json", &chrome_json))
    {
        eprintln!("error: writing results/: {e}");
        std::process::exit(1);
    }

    println!(
        "{{\"demo\":\"flight_demo\",\"config\":\"hostlo\",\"rounds\":{rounds},\
         \"spans_kept\":{},\"spans_dropped\":{},\"stages\":{},\"trace_events\":{},\
         \"snapshot\":\"results/flight_demo.snapshot.json\",\
         \"trace\":\"results/flight_demo.trace.json\"}}",
        snapshot.spans.kept,
        snapshot.spans.dropped,
        snapshot.stages.len(),
        chrome.len(),
    );
}
