//! Figure 10 as a Criterion bench: the four cross-VM configurations at
//! 1024 B.

use criterion::{criterion_group, criterion_main, Criterion};
use nestless::topology::Config;
use simnet::SimDuration;
use workloads::netperf::Netperf;

fn bench(c: &mut Criterion) {
    let np = Netperf {
        duration: SimDuration::millis(60),
        warmup: SimDuration::millis(10),
        ..Netperf::with_size(1024)
    };
    let mut g = c.benchmark_group("fig10");
    for config in [
        Config::Hostlo,
        Config::NatCross,
        Config::Overlay,
        Config::SameNode,
    ] {
        g.bench_function(format!("udp_rr/{config:?}"), |b| {
            b.iter(|| np.udp_rr(config, 4).latency_us.unwrap().mean)
        });
        g.bench_function(format!("tcp_stream/{config:?}"), |b| {
            b.iter(|| np.tcp_stream(config, 4).throughput_mbps.unwrap().mean)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
