//! Macro-benchmark drivers (figs. 5/11/13) as Criterion benches with
//! shortened simulated durations.

use criterion::{criterion_group, criterion_main, Criterion};
use nestless::topology::Config;
use simnet::SimDuration;
use workloads::{run_kafka, run_memcached, run_nginx, KafkaParams, MemtierParams, Wrk2Params};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("macro");
    let mt = MemtierParams {
        duration: SimDuration::millis(100),
        warmup: SimDuration::millis(20),
        ..MemtierParams::paper()
    };
    g.bench_function("memcached/BrFusion", |b| {
        b.iter(|| run_memcached(mt, Config::BrFusion, 1).throughput_per_s)
    });
    let wk = Wrk2Params {
        duration: SimDuration::millis(100),
        warmup: SimDuration::millis(20),
        ..Wrk2Params::paper()
    };
    g.bench_function("nginx/Nat", |b| {
        b.iter(|| run_nginx(wk, Config::Nat, 1).latency_us.mean)
    });
    let kf = KafkaParams {
        duration: SimDuration::millis(100),
        warmup: SimDuration::millis(20),
        ..KafkaParams::paper()
    };
    g.bench_function("kafka/Hostlo", |b| {
        b.iter(|| run_kafka(kf, Config::Hostlo, 1).latency_us.mean)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
