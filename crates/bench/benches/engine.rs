//! Core DES engine benchmarks: raw event throughput of the simulator —
//! the substrate's own performance, independent of any paper figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use metrics::{CpuCategory, CpuLocation};
use simnet::bridge::Bridge;
use simnet::costs::StageCost;
use simnet::device::PortId;
use simnet::engine::{LinkParams, Network};
use simnet::shared::SharedStation;
use simnet::testutil::{frame_between, CaptureSink};
use simnet::StopCondition;
use simnet::{MacAddr, SimDuration};

fn bridge_forwarding(c: &mut Criterion) {
    c.bench_function("engine/bridge_10k_frames", |b| {
        b.iter_batched(
            || {
                let mut net = Network::new(1);
                let br = net.add_device(
                    "br",
                    CpuLocation::Host,
                    Box::new(Bridge::new(
                        2,
                        StageCost::fixed(1_000, 0.3, CpuCategory::Sys),
                        SharedStation::new(),
                    )),
                );
                let sink = net.add_device("s", CpuLocation::Host, Box::new(CaptureSink::new("s")));
                net.connect(br, PortId(1), sink, PortId::P0, LinkParams::default());
                // Teach the bridge where the destination lives.
                net.inject_frame(
                    SimDuration::ZERO,
                    br,
                    PortId(1),
                    frame_between(MacAddr::local(2), MacAddr::local(1), 1),
                );
                for i in 0..10_000u64 {
                    net.inject_frame(
                        SimDuration::nanos(i),
                        br,
                        PortId(0),
                        frame_between(MacAddr::local(1), MacAddr::local(2), 512),
                    );
                }
                net
            },
            |mut net| {
                net.run(StopCondition::Idle);
                net.events_processed()
            },
            BatchSize::SmallInput,
        )
    });
}

fn netperf_cell(c: &mut Criterion) {
    use nestless::topology::Config;
    use workloads::netperf::Netperf;
    let np = Netperf {
        duration: SimDuration::millis(50),
        warmup: SimDuration::millis(10),
        ..Netperf::with_size(1280)
    };
    c.bench_function("engine/netperf_rr_50ms_nat", |b| {
        b.iter(|| np.udp_rr(Config::Nat, 7).latency_us.unwrap().count)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bridge_forwarding, netperf_cell
}
criterion_main!(benches);
