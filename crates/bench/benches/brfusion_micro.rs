//! Figure 4 as a Criterion bench: one cell per configuration at 1280 B
//! (simulated work is identical per iteration, so wall time compares the
//! *simulation cost* of each path while the printed metrics come from the
//! fig04 binary).

use criterion::{criterion_group, criterion_main, Criterion};
use nestless::topology::Config;
use simnet::SimDuration;
use workloads::netperf::Netperf;

fn bench(c: &mut Criterion) {
    let np = Netperf {
        duration: SimDuration::millis(60),
        warmup: SimDuration::millis(10),
        ..Netperf::with_size(1280)
    };
    let mut g = c.benchmark_group("fig04");
    for config in [Config::Nat, Config::NoCont, Config::BrFusion] {
        g.bench_function(format!("udp_rr/{config:?}"), |b| {
            b.iter(|| np.udp_rr(config, 3).latency_us.unwrap().mean)
        });
        g.bench_function(format!("tcp_stream/{config:?}"), |b| {
            b.iter(|| np.tcp_stream(config, 3).throughput_mbps.unwrap().mean)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
