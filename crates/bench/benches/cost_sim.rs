//! Figure 9 machinery as Criterion benches: trace generation, baseline
//! packing, the Hostlo improvement pass, and the full parallel simulation.

use cloudsim::{hostlo_improve, kube_schedule, simulate, synthetic_trace, PAPER_USER_COUNT};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig09/synthetic_trace_492", |b| {
        b.iter(|| synthetic_trace(PAPER_USER_COUNT, 2019).container_count())
    });

    let trace = synthetic_trace(PAPER_USER_COUNT, 2019);
    let biggest = trace
        .users
        .iter()
        .max_by_key(|u| u.pods.len())
        .expect("nonempty trace")
        .clone();
    c.bench_function("fig09/kube_schedule_biggest_user", |b| {
        b.iter(|| kube_schedule(&biggest).cost_per_h())
    });
    c.bench_function("fig09/hostlo_improve_biggest_user", |b| {
        b.iter_batched(
            || kube_schedule(&biggest),
            |p| hostlo_improve(p).cost_per_h(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("fig09/simulate_full_population", |b| {
        b.iter(|| simulate(&trace).frac_users_saving())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
