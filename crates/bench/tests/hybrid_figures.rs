//! Figure-fidelity contract for hybrid mode: every fig02–fig15 runner
//! builds its testbed through `nestless::topology::build`, which honors
//! the `SIMNET_FIDELITY` env override — so running the figure suite with
//! `SIMNET_FIDELITY=hybrid` must reproduce the packet-level numbers
//! within the ±15% comparability budget. This test exercises exactly
//! that seam on a netperf sweep across every topology `Config` the
//! figures use (NAT, NoCont, BrFusion, SameNode, Hostlo, NatCross,
//! Overlay), for both metrics the figures plot (UDP_RR latency and
//! TCP_STREAM throughput).
//!
//! Single test function on purpose: it mutates the process environment,
//! and an integration-test binary with one test has no one to race.

use nestless::topology::Config;
use simnet::time::SimDuration;
use workloads::netperf::Netperf;

const TOLERANCE: f64 = 0.15;

fn netperf() -> Netperf {
    Netperf {
        msg_size: 1024,
        duration: SimDuration::millis(60),
        warmup: SimDuration::millis(20),
        window: 64,
    }
}

fn sweep(label: &str) -> Vec<(Config, f64, f64)> {
    let configs = [
        Config::Nat,
        Config::NoCont,
        Config::BrFusion,
        Config::SameNode,
        Config::Hostlo,
        Config::NatCross,
        Config::Overlay,
    ];
    configs
        .into_iter()
        .map(|c| {
            let np = netperf();
            let lat = np
                .udp_rr(c, 7)
                .latency_us
                .unwrap_or_else(|| panic!("{label}: no latency on {c:?}"))
                .mean;
            let tput = np
                .tcp_stream(c, 7)
                .throughput_mbps
                .unwrap_or_else(|| panic!("{label}: no throughput on {c:?}"))
                .mean;
            (c, lat, tput)
        })
        .collect()
}

#[test]
fn hybrid_figures_stay_within_tolerance_of_packet() {
    assert!(
        std::env::var_os("SIMNET_FIDELITY").is_none(),
        "test owns SIMNET_FIDELITY"
    );
    let packet = sweep("packet");

    std::env::set_var("SIMNET_FIDELITY", "hybrid");
    let hybrid = sweep("hybrid");
    std::env::remove_var("SIMNET_FIDELITY");

    for ((c, plat, ptput), (_, hlat, htput)) in packet.iter().zip(&hybrid) {
        let lat_err = (hlat / plat - 1.0).abs();
        let tput_err = (htput / ptput - 1.0).abs();
        assert!(
            lat_err <= TOLERANCE,
            "{c:?}: hybrid UDP_RR latency {hlat:.1}us vs packet {plat:.1}us \
             ({:.1}% > {:.0}%)",
            lat_err * 100.0,
            TOLERANCE * 100.0
        );
        assert!(
            tput_err <= TOLERANCE,
            "{c:?}: hybrid TCP_STREAM throughput {htput:.1} vs packet {ptput:.1} Mbit/s \
             ({:.1}% > {:.0}%)",
            tput_err * 100.0,
            TOLERANCE * 100.0
        );
    }
}
